//! The assembled network simulation.
//!
//! [`SimNetwork`] owns one BGP [`Router`] per AS, a pair of directed
//! [`Link`]s per topology edge, and a serial message [`Processor`] per
//! node, and drives them all from a single deterministic event loop.
//! Every forwarding-table change is recorded into a time-indexed
//! [`NetworkFib`] so the data plane can be replayed exactly (see
//! `bgpsim-dataplane`); live event-driven packets are also supported
//! for cross-validation.

use bgpsim_core::decision::{RoutePolicy, ShortestPath};
use bgpsim_core::{BgpConfig, FibEntry, Prefix, Router, RouterOutput, RouterState};
use bgpsim_dataplane::{NetworkFib, Packet, PacketFate};
use bgpsim_faults::{FaultError, FaultKind, FaultPlan};
use bgpsim_netsim::engine::{Engine, EngineSnapshot};
use bgpsim_netsim::link::{Link, LinkSnapshot};
use bgpsim_netsim::process::{Processor, ProcessorSnapshot};
use bgpsim_netsim::queue::EventId;
use bgpsim_netsim::rng::{SimRng, SimRngState};
use bgpsim_netsim::time::{SimDuration, SimTime};
use bgpsim_topology::{Graph, NodeId};
use bgpsim_trace::{TraceEvent, TraceHandle};

use crate::event::NetEvent;
use crate::failure::{FailureEvent, FailureHalf, HalfAction};
use crate::params::SimParams;
use crate::record::{PathChange, RunRecord, UpdateSend};
use crate::sharded::ShardCtx;

/// Stream tag for per-node RNG lanes, disjoint from the fault-plan
/// stream tags (`0x1055…`, `0xF1A9…`, …). Lane `i` draws from
/// `fork(LANE_STREAM_TAG | i)` of the run seed, so a node's draws are
/// a pure function of `(seed, node)` — independent of how events from
/// different nodes interleave, which is what lets shards replay the
/// exact serial draw sequences without sharing an RNG.
const LANE_STREAM_TAG: u64 = 0x7A9E_0000_0000_0000;

/// Bits reserved for the per-lane counter inside an event order key:
/// `order = lane << ORDER_CTR_BITS | counter`. 2^40 events per lane
/// and 2^24 lanes comfortably exceed any run the budget allows.
const ORDER_CTR_BITS: u32 = 40;

/// The [`EventId`] returned for events that another shard owns: the
/// local engine never saw them, so cancellation and liveness checks on
/// this id are harmless no-ops.
const FOREIGN_EVENT: EventId = EventId::from_raw(u64::MAX);

/// One node's record of its latest scheduled MRAI expiry event for a
/// `(peer, prefix)` pair.
#[derive(Debug, Clone, Copy)]
struct MraiSlot {
    peer: NodeId,
    prefix: Prefix,
    event: EventId,
    at: SimTime,
}

/// A complete, deterministic snapshot of a running [`SimNetwork`].
///
/// Produced by [`SimNetwork::snapshot`]; consumed by
/// [`SimNetwork::restore`] / [`SimNetwork::restore_with_policies`].
/// Restoring and draining yields outputs bit-identical to continuing
/// the original simulation — the basis of checkpoint/fork (see
/// `bgpsim-checkpoint`).
///
/// Everything is plain data: router tables as sorted entry lists,
/// pending events with their original `(time, seq)` keys, and every
/// RNG mid-stream state (the main stream plus per-link loss streams).
/// The trace handle and routing policies are deliberately absent; both
/// are re-supplied at restore time because neither influences the
/// simulation's observable behavior (tracing) or carries state
/// (policies).
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct NetworkSnapshot {
    /// Engine clock, queue statistics, and pending events.
    pub engine: EngineSnapshot<NetEvent>,
    /// Per-router protocol state, indexed by node id.
    pub routers: Vec<RouterState>,
    /// Directed links as `(from, to, state)` triples.
    pub links: Vec<(NodeId, NodeId, LinkSnapshot)>,
    /// Per-node serial processors, indexed by node id.
    pub processors: Vec<ProcessorSnapshot>,
    /// The root RNG (loss-stream fork source), mid-stream.
    pub rng: SimRngState,
    /// Per-node RNG lanes, mid-stream, indexed by node id.
    pub rng_lanes: Vec<SimRngState>,
    /// Per-lane order counters (`node_count + 1` entries; the last is
    /// the harness lane).
    pub lane_ctrs: Vec<u64>,
    /// Physical parameters.
    pub params: SimParams,
    /// The recorded FIB history as `(node, prefix, time, entry)`
    /// changes in per-node, per-prefix time order (the
    /// [`NetworkFib::iter_changes`] stream, valid to replay through
    /// [`NetworkFib::record`]).
    pub fib_changes: Vec<(NodeId, Prefix, SimTime, Option<FibEntry>)>,
    /// BGP message sends recorded so far.
    pub sends: Vec<UpdateSend>,
    /// Route-selection changes recorded so far.
    pub path_changes: Vec<PathChange>,
    /// Live-packet fates recorded so far.
    pub live_fates: Vec<(u64, PacketFate)>,
    /// When the (first) failure was injected, if any.
    pub failure_at: Option<SimTime>,
    /// Engine events dispatched so far.
    pub events_dispatched: u64,
    /// Fault-plan events fired so far.
    pub faults_injected: u64,
    /// Session resets applied so far.
    pub session_resets: u64,
    /// The run seed (fork streams derive from it).
    pub seed: u64,
    /// Per-node MRAI slot lists as `(peer, prefix, raw event id, at)`
    /// tuples; the raw ids stay valid because the engine snapshot
    /// preserves sequence numbers.
    pub mrai_pending: Vec<Vec<(NodeId, Prefix, u64, SimTime)>>,
}

impl NetworkSnapshot {
    /// Number of nodes in the captured network.
    pub fn node_count(&self) -> usize {
        self.routers.len()
    }

    /// The simulation clock at capture time.
    pub fn now(&self) -> SimTime {
        self.engine.now
    }
}

/// Why [`SimNetwork::run_to_quiescence`] returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// All events drained; the network is quiescent.
    Quiescent,
    /// The event budget was exhausted first (likely a protocol
    /// divergence or a budget set too low).
    BudgetExhausted,
}

/// A complete network simulation: topology + routers + links +
/// processors + event loop.
///
/// # Examples
///
/// Two ASes, one prefix:
///
/// ```
/// use bgpsim_sim::prelude::*;
/// use bgpsim_core::{BgpConfig, Prefix};
/// use bgpsim_topology::{Graph, NodeId};
///
/// let g = Graph::from_edges([(0, 1)]);
/// let mut net = SimNetwork::new(&g, BgpConfig::default(), SimParams::default(), 42);
/// net.originate(NodeId::new(0), Prefix::new(0));
/// assert_eq!(net.run_to_quiescence(1_000_000), RunOutcome::Quiescent);
/// let rec = net.into_record();
/// assert!(rec.fib.current(NodeId::new(1), Prefix::new(0)).is_some());
/// ```
#[derive(Debug)]
pub struct SimNetwork<P: RoutePolicy = ShortestPath> {
    engine: Engine<NetEvent>,
    routers: Vec<Router<P>>,
    /// Directed links as per-source adjacency lists sorted by target id.
    /// Nodes have few neighbors, so a binary search beats hashing or a
    /// global ordered map on the per-send lookup.
    links: Vec<Vec<(NodeId, Link)>>,
    processors: Vec<Processor>,
    /// Root RNG: never drawn from directly, only forked for per-link
    /// loss streams (forks are pure functions of the seed, so they are
    /// position-independent).
    rng_root: SimRng,
    /// Per-node RNG lanes (`fork(LANE_STREAM_TAG | node)`): every draw
    /// a node's router or processor makes comes from its own lane, so
    /// the draw sequence each node sees is independent of global event
    /// interleaving.
    rng_lanes: Vec<SimRng>,
    /// Per-lane order counters (one per node plus the harness lane at
    /// index `node_count`); see [`Self::next_order`].
    lane_ctrs: Vec<u64>,
    /// The lane charged for events scheduled right now: the node whose
    /// dispatch is executing, or the harness lane between dispatches.
    sched_lane: u32,
    /// Sharded-execution context; `None` for serial runs.
    shard: Option<Box<ShardCtx>>,
    params: SimParams,
    fib: NetworkFib,
    sends: Vec<UpdateSend>,
    path_changes: Vec<crate::record::PathChange>,
    live_fates: Vec<(u64, PacketFate)>,
    failure_at: Option<SimTime>,
    events_dispatched: u64,
    faults_injected: u64,
    session_resets: u64,
    seed: u64,
    tracer: TraceHandle,
    /// Latest scheduled MRAI expiry event per (node, peer, prefix),
    /// kept as a per-node slot list scanned linearly (a node holds at
    /// most degree × prefix-count slots, so a scan beats hashing on
    /// this per-timer path). When a restarted timer supersedes a
    /// pending expiry at the same instant (the sync-vs-expiry race),
    /// the superseded event is cancelled instead of dispatched as a
    /// guaranteed no-op — see [`Self::schedule_mrai`]. Slots for
    /// already-delivered events are harmless: cancelling a delivered id
    /// is a no-op.
    mrai_pending: Vec<Vec<MraiSlot>>,
}

impl SimNetwork<ShortestPath> {
    /// Builds a simulation over `graph` with uniform router `config`,
    /// physical `params`, a deterministic `seed`, and the paper's
    /// shortest-path policy at every node.
    ///
    /// # Panics
    ///
    /// Panics if the configuration or parameters are invalid.
    pub fn new(graph: &Graph, config: BgpConfig, params: SimParams, seed: u64) -> Self {
        SimNetwork::with_policies(graph, config, params, seed, |_| ShortestPath)
    }

    /// Rebuilds a shortest-path simulation from a snapshot. See
    /// [`SimNetwork::restore_with_policies`] for the general form.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot is internally inconsistent.
    pub fn restore(snap: NetworkSnapshot) -> Self {
        SimNetwork::restore_with_policies(snap, |_| ShortestPath)
    }
}

impl<P: RoutePolicy> SimNetwork<P> {
    /// Builds a simulation with a per-node routing policy — e.g.
    /// [`GaoRexford`](bgpsim_core::policy::GaoRexford) built from a
    /// relationship map.
    ///
    /// # Panics
    ///
    /// Panics if the configuration or parameters are invalid.
    pub fn with_policies<F>(
        graph: &Graph,
        config: BgpConfig,
        params: SimParams,
        seed: u64,
        mut policy_for: F,
    ) -> Self
    where
        F: FnMut(NodeId) -> P,
    {
        config.validate();
        params.validate();
        let n = graph.node_count();
        let routers: Vec<Router<P>> = graph
            .nodes()
            .map(|id| Router::with_policy(id, graph.neighbors(id), config, policy_for(id)))
            .collect();
        let mut links: Vec<Vec<(NodeId, Link)>> = vec![Vec::new(); n];
        for e in graph.edges() {
            links[e.lo().index()].push((e.hi(), Link::new(params.link_delay)));
            links[e.hi().index()].push((e.lo(), Link::new(params.link_delay)));
        }
        for adj in &mut links {
            adj.sort_by_key(|&(to, _)| to);
        }
        let rng_root = SimRng::new(seed);
        let rng_lanes = (0..n)
            .map(|i| rng_root.fork(LANE_STREAM_TAG | i as u64))
            .collect();
        SimNetwork {
            engine: Engine::new(),
            routers,
            links,
            processors: vec![Processor::new(); n],
            rng_root,
            rng_lanes,
            lane_ctrs: vec![0; n + 1],
            sched_lane: n as u32,
            shard: None,
            params,
            fib: NetworkFib::new(n),
            sends: Vec::new(),
            path_changes: Vec::new(),
            live_fates: Vec::new(),
            failure_at: None,
            events_dispatched: 0,
            faults_injected: 0,
            session_resets: 0,
            seed,
            tracer: TraceHandle::global(),
            mrai_pending: vec![Vec::new(); n],
        }
    }

    /// Replaces the trace handle (defaults to [`TraceHandle::global`]).
    ///
    /// Tracing is strictly observational: the simulation's behavior,
    /// RNG stream and recorded outputs are identical whether or not a
    /// sink is attached.
    pub fn with_tracer(mut self, tracer: TraceHandle) -> Self {
        self.tracer = tracer;
        self
    }

    /// The current simulation time.
    pub fn now(&self) -> SimTime {
        self.engine.now()
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.routers.len()
    }

    /// Read access to a router.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn router(&self, id: NodeId) -> &Router<P> {
        &self.routers[id.index()]
    }

    /// Read access to the recorded FIB history so far.
    pub fn fib(&self) -> &NetworkFib {
        &self.fib
    }

    /// BGP message sends recorded so far.
    pub fn sends(&self) -> &[UpdateSend] {
        &self.sends
    }

    /// When the (first) failure was injected, if any.
    pub fn failure_at(&self) -> Option<SimTime> {
        self.failure_at
    }

    /// The lane index used for events scheduled by harness code (as
    /// opposed to events scheduled from inside a node's dispatch).
    fn harness_lane(&self) -> u32 {
        self.routers.len() as u32
    }

    /// Assigns the next shard-independent order key on the current
    /// lane. A node's events pop in `(time, order)` order on every
    /// engine, so each lane's counter advances through the identical
    /// sequence whether the run is serial or sharded — which is what
    /// makes the keys (and therefore the merged event order) agree.
    fn next_order(&mut self) -> u64 {
        let lane = self.sched_lane;
        let ctr = self.lane_ctrs[lane as usize];
        self.lane_ctrs[lane as usize] = ctr + 1;
        debug_assert!(ctr < 1 << ORDER_CTR_BITS, "lane counter overflow");
        (u64::from(lane) << ORDER_CTR_BITS) | ctr
    }

    /// Schedules `ev` at `at` under the current lane's next order key,
    /// routing by ownership when sharded: events for foreign nodes go
    /// to the outbox (windowed execution) or are dropped (replicated
    /// harness phases, where the owning shard schedules its own copy).
    /// The lane counter advances in every case — that is what keeps
    /// the counters synchronized across shards.
    fn schedule_event(&mut self, at: SimTime, ev: NetEvent) -> EventId {
        let order = self.next_order();
        let is_arrival = matches!(ev, NetEvent::MessageArrival { .. });
        if let Some(ctx) = self.shard.as_mut() {
            ctx.note_push();
            let target = ctx.owner[ev.node().index()];
            if target != ctx.shard_id {
                if !ctx.replicating {
                    ctx.outbox.push((target, at, order, ev));
                }
                return FOREIGN_EVENT;
            }
        }
        let id = self.engine.schedule_at_ordered(at, order, ev);
        if let Some(ctx) = self.shard.as_mut() {
            ctx.note_pending(at, order, id.as_u64(), is_arrival);
        }
        id
    }

    /// Cancels a pending event, keeping the sharded depth-replay log
    /// consistent (a hit removes one pending event from the global
    /// queue the serial oracle would have had).
    fn cancel_event(&mut self, id: EventId) {
        let hit = self.engine.cancel(id);
        if hit {
            if let Some(ctx) = self.shard.as_mut() {
                ctx.note_cancel();
            }
        }
    }

    /// Makes `origin` start originating `prefix` at the current time.
    pub fn originate(&mut self, origin: NodeId, prefix: Prefix) {
        self.sched_lane = self.harness_lane();
        let now = self.engine.now();
        let out = self.routers[origin.index()].originate(
            prefix,
            now,
            &mut self.rng_lanes[origin.index()],
        );
        self.apply_output(origin, out, now);
    }

    /// Splits `failure` into per-node halves using the routers'
    /// current peer lists (relevant only for `NodeDown`).
    fn split_failure(&self, failure: FailureEvent) -> Vec<FailureHalf> {
        failure.halves(|node| self.routers[node.index()].peers().collect())
    }

    /// Schedules `failure` to fire `delay` after the current time.
    pub fn schedule_failure(&mut self, delay: SimDuration, failure: FailureEvent) {
        let at = self.engine.now() + delay;
        self.schedule_failure_at(at, failure);
    }

    /// Schedules `failure` to fire at the absolute time `at`. The
    /// failure is split into per-node halves *now* (so the halves get
    /// consecutive order keys and stay adjacent in the global event
    /// order); they all fire at `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past.
    pub fn schedule_failure_at(&mut self, at: SimTime, failure: FailureEvent) {
        self.sched_lane = self.harness_lane();
        for half in self.split_failure(failure) {
            self.schedule_event(at, NetEvent::Failure(half));
        }
    }

    /// Injects `failure` at the current time.
    pub fn inject_failure(&mut self, failure: FailureEvent) {
        let now = self.engine.now();
        for half in self.split_failure(failure) {
            // Mirror dispatch: each half acts under its own node's
            // lane, exactly as if it had been scheduled and popped.
            self.sched_lane = half.node().as_u32();
            self.apply_half(half, now, false);
        }
        self.sched_lane = self.harness_lane();
    }

    /// Total engine events dispatched so far (monotone over the run).
    pub fn events_dispatched(&self) -> u64 {
        self.events_dispatched
    }

    /// Installs a [`FaultPlan`]: validates it, installs per-link loss
    /// models, expands flap trains under the run seed, and schedules
    /// every resulting fault relative to the `anchor` time.
    ///
    /// Determinism: loss models draw from child generators forked off
    /// the run seed per directed link, and the expansion itself is a
    /// pure function of `(seed, plan)` — nothing here perturbs the main
    /// RNG stream, so a plan-free run stays byte-identical to pre-fault
    /// behavior.
    pub fn apply_fault_plan(
        &mut self,
        plan: &FaultPlan,
        anchor: SimTime,
    ) -> Result<(), FaultError> {
        plan.validate()?;
        // Reject unknown links before touching any state.
        for l in &plan.loss {
            if self.link_mut(l.a, l.b).is_none() || self.link_mut(l.b, l.a).is_none() {
                return Err(FaultError::UnknownLink { a: l.a, b: l.b });
            }
        }
        let events = plan.expand(self.seed);
        for ev in &events {
            if let FaultKind::LinkDown { a, b }
            | FaultKind::LinkUp { a, b }
            | FaultKind::SessionReset { a, b } = ev.kind
            {
                if self.link_mut(a, b).is_none() {
                    return Err(FaultError::UnknownLink { a, b });
                }
            }
            if anchor + ev.at < self.engine.now() {
                return Err(FaultError::EventInPast {
                    at: anchor + ev.at,
                    now: self.engine.now(),
                });
            }
        }
        for l in &plan.loss {
            if l.probability <= 0.0 {
                // Lossless entries install nothing, so they can never
                // draw and never perturb byte-identity.
                continue;
            }
            for (x, y) in [(l.a, l.b), (l.b, l.a)] {
                let rng = self.rng_root.fork(FaultPlan::loss_stream(x, y));
                self.link_mut(x, y)
                    .expect("loss link checked above")
                    .set_loss(l.probability, rng);
            }
        }
        self.sched_lane = self.harness_lane();
        for ev in events {
            let failure = match ev.kind {
                FaultKind::LinkDown { a, b } => FailureEvent::LinkDown { a, b },
                FaultKind::LinkUp { a, b } => FailureEvent::LinkUp { a, b },
                FaultKind::SessionReset { a, b } => FailureEvent::SessionReset { a, b },
                FaultKind::Withdraw { origin, prefix } => {
                    FailureEvent::WithdrawPrefix { origin, prefix }
                }
            };
            // Every event time was checked against the clock above, so
            // the panicking schedule path is unreachable-in-error here.
            for half in self.split_failure(failure) {
                self.schedule_event(anchor + ev.at, NetEvent::Fault(half));
            }
        }
        Ok(())
    }

    /// Injects a live, event-driven data packet (for cross-validating
    /// the replay data plane).
    ///
    /// # Panics
    ///
    /// Panics if the packet's send time is in the past.
    pub fn inject_packet(&mut self, packet: Packet) {
        self.sched_lane = self.harness_lane();
        self.schedule_event(
            packet.sent_at,
            NetEvent::PacketHop {
                id: packet.id,
                node: packet.src,
                prefix: packet.prefix,
                ttl: packet.ttl,
                hops: 0,
            },
        );
    }

    /// Pops one event (advancing the clock), dispatches it, and does
    /// the per-dispatch bookkeeping shared by every run loop.
    fn step(&mut self, now: SimTime, order: u64, ev: NetEvent) {
        self.events_dispatched += 1;
        self.sched_lane = ev.node().as_u32();
        self.trace_dispatch(&ev, now);
        self.dispatch(ev, now);
        if let Some(ctx) = self.shard.as_mut() {
            ctx.end_dispatch(
                now,
                order,
                self.sends.len(),
                self.path_changes.len(),
                self.live_fates.len(),
            );
        }
    }

    /// Runs the event loop until no events remain, or until `budget`
    /// events have been dispatched.
    pub fn run_to_quiescence(&mut self, budget: u64) -> RunOutcome {
        let mut remaining = budget;
        while let Some((now, order, ev)) = self.engine.pop_keyed() {
            self.step(now, order, ev);
            remaining -= 1;
            if remaining == 0 {
                return RunOutcome::BudgetExhausted;
            }
        }
        RunOutcome::Quiescent
    }

    /// Runs the event loop for `duration` of simulated time (or until
    /// `budget` events), leaving later events pending. The clock ends
    /// exactly at the horizon unless a pending event forbids it — use
    /// this to observe transient state (e.g. damping suppression
    /// windows) that [`run_to_quiescence`](Self::run_to_quiescence)
    /// would fast-forward through.
    pub fn run_for(&mut self, duration: SimDuration, budget: u64) -> RunOutcome {
        let horizon = self.engine.now() + duration;
        let mut remaining = budget;
        while let Some((now, order, ev)) = self.engine.pop_until_keyed(horizon) {
            self.step(now, order, ev);
            remaining -= 1;
            if remaining == 0 {
                return RunOutcome::BudgetExhausted;
            }
        }
        if self.engine.next_event_time().is_none_or(|t| t >= horizon) {
            self.engine.advance_to(horizon);
        }
        RunOutcome::Quiescent
    }

    /// Consumes the simulation and returns the recorded observations.
    pub fn into_record(self) -> RunRecord {
        let messages_lost = self
            .links
            .iter()
            .flatten()
            .map(|(_, link)| link.stats().lost)
            .sum();
        RunRecord {
            node_count: self.routers.len(),
            failure_at: self.failure_at,
            quiescent_at: self.engine.now(),
            sends: self.sends,
            fib: self.fib,
            path_changes: self.path_changes,
            live_fates: self.live_fates,
            router_stats: self.routers.iter().map(|r| r.stats()).collect(),
            events_dispatched: self.events_dispatched,
            max_queue_depth: self.engine.stats().max_pending,
            faults_injected: self.faults_injected,
            session_resets: self.session_resets,
            messages_lost,
        }
    }

    /// Captures the complete simulation state at the current instant.
    ///
    /// The snapshot is **isomorphic**: [`SimNetwork::restore_with_policies`]
    /// rebuilds a simulation whose every future observable — event
    /// deliveries, RNG draws, loss decisions, recorded outputs — is
    /// bit-identical to this one's. Pending events keep their original
    /// `(time, seq)` keys, so [`EventId`]s captured before the snapshot
    /// (the MRAI slots) remain valid against the restored engine.
    ///
    /// The trace handle is *not* captured — tracing is observational,
    /// and the restorer attaches its own sink (or inherits the global
    /// one). Routing policies are not captured either: like
    /// [`SimNetwork::with_policies`], the restorer supplies them,
    /// because policies are stateless decision functions.
    pub fn snapshot(&self) -> NetworkSnapshot {
        let links = self
            .links
            .iter()
            .enumerate()
            .flat_map(|(i, adj)| {
                adj.iter()
                    .map(move |(to, link)| (NodeId::new(i as u32), *to, link.snapshot()))
            })
            .collect();
        NetworkSnapshot {
            engine: self.engine.snapshot(),
            routers: self.routers.iter().map(|r| r.snapshot()).collect(),
            links,
            processors: self.processors.iter().map(|p| p.snapshot()).collect(),
            rng: self.rng_root.capture(),
            rng_lanes: self.rng_lanes.iter().map(|r| r.capture()).collect(),
            lane_ctrs: self.lane_ctrs.clone(),
            params: self.params,
            fib_changes: self.fib.iter_changes().collect(),
            sends: self.sends.clone(),
            path_changes: self.path_changes.clone(),
            live_fates: self.live_fates.clone(),
            failure_at: self.failure_at,
            events_dispatched: self.events_dispatched,
            faults_injected: self.faults_injected,
            session_resets: self.session_resets,
            seed: self.seed,
            mrai_pending: self
                .mrai_pending
                .iter()
                .map(|slots| {
                    slots
                        .iter()
                        .map(|s| (s.peer, s.prefix, s.event.as_u64(), s.at))
                        .collect()
                })
                .collect(),
        }
    }

    /// Rebuilds a simulation from a snapshot, supplying per-node
    /// routing policies (the snapshot does not carry them — see
    /// [`SimNetwork::snapshot`]). The restored network uses the
    /// process-wide trace sink; attach a specific one with
    /// [`SimNetwork::with_tracer`].
    ///
    /// # Panics
    ///
    /// Panics if the snapshot is internally inconsistent (out-of-range
    /// node ids, invalid router config, time-order violations in the
    /// FIB history).
    pub fn restore_with_policies<F>(snap: NetworkSnapshot, mut policy_for: F) -> Self
    where
        F: FnMut(NodeId) -> P,
    {
        let n = snap.routers.len();
        assert_eq!(snap.processors.len(), n, "one processor per node");
        assert_eq!(snap.mrai_pending.len(), n, "one MRAI slot list per node");
        assert_eq!(snap.rng_lanes.len(), n, "one RNG lane per node");
        assert_eq!(snap.lane_ctrs.len(), n + 1, "node lanes plus harness lane");
        let routers: Vec<Router<P>> = snap
            .routers
            .into_iter()
            .map(|state| {
                let policy = policy_for(state.id);
                Router::from_state(state, policy)
            })
            .collect();
        let mut links: Vec<Vec<(NodeId, Link)>> = vec![Vec::new(); n];
        for (from, to, link) in snap.links {
            links[from.index()].push((to, Link::from_snapshot(link)));
        }
        for adj in &mut links {
            adj.sort_by_key(|&(to, _)| to);
        }
        let mut fib = NetworkFib::new(n);
        for (node, prefix, time, entry) in snap.fib_changes {
            fib.record(node, prefix, time, entry);
        }
        SimNetwork {
            engine: Engine::from_snapshot(snap.engine),
            routers,
            links,
            processors: snap
                .processors
                .into_iter()
                .map(Processor::from_snapshot)
                .collect(),
            rng_root: SimRng::restore(snap.rng),
            rng_lanes: snap.rng_lanes.into_iter().map(SimRng::restore).collect(),
            lane_ctrs: snap.lane_ctrs,
            sched_lane: n as u32,
            shard: None,
            params: snap.params,
            fib,
            sends: snap.sends,
            path_changes: snap.path_changes,
            live_fates: snap.live_fates,
            failure_at: snap.failure_at,
            events_dispatched: snap.events_dispatched,
            faults_injected: snap.faults_injected,
            session_resets: snap.session_resets,
            seed: snap.seed,
            tracer: TraceHandle::global(),
            mrai_pending: snap
                .mrai_pending
                .into_iter()
                .map(|slots| {
                    slots
                        .into_iter()
                        .map(|(peer, prefix, event, at)| MraiSlot {
                            peer,
                            prefix,
                            event: EventId::from_raw(event),
                            at,
                        })
                        .collect()
                })
                .collect(),
        }
    }

    /// Records a trace event: emitted immediately for serial runs,
    /// buffered per-shard for sharded runs (the merge re-emits every
    /// shard's buffer in global event order, so the final stream is
    /// byte-identical to the serial one).
    fn push_trace(&mut self, ev: TraceEvent) {
        match self.shard.as_mut() {
            Some(ctx) => ctx.trace_buf.push(ev),
            None => self.tracer.emit(|| ev),
        }
    }

    #[inline]
    fn trace_dispatch(&mut self, ev: &NetEvent, now: SimTime) {
        if !self.tracer.is_enabled() {
            return;
        }
        // Queue depth is a global-queue property: a shard only knows
        // its local depth, so sharded runs emit a placeholder that the
        // merge overwrites with the replayed serial depth.
        let queue_depth = match self.shard {
            Some(_) => 0,
            None => self.engine.pending() as u64,
        };
        let tev = TraceEvent::EventDispatch {
            seed: self.seed,
            t: now.as_nanos(),
            class: ev.class(),
            queue_depth,
        };
        self.push_trace(tev);
    }

    fn dispatch(&mut self, ev: NetEvent, now: SimTime) {
        match ev {
            NetEvent::MessageArrival { to, from, msg } => {
                let service = self.rng_lanes[to.index()]
                    .uniform_duration(self.params.proc_delay_lo, self.params.proc_delay_hi);
                let done = self.processors[to.index()].admit(now, service);
                self.schedule_event(done, NetEvent::MessageProcessed { to, from, msg });
            }
            NetEvent::MessageProcessed { to, from, msg } => {
                if self.tracer.is_enabled() {
                    let tev = TraceEvent::UpdateRx {
                        seed: self.seed,
                        t: now.as_nanos(),
                        node: to.as_u32(),
                        from: from.as_u32(),
                        withdraw: msg.is_withdraw(),
                    };
                    self.push_trace(tev);
                }
                let out = self.routers[to.index()].handle_message(
                    from,
                    &msg,
                    now,
                    &mut self.rng_lanes[to.index()],
                );
                self.apply_output(to, out, now);
            }
            NetEvent::MraiExpiry { node, peer, prefix } => {
                if self.tracer.is_enabled() {
                    let tev = TraceEvent::MraiFired {
                        seed: self.seed,
                        t: now.as_nanos(),
                        node: node.as_u32(),
                        peer: peer.as_u32(),
                    };
                    self.push_trace(tev);
                }
                let out = self.routers[node.index()].on_mrai_expire(
                    peer,
                    prefix,
                    now,
                    &mut self.rng_lanes[node.index()],
                );
                self.apply_output(node, out, now);
            }
            NetEvent::DampingReuse { node, peer, prefix } => {
                let out = self.routers[node.index()].on_damping_reuse(
                    peer,
                    prefix,
                    now,
                    &mut self.rng_lanes[node.index()],
                );
                self.apply_output(node, out, now);
            }
            NetEvent::Failure(half) => self.apply_half(half, now, false),
            NetEvent::Fault(half) => self.apply_half(half, now, true),
            NetEvent::PacketHop {
                id,
                node,
                prefix,
                ttl,
                hops,
            } => self.packet_hop(id, node, prefix, ttl, hops, now),
        }
    }

    /// Applies one failure half. The primary half (the one carrying
    /// `origin_event`) does the per-failure bookkeeping — counters and
    /// `fault_injected` / `session_reset` trace lines — exactly once
    /// per injected failure; every half stamps `failure_at`, so the
    /// stamp lands at the failure instant regardless of which half of
    /// it runs first.
    fn apply_half(&mut self, half: FailureHalf, now: SimTime, from_plan: bool) {
        if self.failure_at.is_none() {
            self.failure_at = Some(now);
        }
        if let Some(origin) = half.origin_event {
            if from_plan {
                self.faults_injected += 1;
                if self.tracer.is_enabled() {
                    let tev = TraceEvent::FaultInjected {
                        seed: self.seed,
                        t: now.as_nanos(),
                        fault: origin.describe(),
                    };
                    self.push_trace(tev);
                }
            }
            if let FailureEvent::SessionReset { a, b } = origin {
                self.session_resets += 1;
                if self.tracer.is_enabled() {
                    let tev = TraceEvent::SessionReset {
                        seed: self.seed,
                        t: now.as_nanos(),
                        a: a.as_u32(),
                        b: b.as_u32(),
                    };
                    self.push_trace(tev);
                }
            }
        }
        match half.action {
            HalfAction::Withdraw { origin, prefix } => {
                let out = self.routers[origin.index()].withdraw_origin(
                    prefix,
                    now,
                    &mut self.rng_lanes[origin.index()],
                );
                self.apply_output(origin, out, now);
            }
            HalfAction::PeerDown { node, peer } => {
                if node == peer {
                    // Degenerate bookkeeping half for an isolated
                    // NodeDown: nothing to fail.
                    return;
                }
                if let Some(link) = self.link_mut(node, peer) {
                    link.fail();
                }
                let out = self.routers[node.index()].on_peer_down(
                    peer,
                    now,
                    &mut self.rng_lanes[node.index()],
                );
                self.apply_output(node, out, now);
            }
            HalfAction::PeerUp { node, peer } => {
                if let Some(link) = self.link_mut(node, peer) {
                    link.restore();
                }
                let out = self.routers[node.index()].on_peer_up(
                    peer,
                    now,
                    &mut self.rng_lanes[node.index()],
                );
                self.apply_output(node, out, now);
            }
            HalfAction::ResetPeer { node, peer } => {
                // The link stays up, so in-flight messages still
                // arrive (and are then judged by the post-reset RIBs).
                let out = self.routers[node.index()].reset_peer(
                    peer,
                    now,
                    &mut self.rng_lanes[node.index()],
                );
                self.apply_output(node, out, now);
            }
        }
    }

    /// The directed link `from -> to`, if the edge exists.
    fn link_mut(&mut self, from: NodeId, to: NodeId) -> Option<&mut Link> {
        let adj = &mut self.links[from.index()];
        match adj.binary_search_by_key(&to, |&(n, _)| n) {
            Ok(i) => Some(&mut adj[i].1),
            Err(_) => None,
        }
    }

    fn apply_output(&mut self, node: NodeId, out: RouterOutput, now: SimTime) {
        for (prefix, entry) in out.fib_changes {
            self.fib.record(node, prefix, now, entry);
            let path = self.routers[node.index()]
                .best(prefix)
                .map(|r| r.path.clone());
            if self.tracer.is_enabled() {
                let tev = TraceEvent::RibChange {
                    seed: self.seed,
                    t: now.as_nanos(),
                    node: node.as_u32(),
                    path: path.as_ref().map(|p| p.ids().collect()).unwrap_or_default(),
                };
                self.push_trace(tev);
            }
            self.path_changes.push(crate::record::PathChange {
                at: now,
                node,
                prefix,
                path,
            });
        }
        for (to, msg) in out.sends {
            if self.tracer.is_enabled() {
                let tev = TraceEvent::UpdateTx {
                    seed: self.seed,
                    t: now.as_nanos(),
                    node: node.as_u32(),
                    to: to.as_u32(),
                    withdraw: msg.is_withdraw(),
                    path_len: msg.path().map_or(0, |p| p.len() as u64),
                };
                self.push_trace(tev);
            }
            self.sends.push(UpdateSend {
                at: now,
                from: node,
                to,
                withdraw: msg.is_withdraw(),
                message: msg.clone(),
            });
            let link = self
                .link_mut(node, to)
                .unwrap_or_else(|| panic!("no link {node} -> {to}"));
            if let Some(arrival) = link.transmit(now) {
                self.schedule_event(
                    arrival,
                    NetEvent::MessageArrival {
                        to,
                        from: node,
                        msg,
                    },
                );
            }
        }
        for timer in out.timers {
            self.schedule_mrai(node, timer.peer, timer.prefix, timer.at, now);
        }
        for timer in out.reuse_timers {
            self.schedule_event(
                timer.at,
                NetEvent::DampingReuse {
                    node,
                    peer: timer.peer,
                    prefix: timer.prefix,
                },
            );
        }
    }

    /// Schedules an MRAI expiry event, reusing the per-(node, peer,
    /// prefix) slot.
    ///
    /// A router only requests a timer when none is running, so a still
    /// pending event in the slot can mean just two things: it already
    /// fired (cancel is then a no-op), or it is the sync-vs-expiry race
    /// — the peer was synced at exactly the old expiry instant, before
    /// the expiry event was dispatched. In the race the old event is due
    /// *now* and the router's restarted timer guarantees its dispatch
    /// would hit the "restarted timer supersedes" guard and do nothing,
    /// so cancelling it cannot change the run; it only spares the
    /// no-op dispatch and the queue slot. Superseded events with a
    /// *future* due time (possible after a peer-down cleared the MRAI
    /// table) are left alone: their eventual dispatch is not provably
    /// inert, and dispatching them is what the router expects.
    fn schedule_mrai(
        &mut self,
        node: NodeId,
        peer: NodeId,
        prefix: Prefix,
        at: SimTime,
        now: SimTime,
    ) {
        // Cancel before scheduling so the queue's max-depth statistic
        // never counts the superseded and the fresh event at once.
        let idx = self.mrai_pending[node.index()]
            .iter()
            .position(|s| s.peer == peer && s.prefix == prefix);
        if let Some(i) = idx {
            let slot = self.mrai_pending[node.index()][i];
            if slot.at <= now {
                self.cancel_event(slot.event);
            }
        }
        let event = self.schedule_event(at, NetEvent::MraiExpiry { node, peer, prefix });
        let slots = &mut self.mrai_pending[node.index()];
        match idx {
            Some(i) => {
                slots[i].event = event;
                slots[i].at = at;
            }
            None => slots.push(MraiSlot {
                peer,
                prefix,
                event,
                at,
            }),
        }
    }

    fn packet_hop(
        &mut self,
        id: u64,
        node: NodeId,
        prefix: Prefix,
        ttl: u32,
        hops: u32,
        now: SimTime,
    ) {
        match self.fib.current(node, prefix) {
            Some(FibEntry::Local) => {
                self.live_fates
                    .push((id, PacketFate::Delivered { at: now, hops }));
            }
            None => {
                self.live_fates
                    .push((id, PacketFate::NoRoute { at: now, node }));
            }
            Some(FibEntry::Via(next)) => {
                if ttl == 0 {
                    self.live_fates
                        .push((id, PacketFate::TtlExhausted { at: now, node }));
                    return;
                }
                self.schedule_event(
                    now + self.params.link_delay,
                    NetEvent::PacketHop {
                        id,
                        node: next,
                        prefix,
                        ttl: ttl - 1,
                        hops: hops + 1,
                    },
                );
            }
        }
    }
}

// ---- sharded-execution hooks (crate-internal; see `crate::sharded`) ----
impl<P: RoutePolicy> SimNetwork<P> {
    /// Attaches a sharded-execution context: from here on this network
    /// is the worker for `ctx.shard_id`, scheduling only events whose
    /// node it owns and logging dispatches for the deterministic merge.
    pub(crate) fn attach_shard(&mut self, ctx: Box<ShardCtx>) {
        assert!(self.shard.is_none(), "shard context already attached");
        assert_eq!(ctx.owner.len(), self.routers.len());
        self.shard = Some(ctx);
    }

    /// Switches replicated-harness mode: while replicating, every
    /// shard executes the same harness calls and foreign-node events
    /// are dropped instead of outboxed (the owner schedules its own
    /// copy).
    pub(crate) fn set_replicating(&mut self, on: bool) {
        self.shard
            .as_mut()
            .expect("replication requires a shard context")
            .replicating = on;
    }

    /// Closes the current harness segment (originate / failure
    /// scheduling), recording its push bookkeeping and output cursors
    /// for the merge.
    pub(crate) fn end_harness_segment(&mut self) {
        let sends = self.sends.len();
        let paths = self.path_changes.len();
        let fates = self.live_fates.len();
        self.shard
            .as_mut()
            .expect("harness segment requires a shard context")
            .end_harness_segment(sends, paths, fates);
    }

    /// Marks the end of a window-driven phase in the dispatch log.
    pub(crate) fn end_phase(&mut self) {
        self.shard
            .as_mut()
            .expect("phase marker requires a shard context")
            .end_phase();
    }

    /// Pops and dispatches every pending event with `time < horizon`
    /// (the conservative window), returning the number dispatched.
    /// Cross-shard events accumulate in the context's outbox.
    pub(crate) fn run_window(&mut self, horizon: SimTime) -> u64 {
        let mut n = 0;
        while let Some((now, order, ev)) = self.engine.pop_before_keyed(horizon) {
            self.step(now, order, ev);
            n += 1;
        }
        n
    }

    /// Inserts an event received from another shard. The key keeps the
    /// order assigned by the scheduling shard; lane counters and push
    /// bookkeeping are untouched (the scheduling shard counted it).
    pub(crate) fn insert_remote(&mut self, at: SimTime, order: u64, ev: NetEvent) {
        let is_arrival = matches!(ev, NetEvent::MessageArrival { .. });
        let id = self.engine.schedule_at_ordered(at, order, ev);
        self.shard
            .as_mut()
            .expect("remote insert requires a shard context")
            .note_pending(at, order, id.as_u64(), is_arrival);
    }

    /// Drains the cross-shard outbox accumulated by the last window.
    pub(crate) fn take_outbox(&mut self) -> Vec<(u32, SimTime, u64, NetEvent)> {
        std::mem::take(
            &mut self
                .shard
                .as_mut()
                .expect("outbox requires a shard context")
                .outbox,
        )
    }

    /// This shard's earliest-output time (EOT) in nanoseconds: a lower
    /// bound on the arrival time of any cross-shard message it can
    /// still produce. `u64::MAX` when the shard is idle.
    ///
    /// Two pending-event classes bound it:
    /// * a *sendable* event at `t` (anything but a message arrival)
    ///   can put a message on a link at `t`, arriving at `t + link`;
    /// * an *arrival* at `t` must first clear the node's processor
    ///   (`≥ proc_delay_lo`), so its effects reach other shards no
    ///   earlier than `t + proc_delay_lo + link`.
    ///
    /// Same-time local cascades never lower either bound, because
    /// every spawned event fires no earlier than its parent.
    pub(crate) fn shard_eot(&mut self) -> u64 {
        let ctx = self.shard.as_mut().expect("EOT requires a shard context");
        let link = self.params.link_delay;
        let proc_lo = self.params.proc_delay_lo;
        let min_sendable = ctx.min_pending_sendable(&self.engine);
        let min_arrival = ctx.min_pending_arrival(&self.engine);
        let from_sendable = min_sendable.map(|t| (t + link).as_nanos());
        let from_arrival = min_arrival.map(|t| (t + proc_lo + link).as_nanos());
        match (from_sendable, from_arrival) {
            (Some(a), Some(b)) => a.min(b),
            (Some(a), None) => a,
            (None, Some(b)) => b,
            (None, None) => u64::MAX,
        }
    }

    /// Consumes the worker network and returns everything the merge
    /// needs.
    pub(crate) fn into_shard_parts(self) -> crate::sharded::ShardParts {
        let ctx = *self.shard.expect("worker network has a shard context");
        crate::sharded::ShardParts {
            shard_id: ctx.shard_id,
            now: self.engine.now(),
            queue_hiwater: self.engine.stats().max_pending,
            router_stats: self.routers.iter().map(|r| r.stats()).collect(),
            link_lost: self
                .links
                .iter()
                .enumerate()
                .flat_map(|(i, adj)| {
                    adj.iter()
                        .map(move |(to, link)| (NodeId::new(i as u32), *to, link.stats().lost))
                })
                .collect(),
            fib_changes: self.fib.iter_changes().collect(),
            sends: self.sends,
            path_changes: self.path_changes,
            live_fates: self.live_fates,
            failure_at: self.failure_at,
            events_dispatched: self.events_dispatched,
            faults_injected: self.faults_injected,
            session_resets: self.session_resets,
            log: ctx.log,
            segs: ctx.segs,
            phase_log_ends: ctx.phase_log_ends,
            trace_buf: ctx.trace_buf,
        }
    }
}

/// Convenience message types re-exported for host code.
pub use bgpsim_core::BgpMessage as Message;

#[cfg(test)]
mod tests {
    use super::*;
    use bgpsim_core::Jitter;
    use bgpsim_topology::generators;

    fn cfg() -> BgpConfig {
        BgpConfig::default().with_jitter(Jitter::NONE)
    }

    fn p() -> Prefix {
        Prefix::new(0)
    }

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn line_converges_to_shortest_paths() {
        let g = generators::chain(4);
        let mut net = SimNetwork::new(&g, cfg(), SimParams::default(), 1);
        net.originate(n(0), p());
        assert_eq!(net.run_to_quiescence(1_000_000), RunOutcome::Quiescent);
        let rec = net.into_record();
        assert_eq!(rec.fib.current(n(0), p()), Some(FibEntry::Local));
        assert_eq!(rec.fib.current(n(1), p()), Some(FibEntry::Via(n(0))));
        assert_eq!(rec.fib.current(n(2), p()), Some(FibEntry::Via(n(1))));
        assert_eq!(rec.fib.current(n(3), p()), Some(FibEntry::Via(n(2))));
    }

    #[test]
    fn clique_initial_convergence_points_at_origin() {
        let g = generators::clique(6);
        let mut net = SimNetwork::new(&g, cfg(), SimParams::default(), 3);
        net.originate(n(0), p());
        assert_eq!(net.run_to_quiescence(10_000_000), RunOutcome::Quiescent);
        let rec = net.into_record();
        for i in 1..6 {
            assert_eq!(
                rec.fib.current(n(i), p()),
                Some(FibEntry::Via(n(0))),
                "node {i} must use the direct path"
            );
        }
    }

    #[test]
    fn converged_routes_match_bfs_oracle() {
        // After quiescence, every node's next hop must match the
        // BFS shortest-path oracle with smaller-id tie-breaks.
        let g = generators::internet_like(29, 7);
        let dest = n(28);
        let mut net = SimNetwork::new(&g, cfg(), SimParams::default(), 7);
        net.originate(dest, p());
        assert_eq!(net.run_to_quiescence(50_000_000), RunOutcome::Quiescent);
        let rec = net.into_record();
        let oracle = bgpsim_topology::algo::shortest_path_next_hops(&g, dest);
        for v in g.nodes() {
            if v == dest {
                assert_eq!(rec.fib.current(v, p()), Some(FibEntry::Local));
                continue;
            }
            let got = rec.fib.current(v, p()).and_then(|e| e.via());
            assert_eq!(got, oracle[v.index()], "next hop mismatch at {v}");
        }
    }

    #[test]
    fn tdown_withdrawal_reaches_everyone() {
        let g = generators::clique(5);
        let mut net = SimNetwork::new(&g, cfg(), SimParams::default(), 5);
        net.originate(n(0), p());
        net.run_to_quiescence(10_000_000);
        net.inject_failure(FailureEvent::WithdrawPrefix {
            origin: n(0),
            prefix: p(),
        });
        assert_eq!(net.run_to_quiescence(10_000_000), RunOutcome::Quiescent);
        let rec = net.into_record();
        assert!(rec.failure_at.is_some());
        for i in 0..5 {
            assert_eq!(
                rec.fib.current(n(i), p()),
                None,
                "node {i} must end with no route after T_down"
            );
        }
        assert!(
            rec.convergence_time().is_some(),
            "withdrawal must trigger sends"
        );
    }

    #[test]
    fn tlong_reroutes_over_backup() {
        let (g, layout) = generators::bclique(4);
        let mut net = SimNetwork::new(&g, cfg(), SimParams::default(), 9);
        net.originate(layout.destination, p());
        net.run_to_quiescence(10_000_000);
        net.inject_failure(FailureEvent::LinkDown {
            a: layout.destination,
            b: layout.core_gateway,
        });
        assert_eq!(net.run_to_quiescence(50_000_000), RunOutcome::Quiescent);
        let rec = net.into_record();
        // Everyone still has a route; the core gateway now goes through
        // the clique toward the chain.
        for v in g.nodes() {
            if v == layout.destination {
                continue;
            }
            assert!(
                rec.fib.current(v, p()).is_some(),
                "node {v} lost the destination after T_long"
            );
        }
        // Final state matches BFS on the post-failure graph.
        let mut g2 = g;
        g2.remove_edge(layout.destination, layout.core_gateway);
        let oracle = bgpsim_topology::algo::shortest_path_next_hops(&g2, layout.destination);
        for v in g2.nodes() {
            if v == layout.destination {
                continue;
            }
            let got = rec.fib.current(v, p()).and_then(|e| e.via());
            assert_eq!(got, oracle[v.index()], "next hop mismatch at {v}");
        }
    }

    #[test]
    fn identical_seeds_give_identical_runs() {
        let run = |seed: u64| {
            let g = generators::clique(5);
            let mut net = SimNetwork::new(&g, BgpConfig::default(), SimParams::default(), seed);
            net.originate(n(0), p());
            net.run_to_quiescence(10_000_000);
            net.inject_failure(FailureEvent::WithdrawPrefix {
                origin: n(0),
                prefix: p(),
            });
            net.run_to_quiescence(10_000_000);
            let rec = net.into_record();
            (rec.sends, rec.quiescent_at)
        };
        assert_eq!(run(11), run(11));
        assert_ne!(run(11), run(12));
    }

    #[test]
    fn budget_exhaustion_is_reported() {
        let g = generators::clique(8);
        let mut net = SimNetwork::new(&g, cfg(), SimParams::default(), 2);
        net.originate(n(0), p());
        assert_eq!(net.run_to_quiescence(3), RunOutcome::BudgetExhausted);
    }

    #[test]
    fn live_packets_are_delivered_on_converged_network() {
        let g = generators::chain(3);
        let mut net = SimNetwork::new(&g, cfg(), SimParams::default(), 4);
        net.originate(n(0), p());
        net.run_to_quiescence(1_000_000);
        let t = net.now() + SimDuration::from_secs(1);
        net.inject_packet(Packet {
            id: 77,
            src: n(2),
            prefix: p(),
            ttl: 128,
            sent_at: t,
        });
        net.run_to_quiescence(1_000_000);
        let rec = net.into_record();
        assert_eq!(rec.live_fates.len(), 1);
        assert_eq!(rec.live_fates[0].0, 77);
        assert!(rec.live_fates[0].1.is_delivered());
    }

    #[test]
    fn run_for_bounds_time_and_preserves_later_events() {
        let g = generators::clique(5);
        let mut net = SimNetwork::new(&g, cfg(), SimParams::default(), 8);
        net.originate(n(0), p());
        // One second of simulated time: the clock lands exactly on the
        // horizon; MRAI timers (≈30 s out) remain pending.
        assert_eq!(
            net.run_for(SimDuration::from_secs(1), 10_000_000),
            RunOutcome::Quiescent
        );
        assert_eq!(net.now(), SimTime::from_secs(1));
        let sends_so_far = net.sends().len();
        assert!(sends_so_far > 0, "initial flooding happened");
        // Draining afterwards completes convergence without losing the
        // pending timers.
        assert_eq!(net.run_to_quiescence(10_000_000), RunOutcome::Quiescent);
        for i in 1..5 {
            assert_eq!(net.fib().current(n(i), p()), Some(FibEntry::Via(n(0))));
        }
    }

    #[test]
    fn run_for_matches_full_run_prefix() {
        // Chopping a run into run_for slices yields the identical send
        // log as one run_to_quiescence (determinism across pacing).
        let run_sliced = || {
            let g = generators::clique(5);
            let mut net = SimNetwork::new(&g, cfg(), SimParams::default(), 9);
            net.originate(n(0), p());
            for _ in 0..50 {
                net.run_for(SimDuration::from_secs(2), 10_000_000);
            }
            net.run_to_quiescence(10_000_000);
            net.into_record().sends
        };
        let run_whole = || {
            let g = generators::clique(5);
            let mut net = SimNetwork::new(&g, cfg(), SimParams::default(), 9);
            net.originate(n(0), p());
            net.run_to_quiescence(10_000_000);
            net.into_record().sends
        };
        assert_eq!(run_sliced(), run_whole());
    }

    #[test]
    fn session_reset_flushes_and_reconverges() {
        let g = generators::clique(4);
        let mut net = SimNetwork::new(&g, cfg(), SimParams::default(), 13);
        net.originate(n(0), p());
        net.run_to_quiescence(10_000_000);
        net.inject_failure(FailureEvent::SessionReset { a: n(0), b: n(1) });
        assert_eq!(net.run_to_quiescence(10_000_000), RunOutcome::Quiescent);
        let rec = net.into_record();
        assert_eq!(rec.session_resets, 1);
        // The reset is transient: the final routes are as before.
        for i in 1..4 {
            assert_eq!(rec.fib.current(n(i), p()), Some(FibEntry::Via(n(0))));
        }
    }

    #[test]
    fn fault_plan_unknown_link_is_rejected() {
        let g = generators::chain(3);
        let mut net = SimNetwork::new(&g, cfg(), SimParams::default(), 1);
        let plan = bgpsim_faults::FaultPlan::new().link_down(SimDuration::ZERO, n(0), n(2));
        let err = net.apply_fault_plan(&plan, net.now()).unwrap_err();
        assert_eq!(
            err,
            bgpsim_faults::FaultError::UnknownLink { a: n(0), b: n(2) }
        );
    }

    #[test]
    fn fault_plan_into_past_is_typed_error_not_panic() {
        let g = generators::chain(3);
        let mut net = SimNetwork::new(&g, cfg(), SimParams::default(), 1);
        net.originate(n(0), p());
        net.run_to_quiescence(1_000_000);
        let now = net.now();
        assert!(now > SimTime::ZERO);
        let plan = bgpsim_faults::FaultPlan::new().link_down(SimDuration::ZERO, n(0), n(1));
        let err = net.apply_fault_plan(&plan, SimTime::ZERO).unwrap_err();
        assert_eq!(
            err,
            bgpsim_faults::FaultError::EventInPast {
                at: SimTime::ZERO,
                now
            }
        );
        // The rejected plan scheduled nothing.
        assert_eq!(net.run_to_quiescence(1_000_000), RunOutcome::Quiescent);
        let rec = net.into_record();
        assert_eq!(rec.faults_injected, 0);
    }

    #[test]
    fn lossy_link_drops_are_counted_and_deterministic() {
        let run = |seed: u64| {
            let g = generators::clique(5);
            let mut net = SimNetwork::new(&g, cfg(), SimParams::default(), seed);
            let plan = bgpsim_faults::FaultPlan::new()
                .loss(n(0), n(1), 0.5)
                .session_reset(SimDuration::from_secs(1), n(0), n(1));
            net.apply_fault_plan(&plan, net.now()).unwrap();
            net.originate(n(0), p());
            net.run_to_quiescence(10_000_000);
            net.into_record()
        };
        let a = run(21);
        let b = run(21);
        assert_eq!(a.sends, b.sends);
        assert_eq!(a.messages_lost, b.messages_lost);
        assert!(a.messages_lost > 0, "p=0.5 on a busy link must drop some");
        assert_eq!(a.faults_injected, 1);
        assert_eq!(a.session_resets, 1);
    }

    #[test]
    fn snapshot_restore_resumes_bit_identically() {
        // Run partway (mid-flood, with jitter so the RNG is mid-stream
        // and MRAI timers are pending), snapshot, restore, and drain
        // both copies: every recorded observation must match.
        let build = || {
            let g = generators::clique(6);
            let mut net = SimNetwork::new(&g, BgpConfig::default(), SimParams::default(), 17);
            net.originate(n(0), p());
            net.run_for(SimDuration::from_millis(700), 10_000_000);
            net.inject_failure(FailureEvent::LinkDown { a: n(0), b: n(1) });
            net.run_for(SimDuration::from_millis(300), 10_000_000);
            net
        };
        let mut original = build();
        let snap = original.snapshot();
        let mut restored = SimNetwork::restore(snap.clone());
        assert_eq!(original.now(), restored.now());
        assert_eq!(
            original.run_to_quiescence(10_000_000),
            RunOutcome::Quiescent
        );
        assert_eq!(
            restored.run_to_quiescence(10_000_000),
            RunOutcome::Quiescent
        );
        let a = original.into_record();
        let b = restored.into_record();
        assert_eq!(a, b, "restored run must be bit-identical");
        // The snapshot is also reusable: a second restore replays the
        // same tail again.
        let mut again = SimNetwork::restore(snap);
        again.run_to_quiescence(10_000_000);
        assert_eq!(again.into_record(), a);
    }

    #[test]
    fn snapshot_restore_preserves_loss_streams_and_fault_queue() {
        // Snapshot after a fault plan is installed but before its
        // events fire: pending Fault events and mid-stream loss RNGs
        // must survive the round-trip.
        let build = || {
            let g = generators::clique(5);
            let mut net = SimNetwork::new(&g, BgpConfig::default(), SimParams::default(), 23);
            let plan = bgpsim_faults::FaultPlan::new()
                .loss(n(0), n(1), 0.4)
                .session_reset(SimDuration::from_secs(40), n(0), n(1))
                .withdraw(SimDuration::from_secs(80), n(0), p());
            net.originate(n(0), p());
            net.apply_fault_plan(&plan, net.now()).unwrap();
            net.run_for(SimDuration::from_secs(41), 10_000_000);
            net
        };
        let mut original = build();
        let mut restored = SimNetwork::restore(original.snapshot());
        original.run_to_quiescence(10_000_000);
        restored.run_to_quiescence(10_000_000);
        let a = original.into_record();
        let b = restored.into_record();
        assert_eq!(a.faults_injected, 2, "both plan events fired");
        assert!(a.messages_lost > 0, "loss model must have dropped some");
        assert_eq!(a, b);
    }

    #[test]
    fn node_down_isolates_destination() {
        let g = generators::clique(4);
        let mut net = SimNetwork::new(&g, cfg(), SimParams::default(), 6);
        net.originate(n(0), p());
        net.run_to_quiescence(10_000_000);
        net.inject_failure(FailureEvent::NodeDown { node: n(0) });
        assert_eq!(net.run_to_quiescence(10_000_000), RunOutcome::Quiescent);
        let rec = net.into_record();
        for i in 1..4 {
            assert_eq!(rec.fib.current(n(i), p()), None, "node {i}");
        }
    }
}
