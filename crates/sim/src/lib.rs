//! # bgpsim-sim
//!
//! The integration harness of the `bgpsim` study: it assembles
//! `bgpsim-core` routers, `bgpsim-netsim` links/processors and the
//! `bgpsim-dataplane` forwarding history into one deterministic
//! network simulation, with failure injection for the paper's `T_down`
//! and `T_long` events.
//!
//! * [`network::SimNetwork`] — the live simulation object;
//! * [`harness::ConvergenceExperiment`] — the standard two-phase
//!   (warm-up → failure) run used by every experiment;
//! * [`record::RunRecord`] — the raw observations handed to
//!   `bgpsim-metrics`.
//!
//! ## Example
//!
//! ```
//! use bgpsim_sim::prelude::*;
//! use bgpsim_core::Prefix;
//! use bgpsim_topology::{generators, NodeId};
//!
//! let g = generators::clique(5);
//! let exp = ConvergenceExperiment::new(
//!     g,
//!     NodeId::new(0),
//!     FailureEvent::WithdrawPrefix { origin: NodeId::new(0), prefix: Prefix::new(0) },
//! ).with_seed(1);
//! let record = exp.run();
//! assert!(record.convergence_time().is_some());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::redundant_clone)]

pub mod event;
pub mod failure;
pub mod harness;
pub mod network;
pub mod params;
pub mod record;
pub mod sharded;

pub use failure::{FailureEvent, FailureHalf, HalfAction};
pub use harness::{BudgetExceeded, ConvergenceExperiment, RunBudget, RunSnapshot, SnapshotBeat};
pub use network::{NetworkSnapshot, RunOutcome, SimNetwork};
pub use params::SimParams;
pub use record::{RunRecord, UpdateSend};
pub use sharded::ShardRunStats;

// Fault-plan types, re-exported so harness users don't need a direct
// `bgpsim-faults` dependency.
pub use bgpsim_faults::{FaultError, FaultKind, FaultPlan, FlapProfile, FlapTrain, LinkLoss};

/// Commonly used types, for glob import.
pub mod prelude {
    pub use crate::failure::FailureEvent;
    pub use crate::harness::{
        BudgetExceeded, ConvergenceExperiment, RunBudget, RunSnapshot, SnapshotBeat,
        DEFAULT_EVENT_BUDGET,
    };
    pub use crate::network::{NetworkSnapshot, RunOutcome, SimNetwork};
    pub use crate::params::SimParams;
    pub use crate::record::{RunRecord, UpdateSend};
    pub use bgpsim_faults::{FaultKind, FaultPlan, FlapProfile, FlapTrain};
}
