//! Sharded conservative-parallel execution of a single run.
//!
//! The serial engine pops one global `(time, order)`-keyed queue. This
//! module runs the *same* simulation on `K` worker threads, one per
//! graph partition, and merges the per-shard observations back into a
//! [`RunRecord`] that is **byte-identical** to the serial engine's —
//! the serial path stays the oracle (see `tests/shard_equivalence.rs`
//! and DESIGN.md §15).
//!
//! Three properties make that possible:
//!
//! 1. **Shard-independent order keys.** Every scheduled event carries
//!    `order = lane << 40 | counter` where the lane is the node whose
//!    dispatch scheduled it. A node's dispatches run on exactly one
//!    shard, in the same relative order as serial, so the counters —
//!    and therefore the global `(time, order)` sort — agree with the
//!    serial queue without any cross-shard coordination.
//! 2. **Per-node RNG lanes.** Each node draws from its own fork of the
//!    run seed, so the draw sequence a node sees is a pure function of
//!    `(seed, node)` — independent of how other shards interleave.
//! 3. **Conservative windows.** Rounds are synchronous: each shard
//!    publishes its earliest-output time (EOT), the barrier leader
//!    takes the minimum as the window end `W`, every shard executes
//!    its events with `t < W`, and cross-shard messages deposited into
//!    mailboxes become visible at the round's closing barrier. Because
//!    the minimum link delay is strictly positive, `W` strictly
//!    exceeds the earliest pending event anywhere, so every round
//!    makes progress and no message arrives in a shard's past.
//!
//! Harness operations (originate, failure scheduling, fault plans) are
//! *replicated*: every shard executes them identically against its own
//! full-width network, and events for foreign nodes are dropped (the
//! owner schedules its own copy). That keeps lane counters, RNG lanes,
//! and link state synchronized without messaging.
//!
//! The merge replays the per-dispatch log in global `(time, order)`
//! order to reconstruct serial-exact queue depths (the one observable
//! a shard cannot know locally), stitches sends / path changes / trace
//! events back into chronological order, and takes per-node state from
//! each node's owning shard.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use bgpsim_core::{FibEntry, Prefix, RouterStats};
use bgpsim_dataplane::{NetworkFib, PacketFate};
use bgpsim_netsim::engine::Engine;
use bgpsim_netsim::queue::EventId;
use bgpsim_netsim::time::{SimDuration, SimTime};
use bgpsim_topology::NodeId;
use bgpsim_trace::{TraceEvent, TraceHandle};

pub use bgpsim_parallel::ShardRunStats;
use bgpsim_parallel::{window_from_eots, SpinBarrier, WindowDecision};

use crate::event::NetEvent;
use crate::harness::{BudgetExceeded, ConvergenceExperiment, RunBudget};
use crate::network::SimNetwork;
use crate::record::{PathChange, RunRecord, UpdateSend};

/// One dispatched event's contribution to the global queue-depth
/// replay, plus cursors into the shard's output streams.
///
/// Queue depth is the only serial observable a shard cannot compute
/// locally: the serial engine's high-water mark counts *all* pending
/// events at once. Each dispatch therefore logs its net effect on the
/// global queue (`delta`) and the intra-dispatch peak (`push_peak`),
/// and the merge replays the log in global `(time, order)` order.
#[derive(Debug, Clone, Copy)]
pub(crate) struct DispatchEntry {
    pub(crate) time: SimTime,
    pub(crate) order: u64,
    /// Net pushes minus cancel hits during this dispatch. Pushes are
    /// counted on the *scheduling* shard even for foreign targets, so
    /// summing deltas in merge order tracks the serial queue exactly.
    pub(crate) delta: i64,
    /// Maximum of the running delta taken after each push — the
    /// serial queue only updates its high-water mark on pushes.
    pub(crate) push_peak: i64,
    pub(crate) sends_end: usize,
    pub(crate) paths_end: usize,
    pub(crate) fates_end: usize,
    pub(crate) trace_end: usize,
}

/// Push bookkeeping for one replicated harness segment (originate,
/// failure scheduling). Same shape as [`DispatchEntry`] minus the pop:
/// harness code schedules without dispatching.
#[derive(Debug, Clone, Copy)]
pub(crate) struct HarnessSeg {
    pub(crate) delta: i64,
    pub(crate) push_peak: i64,
    pub(crate) sends_end: usize,
    pub(crate) paths_end: usize,
    pub(crate) fates_end: usize,
    pub(crate) trace_end: usize,
}

/// Per-worker sharded-execution state, attached to a [`SimNetwork`]
/// via `attach_shard`. Holds the ownership map, the cross-shard
/// outbox, the dispatch log for the merge, and two lazy min-heaps over
/// pending events for O(log n) EOT computation.
#[derive(Debug)]
pub(crate) struct ShardCtx {
    pub(crate) shard_id: u32,
    /// Node → owning shard.
    pub(crate) owner: Vec<u32>,
    /// While `true` (replicated harness phases) foreign-node events
    /// are dropped instead of outboxed — every shard runs the same
    /// harness call, so the owner schedules its own copy.
    pub(crate) replicating: bool,
    /// Cross-shard events produced by the current window, as
    /// `(target shard, time, order, event)`.
    pub(crate) outbox: Vec<(u32, SimTime, u64, NetEvent)>,
    /// Trace events buffered for post-merge emission in global order.
    pub(crate) trace_buf: Vec<TraceEvent>,
    pub(crate) log: Vec<DispatchEntry>,
    pub(crate) segs: Vec<HarnessSeg>,
    /// `log.len()` at the end of each window-driven phase, so the
    /// merge can interleave harness segments at phase boundaries.
    pub(crate) phase_log_ends: Vec<usize>,
    /// Running push/cancel delta of the current dispatch or segment.
    cur_delta: i64,
    /// Max of `cur_delta` observed right after a push.
    cur_peak: i64,
    /// Pending non-arrival events as `(time, order, raw id)`: anything
    /// here can emit a cross-shard message `link_delay` after its own
    /// time. Lazily pruned against engine liveness at peek.
    sendables: BinaryHeap<Reverse<(SimTime, u64, u64)>>,
    /// Pending `MessageArrival`s: these must clear the node's
    /// processor (≥ `proc_delay_lo`) before any output can leave.
    arrivals: BinaryHeap<Reverse<(SimTime, u64, u64)>>,
}

impl ShardCtx {
    pub(crate) fn new(shard_id: u32, owner: Vec<u32>) -> Self {
        ShardCtx {
            shard_id,
            owner,
            replicating: false,
            outbox: Vec::new(),
            trace_buf: Vec::new(),
            log: Vec::new(),
            segs: Vec::new(),
            phase_log_ends: Vec::new(),
            cur_delta: 0,
            cur_peak: 0,
            sendables: BinaryHeap::new(),
            arrivals: BinaryHeap::new(),
        }
    }

    /// Records one logical push against the global queue. Called for
    /// every schedule — owned, outboxed, or replication-dropped — so
    /// the replayed depth matches the serial queue.
    pub(crate) fn note_push(&mut self) {
        self.cur_delta += 1;
        if self.cur_delta > self.cur_peak {
            self.cur_peak = self.cur_delta;
        }
    }

    /// Records a cancel that removed a pending event.
    pub(crate) fn note_cancel(&mut self) {
        self.cur_delta -= 1;
    }

    /// Indexes a locally pending event for EOT computation.
    pub(crate) fn note_pending(&mut self, at: SimTime, order: u64, raw_id: u64, is_arrival: bool) {
        let heap = if is_arrival {
            &mut self.arrivals
        } else {
            &mut self.sendables
        };
        heap.push(Reverse((at, order, raw_id)));
    }

    fn min_live(
        heap: &mut BinaryHeap<Reverse<(SimTime, u64, u64)>>,
        engine: &Engine<NetEvent>,
    ) -> Option<SimTime> {
        // Popped and cancelled events read not-live; prune them lazily
        // so each is visited at most once after it dies.
        while let Some(&Reverse((t, _, raw))) = heap.peek() {
            if engine.is_live(EventId::from_raw(raw)) {
                return Some(t);
            }
            heap.pop();
        }
        None
    }

    /// Earliest pending non-arrival event, or `None` when idle.
    pub(crate) fn min_pending_sendable(&mut self, engine: &Engine<NetEvent>) -> Option<SimTime> {
        Self::min_live(&mut self.sendables, engine)
    }

    /// Earliest pending `MessageArrival`, or `None` when idle.
    pub(crate) fn min_pending_arrival(&mut self, engine: &Engine<NetEvent>) -> Option<SimTime> {
        Self::min_live(&mut self.arrivals, engine)
    }

    /// Closes the current dispatch's log entry.
    pub(crate) fn end_dispatch(
        &mut self,
        time: SimTime,
        order: u64,
        sends: usize,
        paths: usize,
        fates: usize,
    ) {
        self.log.push(DispatchEntry {
            time,
            order,
            delta: self.cur_delta,
            push_peak: self.cur_peak,
            sends_end: sends,
            paths_end: paths,
            fates_end: fates,
            trace_end: self.trace_buf.len(),
        });
        self.cur_delta = 0;
        self.cur_peak = 0;
    }

    /// Closes the current replicated harness segment.
    pub(crate) fn end_harness_segment(&mut self, sends: usize, paths: usize, fates: usize) {
        self.segs.push(HarnessSeg {
            delta: self.cur_delta,
            push_peak: self.cur_peak,
            sends_end: sends,
            paths_end: paths,
            fates_end: fates,
            trace_end: self.trace_buf.len(),
        });
        self.cur_delta = 0;
        self.cur_peak = 0;
    }

    /// Marks the end of a window-driven phase.
    pub(crate) fn end_phase(&mut self) {
        self.phase_log_ends.push(self.log.len());
    }
}

/// Everything the merge needs from one worker, extracted by
/// `SimNetwork::into_shard_parts`.
#[derive(Debug)]
pub(crate) struct ShardParts {
    pub(crate) shard_id: u32,
    pub(crate) now: SimTime,
    pub(crate) queue_hiwater: u64,
    pub(crate) router_stats: Vec<RouterStats>,
    /// Loss counters per directed link row `(from, to, lost)`.
    pub(crate) link_lost: Vec<(NodeId, NodeId, u64)>,
    pub(crate) fib_changes: Vec<(NodeId, Prefix, SimTime, Option<FibEntry>)>,
    pub(crate) sends: Vec<UpdateSend>,
    pub(crate) path_changes: Vec<PathChange>,
    pub(crate) live_fates: Vec<(u64, PacketFate)>,
    pub(crate) failure_at: Option<SimTime>,
    pub(crate) events_dispatched: u64,
    pub(crate) faults_injected: u64,
    pub(crate) session_resets: u64,
    pub(crate) log: Vec<DispatchEntry>,
    pub(crate) segs: Vec<HarnessSeg>,
    pub(crate) phase_log_ends: Vec<usize>,
    pub(crate) trace_buf: Vec<TraceEvent>,
}

/// Shared synchronization state of one sharded run: the window
/// barrier, per-shard published values, and the `K × K` mailbox grid.
struct SyncState {
    k: usize,
    barrier: SpinBarrier,
    /// Per-shard earliest-output time, published before each round.
    eots: Vec<AtomicU64>,
    /// Per-shard cumulative dispatched-event counts (budget checks).
    pops: Vec<AtomicU64>,
    /// Per-shard clocks, exchanged at the warm-up/failure boundary to
    /// compute the global quiescence instant for the failure anchor.
    nows: Vec<AtomicU64>,
    /// The leader's encoded [`WindowDecision`] for the current round.
    window: AtomicU64,
    sync_rounds: AtomicU64,
    /// Executed rounds in which a shard had nothing to send.
    null_msgs: AtomicU64,
    /// Mailbox `src → dst` at index `src * k + dst`.
    mailboxes: Vec<Mutex<Vec<(SimTime, u64, NetEvent)>>>,
}

impl SyncState {
    fn new(k: usize) -> Self {
        SyncState {
            k,
            barrier: SpinBarrier::new(k),
            eots: (0..k).map(|_| AtomicU64::new(0)).collect(),
            pops: (0..k).map(|_| AtomicU64::new(0)).collect(),
            nows: (0..k).map(|_| AtomicU64::new(0)).collect(),
            window: AtomicU64::new(0),
            sync_rounds: AtomicU64::new(0),
            null_msgs: AtomicU64::new(0),
            mailboxes: (0..k * k).map(|_| Mutex::new(Vec::new())).collect(),
        }
    }

    fn mailbox(&self, src: usize, dst: usize) -> &Mutex<Vec<(SimTime, u64, NetEvent)>> {
        &self.mailboxes[src * self.k + dst]
    }
}

/// Drives one shard through conservative windows until the run
/// completes (`Ok`) or a budget trips (`Err`). Three barrier crossings
/// per round: publish EOTs → leader decides → execute window and
/// deposit mailboxes → drain inboxes.
fn window_loop<P: bgpsim_core::decision::RoutePolicy>(
    net: &mut SimNetwork<P>,
    s: usize,
    sync: &SyncState,
    limit: &RunBudget,
    phase_budget: u64,
    phase_start: u64,
    pops: &mut u64,
) -> Result<(), ()> {
    let k = sync.k;
    loop {
        sync.eots[s].store(net.shard_eot(), Ordering::Release);
        sync.pops[s].store(*pops, Ordering::Release);
        if sync.barrier.wait() {
            let eots: Vec<u64> = (0..k)
                .map(|i| sync.eots[i].load(Ordering::Acquire))
                .collect();
            let mut decision = window_from_eots(&eots);
            // A finished run is a finished run: budgets only abort
            // rounds that would still execute events, mirroring the
            // serial driver where a drained phase returns Ok without a
            // further budget check.
            if decision != WindowDecision::Done {
                let total: u64 = (0..k).map(|i| sync.pops[i].load(Ordering::Acquire)).sum();
                let over = total - phase_start >= phase_budget
                    || limit.max_events.is_some_and(|m| total >= m)
                    || limit.deadline.is_some_and(|d| Instant::now() >= d)
                    || limit
                        .cancel
                        .as_ref()
                        .is_some_and(|c| c.load(Ordering::Relaxed));
                if over {
                    decision = WindowDecision::Abort;
                }
            }
            sync.window.store(decision.encode(), Ordering::Release);
            sync.sync_rounds.fetch_add(1, Ordering::Relaxed);
        }
        sync.barrier.wait();
        match WindowDecision::decode(sync.window.load(Ordering::Acquire)) {
            WindowDecision::Done => return Ok(()),
            WindowDecision::Abort => return Err(()),
            WindowDecision::Advance(w) => {
                *pops += net.run_window(SimTime::from_nanos(w));
                let out = net.take_outbox();
                if out.is_empty() {
                    sync.null_msgs.fetch_add(1, Ordering::Relaxed);
                }
                for (dst, at, order, ev) in out {
                    sync.mailbox(s, dst as usize)
                        .lock()
                        .expect("mailbox poisoned")
                        .push((at, order, ev));
                }
                sync.barrier.wait();
                for src in 0..k {
                    let msgs = std::mem::take(
                        &mut *sync.mailbox(src, s).lock().expect("mailbox poisoned"),
                    );
                    for (at, order, ev) in msgs {
                        net.insert_remote(at, order, ev);
                    }
                }
            }
        }
    }
}

struct WorkerOut {
    parts: ShardParts,
    tripped: Option<&'static str>,
}

/// One shard's complete run: replicated originate, warm-up windows,
/// replicated failure scheduling anchored at the *global* quiescence
/// instant, convergence windows.
fn worker(
    exp: &ConvergenceExperiment,
    owner: &[u32],
    s: usize,
    sync: &SyncState,
    limit: &RunBudget,
    tracer: &TraceHandle,
) -> WorkerOut {
    let k = sync.k;
    // The tracer is attached for its enable gate only: sharded
    // networks buffer trace events instead of emitting them.
    let mut net =
        SimNetwork::new(&exp.graph, exp.config, exp.params, exp.seed).with_tracer(tracer.clone());
    net.attach_shard(Box::new(ShardCtx::new(s as u32, owner.to_vec())));

    net.set_replicating(true);
    net.originate(exp.origin, exp.prefix);
    net.set_replicating(false);
    net.end_harness_segment();

    let mut pops = 0u64;
    let mut tripped = None;
    if window_loop(&mut net, s, sync, limit, exp.event_budget, 0, &mut pops).is_err() {
        tripped = Some("warmup");
    }
    net.end_phase();

    if tripped.is_none() {
        // The serial driver schedules the failure one second past
        // quiescence; the global quiescence instant is the latest of
        // the shard clocks (each clock is its shard's last event).
        sync.nows[s].store(net.now().as_nanos(), Ordering::Release);
        sync.barrier.wait();
        let global_now = (0..k)
            .map(|i| sync.nows[i].load(Ordering::Acquire))
            .max()
            .expect("at least one shard");
        let anchor = SimTime::from_nanos(global_now) + SimDuration::from_secs(1);
        net.set_replicating(true);
        match &exp.faults {
            Some(plan) => {
                if let Err(e) = net.apply_fault_plan(plan, anchor) {
                    panic!("invalid fault plan: {e}");
                }
            }
            None => net.schedule_failure_at(anchor, exp.failure),
        }
        net.set_replicating(false);
        net.end_harness_segment();
        let phase_start: u64 = (0..k).map(|i| sync.pops[i].load(Ordering::Acquire)).sum();
        if window_loop(
            &mut net,
            s,
            sync,
            limit,
            exp.event_budget,
            phase_start,
            &mut pops,
        )
        .is_err()
        {
            tripped = Some("convergence");
        }
        net.end_phase();
    }
    WorkerOut {
        parts: net.into_shard_parts(),
        tripped,
    }
}

/// Replays the merged dispatch logs into a serial-identical
/// [`RunRecord`], emitting buffered trace events in global order with
/// their queue depths patched to the serial values.
fn merge(
    parts: &[ShardParts],
    owner: &[u32],
    node_count: usize,
    tracer: &TraceHandle,
    completed: bool,
) -> RunRecord {
    let k = parts.len();
    let traced = tracer.is_enabled();
    let phases = parts[0].phase_log_ends.len();

    let mut sends: Vec<UpdateSend> = Vec::new();
    let mut path_changes: Vec<PathChange> = Vec::new();
    let mut live_fates: Vec<(u64, PacketFate)> = Vec::new();
    let mut depth: i64 = 0;
    let mut max_depth: i64 = 0;

    #[derive(Clone, Copy, Default)]
    struct Cursor {
        send: usize,
        path: usize,
        fate: usize,
        trace: usize,
        log: usize,
    }
    let mut cur = vec![Cursor::default(); k];

    let copy_outputs = |sends: &mut Vec<UpdateSend>,
                        path_changes: &mut Vec<PathChange>,
                        live_fates: &mut Vec<(u64, PacketFate)>,
                        p: &ShardParts,
                        c: &mut Cursor,
                        se: usize,
                        pe: usize,
                        fe: usize| {
        sends.extend_from_slice(&p.sends[c.send..se]);
        path_changes.extend_from_slice(&p.path_changes[c.path..pe]);
        live_fates.extend_from_slice(&p.live_fates[c.fate..fe]);
        c.send = se;
        c.path = pe;
        c.fate = fe;
    };

    for phase in 0..phases {
        // Replicated harness segment: every shard logged the same
        // pushes and recorded the same outputs; shard 0 speaks for
        // all, the rest just advance their cursors.
        for (s, p) in parts.iter().enumerate() {
            let seg = p.segs[phase];
            if s == 0 {
                copy_outputs(
                    &mut sends,
                    &mut path_changes,
                    &mut live_fates,
                    p,
                    &mut cur[0],
                    seg.sends_end,
                    seg.paths_end,
                    seg.fates_end,
                );
                if traced {
                    for ev in &p.trace_buf[cur[0].trace..seg.trace_end] {
                        let ev = ev.clone();
                        tracer.emit(|| ev);
                    }
                }
                max_depth = max_depth.max(depth + seg.push_peak);
                depth += seg.delta;
            }
            cur[s].send = seg.sends_end;
            cur[s].path = seg.paths_end;
            cur[s].fate = seg.fates_end;
            cur[s].trace = seg.trace_end;
        }
        // K-way merge of this phase's dispatch entries by the global
        // (time, order) key.
        loop {
            let mut best: Option<(SimTime, u64, usize)> = None;
            for (s, p) in parts.iter().enumerate() {
                if cur[s].log < p.phase_log_ends[phase] {
                    let e = &p.log[cur[s].log];
                    if best.is_none_or(|(t, o, _)| (e.time, e.order) < (t, o)) {
                        best = Some((e.time, e.order, s));
                    }
                }
            }
            let Some((_, _, s)) = best else { break };
            let p = &parts[s];
            let e = p.log[cur[s].log];
            cur[s].log += 1;
            // The pop itself: the serial queue shrinks by one before
            // the dispatch trace reads its depth.
            depth -= 1;
            if traced {
                let lo = cur[s].trace;
                for (i, ev) in p.trace_buf[lo..e.trace_end].iter().enumerate() {
                    let mut ev = ev.clone();
                    if i == 0 {
                        if let TraceEvent::EventDispatch { queue_depth, .. } = &mut ev {
                            *queue_depth = depth as u64;
                        }
                    }
                    tracer.emit(|| ev);
                }
            }
            cur[s].trace = e.trace_end;
            max_depth = max_depth.max(depth + e.push_peak);
            depth += e.delta;
            copy_outputs(
                &mut sends,
                &mut path_changes,
                &mut live_fates,
                p,
                &mut cur[s],
                e.sends_end,
                e.paths_end,
                e.fates_end,
            );
        }
    }
    debug_assert!(
        !completed || depth == 0,
        "completed run left {depth} pending"
    );

    // Per-node state comes from each node's owner: only the owner
    // dispatched the node's events past the replicated harness calls.
    let mut fib = NetworkFib::new(node_count);
    for (s, p) in parts.iter().enumerate() {
        for &(node, prefix, time, entry) in &p.fib_changes {
            if owner[node.index()] as usize == s {
                fib.record(node, prefix, time, entry);
            }
        }
    }
    let router_stats: Vec<RouterStats> = (0..node_count)
        .map(|i| parts[owner[i] as usize].router_stats[i])
        .collect();
    let mut messages_lost = 0;
    for (s, p) in parts.iter().enumerate() {
        for &(from, _to, lost) in &p.link_lost {
            if owner[from.index()] as usize == s {
                messages_lost += lost;
            }
        }
    }

    RunRecord {
        node_count,
        failure_at: parts.iter().filter_map(|p| p.failure_at).min(),
        quiescent_at: parts.iter().map(|p| p.now).max().unwrap_or(SimTime::ZERO),
        sends,
        fib,
        path_changes,
        live_fates,
        router_stats,
        events_dispatched: parts.iter().map(|p| p.events_dispatched).sum(),
        max_queue_depth: max_depth as u64,
        faults_injected: parts.iter().map(|p| p.faults_injected).sum(),
        session_resets: parts.iter().map(|p| p.session_resets).sum(),
        messages_lost,
    }
}

fn serial_stats(rec: &RunRecord) -> ShardRunStats {
    ShardRunStats {
        shards: 1,
        per_shard_events: vec![rec.events_dispatched],
        sync_rounds: 0,
        null_msgs: 0,
        barrier_wait_us: 0,
        queue_hiwater: rec.max_queue_depth,
    }
}

/// Runs `exp` on `shards` worker threads. Falls back to the serial
/// engine when sharding cannot help or cannot be conservative: fewer
/// than two effective shards, or a zero link delay (the window
/// protocol's lookahead *is* the link delay).
pub(crate) fn run_sharded_budgeted(
    exp: &ConvergenceExperiment,
    shards: u32,
    limit: &RunBudget,
) -> Result<(RunRecord, ShardRunStats), Box<BudgetExceeded>> {
    let n = exp.graph.node_count();
    let k = shards.min(n as u32);
    if k <= 1 || exp.params.link_delay == SimDuration::ZERO {
        let rec = exp.run_budgeted(limit)?;
        let stats = serial_stats(&rec);
        return Ok((rec, stats));
    }
    assert!(
        exp.graph.contains(exp.origin),
        "origin {} not in graph",
        exp.origin
    );
    let owner = bgpsim_topology::partition::partition(&exp.graph, k);
    let ku = k as usize;
    let sync = SyncState::new(ku);
    let tracer = exp
        .tracer
        .clone()
        .unwrap_or_else(bgpsim_trace::TraceHandle::global);
    let outs: Vec<WorkerOut> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..ku)
            .map(|s| {
                let sync = &sync;
                let owner = &owner;
                let tracer = &tracer;
                scope.spawn(move || worker(exp, owner, s, sync, limit, tracer))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("shard worker panicked"))
            .collect()
    });

    // Budget decisions are broadcast, so every worker agrees.
    let tripped = outs[0].tripped;
    debug_assert!(outs.iter().all(|o| o.tripped == tripped));
    let parts: Vec<ShardParts> = outs.into_iter().map(|o| o.parts).collect();
    assert!(
        parts
            .iter()
            .enumerate()
            .all(|(i, p)| p.shard_id as usize == i),
        "worker join order must match shard ids"
    );
    let record = merge(&parts, &owner, n, &tracer, tripped.is_none());
    if let Some(phase) = tripped {
        return Err(Box::new(BudgetExceeded { phase, record }));
    }
    let stats = ShardRunStats {
        shards: k,
        per_shard_events: parts.iter().map(|p| p.events_dispatched).collect(),
        sync_rounds: sync.sync_rounds.load(Ordering::Relaxed),
        null_msgs: sync.null_msgs.load(Ordering::Relaxed),
        barrier_wait_us: sync.barrier.total_wait_ns() / 1_000,
        queue_hiwater: parts.iter().map(|p| p.queue_hiwater).max().unwrap_or(0),
    };
    if tracer.is_enabled() {
        let summary = TraceEvent::ShardSummary {
            seed: exp.seed,
            t: record.quiescent_at.as_nanos(),
            shards: u64::from(stats.shards),
            events: stats.per_shard_events.clone(),
            null_msgs: stats.null_msgs,
            sync_rounds: stats.sync_rounds,
            barrier_wait_us: stats.barrier_wait_us,
        };
        tracer.emit(|| summary);
    }
    Ok((record, stats))
}

#[cfg(test)]
mod tests {
    use crate::failure::FailureEvent;
    use crate::harness::ConvergenceExperiment;
    use bgpsim_core::Prefix;
    use bgpsim_topology::{generators, NodeId};

    fn tdown(nodes: u32) -> ConvergenceExperiment {
        let g = generators::clique(nodes as usize);
        ConvergenceExperiment::new(
            g,
            NodeId::new(0),
            FailureEvent::WithdrawPrefix {
                origin: NodeId::new(0),
                prefix: Prefix::new(0),
            },
        )
        .with_seed(42)
    }

    #[test]
    fn sharded_clique_matches_serial_byte_for_byte() {
        let serial = tdown(8).run();
        for k in [2u32, 3, 4] {
            let (sharded, stats) = tdown(8).run_sharded_stats(k);
            assert_eq!(serial, sharded, "k={k} diverged from serial");
            assert_eq!(stats.shards, k);
            assert_eq!(
                stats.per_shard_events.iter().sum::<u64>(),
                serial.events_dispatched
            );
            assert!(stats.sync_rounds > 0);
        }
    }

    #[test]
    fn one_shard_falls_back_to_serial() {
        let serial = tdown(5).run();
        let (sharded, stats) = tdown(5).run_sharded_stats(1);
        assert_eq!(serial, sharded);
        assert_eq!(stats.shards, 1);
        assert_eq!(stats.sync_rounds, 0);
    }

    #[test]
    fn more_shards_than_nodes_clamps() {
        let serial = tdown(3).run();
        let (sharded, stats) = tdown(3).run_sharded_stats(64);
        assert_eq!(serial, sharded);
        assert_eq!(stats.shards, 3);
    }
}
