//! Raw observations from one simulation run.

use bgpsim_core::{AsPath, BgpMessage, Prefix, RouterStats};
use bgpsim_dataplane::{NetworkFib, PacketFate};
use bgpsim_netsim::time::{SimDuration, SimTime};
use bgpsim_topology::NodeId;

/// One BGP message leaving a router.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct UpdateSend {
    /// When the message left the router.
    pub at: SimTime,
    /// The sending router.
    pub from: NodeId,
    /// The receiving peer.
    pub to: NodeId,
    /// `true` for withdrawals.
    pub withdraw: bool,
    /// The message content (announced path or withdrawal).
    pub message: BgpMessage,
}

/// One change of a router's selected route.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct PathChange {
    /// When the decision process switched routes.
    pub at: SimTime,
    /// The router whose selection changed.
    pub node: NodeId,
    /// The prefix concerned.
    pub prefix: Prefix,
    /// The newly selected path (`None` = route lost).
    pub path: Option<AsPath>,
}

/// Everything observed during a simulation run, for offline analysis.
///
/// `PartialEq` compares every recorded observation — two equal records
/// describe byte-identical runs, which is exactly the bar the
/// checkpoint/fork machinery is held to.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunRecord {
    /// Number of nodes in the simulated network.
    pub node_count: usize,
    /// When the failure was injected (if one was).
    pub failure_at: Option<SimTime>,
    /// When the event queue drained.
    pub quiescent_at: SimTime,
    /// Every BGP message send, in chronological order.
    pub sends: Vec<UpdateSend>,
    /// Every route-selection change, in chronological order — the
    /// "route change traces" the paper proposes to analyze next.
    pub path_changes: Vec<PathChange>,
    /// The recorded forwarding-table history.
    pub fib: NetworkFib,
    /// Fates of live (event-driven) packets, if any were injected.
    pub live_fates: Vec<(u64, PacketFate)>,
    /// Final per-router protocol counters (indexed by node id).
    pub router_stats: Vec<RouterStats>,
    /// Total engine events dispatched over the run.
    pub events_dispatched: u64,
    /// High-water mark of the engine's pending-event queue.
    pub max_queue_depth: u64,
    /// Fault-plan events that fired (zero when no plan was installed).
    pub faults_injected: u64,
    /// BGP session resets applied (a subset of `faults_injected` plus
    /// any directly injected resets).
    pub session_resets: u64,
    /// Messages dropped by the random-loss model across all links.
    pub messages_lost: u64,
}

impl RunRecord {
    /// The time of the last message sent at or after `since`.
    pub fn last_send_at(&self, since: SimTime) -> Option<SimTime> {
        self.sends.iter().rev().map(|s| s.at).find(|&t| t >= since)
    }

    /// Number of messages sent at or after `since`.
    pub fn sends_since(&self, since: SimTime) -> usize {
        self.sends.iter().filter(|s| s.at >= since).count()
    }

    /// The paper's **convergence time**: from the failure to the last
    /// BGP update sent. `None` if no failure was injected or nothing
    /// was sent afterwards.
    pub fn convergence_time(&self) -> Option<SimDuration> {
        let fail = self.failure_at?;
        let last = self.last_send_at(fail)?;
        Some(last - fail)
    }

    /// The instant convergence completed (last send after the failure).
    pub fn convergence_end(&self) -> Option<SimTime> {
        let fail = self.failure_at?;
        self.last_send_at(fail)
    }

    /// The paper's traffic-replay window (§4.2): from the failure
    /// instant to the end of convergence, extended by one packet
    /// lifetime ([`DEFAULT_TTL`](bgpsim_dataplane::DEFAULT_TTL) hops at
    /// the 2 ms per-AS link delay) so late loops are still sampled.
    /// When the failure triggered no visible convergence the window is
    /// just `[failure, failure + lifetime)`.
    ///
    /// The measurement pipeline (`bgpsim-metrics::measure_run`) and the
    /// replay benches both generate their packet fleets over this
    /// window.
    pub fn replay_window(&self) -> (SimTime, SimTime) {
        let start = self.failure_at.unwrap_or(SimTime::ZERO);
        let lifetime = SimDuration::from_millis(2) * u64::from(bgpsim_dataplane::DEFAULT_TTL);
        let end = self.convergence_end().unwrap_or(start) + lifetime;
        (start, end)
    }

    /// Aggregated router counters.
    pub fn total_stats(&self) -> RouterStats {
        let mut total = RouterStats::default();
        for s in &self.router_stats {
            total.announcements_sent += s.announcements_sent;
            total.withdrawals_sent += s.withdrawals_sent;
            total.messages_received += s.messages_received;
            total.ssld_conversions += s.ssld_conversions;
            total.ghost_flushes += s.ghost_flushes;
            total.assertion_removals += s.assertion_removals;
            total.route_changes += s.route_changes;
            total.damping_suppressions += s.damping_suppressions;
            total.decisions_run += s.decisions_run;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn send(at_ms: u64, withdraw: bool) -> UpdateSend {
        let message = if withdraw {
            BgpMessage::withdraw(Prefix::new(0))
        } else {
            BgpMessage::announce(Prefix::new(0), AsPath::from_ids([0, 9]))
        };
        UpdateSend {
            at: SimTime::from_millis(at_ms),
            from: NodeId::new(0),
            to: NodeId::new(1),
            withdraw,
            message,
        }
    }

    #[test]
    fn convergence_time_from_failure_to_last_send() {
        let rec = RunRecord {
            failure_at: Some(SimTime::from_secs(10)),
            sends: vec![send(5_000, false), send(11_000, false), send(42_000, true)],
            ..Default::default()
        };
        assert_eq!(rec.convergence_time(), Some(SimDuration::from_secs(32)));
        assert_eq!(rec.convergence_end(), Some(SimTime::from_secs(42)));
        assert_eq!(rec.sends_since(SimTime::from_secs(10)), 2);
    }

    #[test]
    fn no_failure_means_no_convergence_metric() {
        let rec = RunRecord {
            sends: vec![send(1, false)],
            ..Default::default()
        };
        assert_eq!(rec.convergence_time(), None);
    }

    #[test]
    fn failure_with_no_reaction() {
        let rec = RunRecord {
            failure_at: Some(SimTime::from_secs(10)),
            sends: vec![send(5_000, false)],
            ..Default::default()
        };
        assert_eq!(rec.convergence_time(), None);
    }

    #[test]
    fn total_stats_sums() {
        let a = RouterStats {
            announcements_sent: 2,
            ..Default::default()
        };
        let b = RouterStats {
            announcements_sent: 3,
            withdrawals_sent: 1,
            ..Default::default()
        };
        let rec = RunRecord {
            router_stats: vec![a, b],
            ..Default::default()
        };
        let t = rec.total_stats();
        assert_eq!(t.announcements_sent, 5);
        assert_eq!(t.withdrawals_sent, 1);
        assert_eq!(t.messages_sent(), 6);
    }
}
