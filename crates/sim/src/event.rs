//! Network-level simulation events.

use bgpsim_core::{BgpMessage, Prefix};
use bgpsim_topology::NodeId;

use crate::failure::FailureHalf;

/// Events dispatched by the network simulation loop.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub enum NetEvent {
    /// A BGP message reached a node's input queue (after link delay).
    /// It still has to wait for the node's serial processor.
    MessageArrival {
        /// Receiving node.
        to: NodeId,
        /// Sending node.
        from: NodeId,
        /// The message.
        msg: BgpMessage,
    },
    /// A BGP message finished processing at a node; the router reacts
    /// now.
    MessageProcessed {
        /// Receiving node.
        to: NodeId,
        /// Sending node.
        from: NodeId,
        /// The message.
        msg: BgpMessage,
    },
    /// An MRAI timer expired at `node` for `(peer, prefix)`.
    MraiExpiry {
        /// The node whose timer fired.
        node: NodeId,
        /// The peer the timer gates.
        peer: NodeId,
        /// The prefix the timer gates.
        prefix: Prefix,
    },
    /// A route-flap-damping reuse check fires at `node` for
    /// `(peer, prefix)`.
    DampingReuse {
        /// The node whose suppressed route may become reusable.
        node: NodeId,
        /// The peer whose route was suppressed.
        peer: NodeId,
        /// The prefix concerned.
        prefix: Prefix,
    },
    /// One scheduled failure half fires. Failures are split into
    /// per-node halves at scheduling time (see
    /// [`FailureEvent::halves`](crate::FailureEvent::halves)) so every
    /// event touches a single node; the halves of one failure carry
    /// adjacent order keys and fire back-to-back.
    Failure(FailureHalf),
    /// A fault-plan half fires. Behaves like [`NetEvent::Failure`] but
    /// its primary half is counted and traced as injected churn
    /// (`fault_injected` events).
    Fault(FailureHalf),
    /// A live data packet takes its next hop (event-driven data plane,
    /// used to cross-validate the replay engine).
    PacketHop {
        /// Packet id.
        id: u64,
        /// Current node.
        node: NodeId,
        /// Destination prefix.
        prefix: Prefix,
        /// Remaining TTL.
        ttl: u32,
        /// AS hops taken so far.
        hops: u32,
    },
}

impl NetEvent {
    /// A stable snake_case name for the event's class, used by the
    /// trace layer's `event_dispatch` records.
    pub fn class(&self) -> &'static str {
        match self {
            NetEvent::MessageArrival { .. } => "message_arrival",
            NetEvent::MessageProcessed { .. } => "message_processed",
            NetEvent::MraiExpiry { .. } => "mrai_expiry",
            NetEvent::DampingReuse { .. } => "damping_reuse",
            NetEvent::Failure(_) => "failure",
            NetEvent::Fault(_) => "fault",
            NetEvent::PacketHop { .. } => "packet_hop",
        }
    }

    /// The node the event is dispatched on. Every event is local to
    /// exactly one node; under sharded execution this determines the
    /// owning shard, and it also selects the per-node RNG lane whose
    /// counter orders the events the dispatch schedules.
    pub fn node(&self) -> NodeId {
        match self {
            NetEvent::MessageArrival { to, .. } | NetEvent::MessageProcessed { to, .. } => *to,
            NetEvent::MraiExpiry { node, .. }
            | NetEvent::DampingReuse { node, .. }
            | NetEvent::PacketHop { node, .. } => *node,
            NetEvent::Failure(half) | NetEvent::Fault(half) => half.node(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    // Cloning is the behavior under test.
    #[allow(clippy::redundant_clone)]
    fn events_are_cloneable_and_debuggable() {
        let ev = NetEvent::MraiExpiry {
            node: NodeId::new(1),
            peer: NodeId::new(2),
            prefix: Prefix::new(0),
        };
        let cloned = ev.clone();
        assert!(format!("{cloned:?}").contains("MraiExpiry"));
    }
}
