//! Failure injection.
//!
//! The study triggers routing convergence with two event classes
//! (§4.1):
//!
//! * **T_down** — the destination AS becomes unreachable from the rest
//!   of the network. Modelled as the origin withdrawing the prefix
//!   ([`FailureEvent::WithdrawPrefix`]) or as the destination node
//!   losing all its links ([`FailureEvent::NodeDown`]).
//! * **T_long** — a link fails without disconnecting the destination,
//!   forcing the network onto longer paths
//!   ([`FailureEvent::LinkDown`]).

use bgpsim_core::Prefix;
use bgpsim_topology::NodeId;

/// A topology or policy change injected into a running simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum FailureEvent {
    /// The origin withdraws `prefix` — the canonical `T_down` trigger
    /// (Labovitz et al.'s "route withdrawn" event).
    WithdrawPrefix {
        /// The originating AS.
        origin: NodeId,
        /// The withdrawn prefix.
        prefix: Prefix,
    },
    /// The link between two ASes fails; both ends lose the session —
    /// the `T_long` trigger when the graph stays connected.
    LinkDown {
        /// One endpoint.
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
    },
    /// Every link of `node` fails — an alternative `T_down` trigger
    /// that physically isolates the destination AS.
    NodeDown {
        /// The failing AS.
        node: NodeId,
    },
    /// A previously failed link comes back up; both ends re-establish
    /// the session and re-advertise their routes — the recovery
    /// (`T_up`-style) event studied in the convergence literature.
    LinkUp {
        /// One endpoint.
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
    },
    /// The BGP session between `a` and `b` restarts: both ends flush
    /// the peer's routes and immediately re-advertise. The underlying
    /// link never goes down, so no messages are dropped in transit —
    /// the churn comes purely from the control-plane flush.
    SessionReset {
        /// One endpoint.
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
    },
}

impl FailureEvent {
    /// Short human-readable description.
    pub fn describe(&self) -> String {
        match self {
            FailureEvent::WithdrawPrefix { origin, prefix } => {
                format!("T_down: {origin} withdraws {prefix}")
            }
            FailureEvent::LinkDown { a, b } => format!("link [{a} {b}] fails"),
            FailureEvent::NodeDown { node } => format!("node {node} fails"),
            FailureEvent::LinkUp { a, b } => format!("link [{a} {b}] recovers"),
            FailureEvent::SessionReset { a, b } => format!("session [{a} {b}] resets"),
        }
    }
}

/// One directed half of a [`FailureEvent`], touching exactly one node
/// and (at most) the link row *from* that node.
///
/// Failures are split into halves when they are **scheduled**, not when
/// they fire: a `LinkDown {a, b}` becomes two `FailureHalf` events with
/// adjacent order keys — one dispatched on `a`, one on `b`. Under the
/// sharded engine each half runs on its endpoint's owning shard; the
/// serial engine dispatches them back-to-back at the same instant, so
/// both engines execute the identical event sequence and the split is
/// unobservable in any [`RunRecord`](crate::RunRecord) field.
///
/// `origin_event` is `Some` on exactly one half per injected failure
/// (the *primary* half), which carries the run-level bookkeeping: the
/// `faults_injected` / `session_resets` counters and the
/// `fault_injected` / `session_reset` trace lines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct FailureHalf {
    /// The single-node action this half performs.
    pub action: HalfAction,
    /// The originating failure, present only on the primary half.
    pub origin_event: Option<FailureEvent>,
}

impl FailureHalf {
    /// The node this half must be dispatched on.
    pub fn node(&self) -> NodeId {
        self.action.node()
    }
}

/// The single-node effect of a [`FailureHalf`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum HalfAction {
    /// `origin` withdraws `prefix` (a `WithdrawPrefix` has one half).
    Withdraw {
        /// The originating AS.
        origin: NodeId,
        /// The withdrawn prefix.
        prefix: Prefix,
    },
    /// `node` loses its session toward `peer`: the directed link row
    /// `node -> peer` fails and `node`'s router reacts to the peer
    /// loss.
    PeerDown {
        /// The reacting AS.
        node: NodeId,
        /// The peer that became unreachable.
        peer: NodeId,
    },
    /// `node` regains its session toward `peer`: the directed link row
    /// `node -> peer` recovers and `node`'s router re-advertises.
    PeerUp {
        /// The reacting AS.
        node: NodeId,
        /// The peer that came back.
        peer: NodeId,
    },
    /// `node` flushes routes learned from `peer` and re-advertises;
    /// the link itself stays up.
    ResetPeer {
        /// The reacting AS.
        node: NodeId,
        /// The peer whose session restarted.
        peer: NodeId,
    },
}

impl HalfAction {
    /// The node this action is local to.
    pub fn node(&self) -> NodeId {
        match *self {
            HalfAction::Withdraw { origin, .. } => origin,
            HalfAction::PeerDown { node, .. }
            | HalfAction::PeerUp { node, .. }
            | HalfAction::ResetPeer { node, .. } => node,
        }
    }
}

impl FailureEvent {
    /// Splits this failure into per-node halves, primary half first.
    ///
    /// `peers_of` supplies the neighbor list used for [`NodeDown`]
    /// (the node's current peers at scheduling time); the other
    /// variants ignore it. The returned order is deterministic and
    /// shard-independent: callers schedule the halves consecutively so
    /// they stay adjacent in the global `(time, order)` event order.
    ///
    /// [`NodeDown`]: FailureEvent::NodeDown
    pub fn halves<F>(self, peers_of: F) -> Vec<FailureHalf>
    where
        F: FnOnce(NodeId) -> Vec<NodeId>,
    {
        let primary = |action| FailureHalf {
            action,
            origin_event: Some(self),
        };
        let secondary = |action| FailureHalf {
            action,
            origin_event: None,
        };
        match self {
            FailureEvent::WithdrawPrefix { origin, prefix } => {
                vec![primary(HalfAction::Withdraw { origin, prefix })]
            }
            FailureEvent::LinkDown { a, b } => vec![
                primary(HalfAction::PeerDown { node: a, peer: b }),
                secondary(HalfAction::PeerDown { node: b, peer: a }),
            ],
            FailureEvent::LinkUp { a, b } => vec![
                primary(HalfAction::PeerUp { node: a, peer: b }),
                secondary(HalfAction::PeerUp { node: b, peer: a }),
            ],
            FailureEvent::SessionReset { a, b } => vec![
                primary(HalfAction::ResetPeer { node: a, peer: b }),
                secondary(HalfAction::ResetPeer { node: b, peer: a }),
            ],
            FailureEvent::NodeDown { node } => {
                let mut halves = Vec::new();
                for peer in peers_of(node) {
                    let action = HalfAction::PeerDown { node, peer };
                    // Exactly one primary half per failure: the first.
                    if halves.is_empty() {
                        halves.push(primary(action));
                    } else {
                        halves.push(secondary(action));
                    }
                    halves.push(secondary(HalfAction::PeerDown {
                        node: peer,
                        peer: node,
                    }));
                }
                if halves.is_empty() {
                    // An isolated node still counts as an injected
                    // fault: keep a primary no-op half so bookkeeping
                    // (failure_at, counters, traces) stays uniform.
                    halves.push(primary(HalfAction::PeerDown { node, peer: node }));
                }
                halves
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn descriptions_are_informative() {
        let w = FailureEvent::WithdrawPrefix {
            origin: NodeId::new(0),
            prefix: Prefix::new(0),
        };
        assert!(w.describe().contains("T_down"));
        let l = FailureEvent::LinkDown {
            a: NodeId::new(0),
            b: NodeId::new(5),
        };
        assert!(l.describe().contains("[AS0 AS5]"));
        let n = FailureEvent::NodeDown {
            node: NodeId::new(3),
        };
        assert!(n.describe().contains("AS3"));
    }

    #[test]
    fn link_down_splits_into_two_halves_primary_first() {
        let f = FailureEvent::LinkDown {
            a: NodeId::new(1),
            b: NodeId::new(2),
        };
        let halves = f.halves(|_| unreachable!("LinkDown ignores peers"));
        assert_eq!(halves.len(), 2);
        assert_eq!(halves[0].origin_event, Some(f));
        assert_eq!(halves[1].origin_event, None);
        assert_eq!(halves[0].node(), NodeId::new(1));
        assert_eq!(halves[1].node(), NodeId::new(2));
        assert_eq!(
            halves[1].action,
            HalfAction::PeerDown {
                node: NodeId::new(2),
                peer: NodeId::new(1),
            }
        );
    }

    #[test]
    fn withdraw_is_a_single_primary_half() {
        let f = FailureEvent::WithdrawPrefix {
            origin: NodeId::new(4),
            prefix: Prefix::new(0),
        };
        let halves = f.halves(|_| unreachable!());
        assert_eq!(halves.len(), 1);
        assert!(halves[0].origin_event.is_some());
        assert_eq!(halves[0].node(), NodeId::new(4));
    }

    #[test]
    fn node_down_interleaves_peer_pairs_with_one_primary() {
        let f = FailureEvent::NodeDown {
            node: NodeId::new(0),
        };
        let halves = f.halves(|n| {
            assert_eq!(n, NodeId::new(0));
            vec![NodeId::new(1), NodeId::new(2)]
        });
        // [0->1 (primary), 1->0, 0->2, 2->0]
        assert_eq!(halves.len(), 4);
        assert_eq!(
            halves.iter().filter(|h| h.origin_event.is_some()).count(),
            1
        );
        assert!(halves[0].origin_event.is_some());
        let nodes: Vec<_> = halves.iter().map(|h| h.node().as_u32()).collect();
        assert_eq!(nodes, vec![0, 1, 0, 2]);
    }

    #[test]
    fn isolated_node_down_keeps_a_bookkeeping_half() {
        let f = FailureEvent::NodeDown {
            node: NodeId::new(9),
        };
        let halves = f.halves(|_| Vec::new());
        assert_eq!(halves.len(), 1);
        assert_eq!(halves[0].origin_event, Some(f));
    }
}
