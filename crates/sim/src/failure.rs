//! Failure injection.
//!
//! The study triggers routing convergence with two event classes
//! (§4.1):
//!
//! * **T_down** — the destination AS becomes unreachable from the rest
//!   of the network. Modelled as the origin withdrawing the prefix
//!   ([`FailureEvent::WithdrawPrefix`]) or as the destination node
//!   losing all its links ([`FailureEvent::NodeDown`]).
//! * **T_long** — a link fails without disconnecting the destination,
//!   forcing the network onto longer paths
//!   ([`FailureEvent::LinkDown`]).

use bgpsim_core::Prefix;
use bgpsim_topology::NodeId;

/// A topology or policy change injected into a running simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum FailureEvent {
    /// The origin withdraws `prefix` — the canonical `T_down` trigger
    /// (Labovitz et al.'s "route withdrawn" event).
    WithdrawPrefix {
        /// The originating AS.
        origin: NodeId,
        /// The withdrawn prefix.
        prefix: Prefix,
    },
    /// The link between two ASes fails; both ends lose the session —
    /// the `T_long` trigger when the graph stays connected.
    LinkDown {
        /// One endpoint.
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
    },
    /// Every link of `node` fails — an alternative `T_down` trigger
    /// that physically isolates the destination AS.
    NodeDown {
        /// The failing AS.
        node: NodeId,
    },
    /// A previously failed link comes back up; both ends re-establish
    /// the session and re-advertise their routes — the recovery
    /// (`T_up`-style) event studied in the convergence literature.
    LinkUp {
        /// One endpoint.
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
    },
    /// The BGP session between `a` and `b` restarts: both ends flush
    /// the peer's routes and immediately re-advertise. The underlying
    /// link never goes down, so no messages are dropped in transit —
    /// the churn comes purely from the control-plane flush.
    SessionReset {
        /// One endpoint.
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
    },
}

impl FailureEvent {
    /// Short human-readable description.
    pub fn describe(&self) -> String {
        match self {
            FailureEvent::WithdrawPrefix { origin, prefix } => {
                format!("T_down: {origin} withdraws {prefix}")
            }
            FailureEvent::LinkDown { a, b } => format!("link [{a} {b}] fails"),
            FailureEvent::NodeDown { node } => format!("node {node} fails"),
            FailureEvent::LinkUp { a, b } => format!("link [{a} {b}] recovers"),
            FailureEvent::SessionReset { a, b } => format!("session [{a} {b}] resets"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn descriptions_are_informative() {
        let w = FailureEvent::WithdrawPrefix {
            origin: NodeId::new(0),
            prefix: Prefix::new(0),
        };
        assert!(w.describe().contains("T_down"));
        let l = FailureEvent::LinkDown {
            a: NodeId::new(0),
            b: NodeId::new(5),
        };
        assert!(l.describe().contains("[AS0 AS5]"));
        let n = FailureEvent::NodeDown {
            node: NodeId::new(3),
        };
        assert!(n.describe().contains("AS3"));
    }
}
