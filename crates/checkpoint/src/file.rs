//! The checkpoint container and its on-disk file format.
//!
//! A checkpoint file is one JSON document: a small, stable *header*
//! (schema version, warm-up fingerprint, optional embedded canonical
//! spec, capture beat) followed by the full [`RunSnapshot`] state
//! blob. The header always serializes first, so
//! [`Checkpoint::inspect`] can identify a file without deserializing
//! megabytes of router state, and every load re-checks the schema
//! version so a stale or foreign file is rejected, never misread.
//!
//! Float fields inside the snapshot (loss probabilities, jitter
//! bounds, damping penalties) round-trip bit-exactly: the vendored
//! JSON layer prints the shortest representation that parses back to
//! the identical `f64`.

use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use bgpsim_sim::RunSnapshot;
use serde::value::field;
use serde::{Deserialize, Serialize, Value};

/// Version of the checkpoint layout *and* of the simulator-state
/// semantics it captures. Bump whenever [`RunSnapshot`] (or anything
/// reachable from it) changes shape or meaning, so stale checkpoints
/// cannot resume into a simulator that would interpret them
/// differently.
///
/// v2: [`NetworkSnapshot`](bgpsim_sim::NetworkSnapshot) carries the
/// per-node RNG lanes (and their draw counters) introduced for the
/// sharded engine; v1 snapshots hold a single-stream RNG whose draws
/// a lane-split simulator would replay differently.
pub const SCHEMA_VERSION: u32 = 2;

/// Errors of the checkpoint file and store layer.
#[derive(Debug)]
pub enum Error {
    /// The file or directory could not be read or written.
    Io {
        /// The path involved.
        path: PathBuf,
        /// The underlying I/O error.
        source: io::Error,
    },
    /// The file exists but is not a parseable checkpoint.
    Corrupt {
        /// The offending file.
        path: PathBuf,
        /// What failed to parse.
        detail: String,
    },
    /// The file is a checkpoint of an incompatible schema version.
    Schema {
        /// The offending file.
        path: PathBuf,
        /// The version found in the file.
        found: u32,
        /// The version this build understands.
        expected: u32,
    },
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Io { path, source } => {
                write!(f, "checkpoint I/O error at {}: {source}", path.display())
            }
            Error::Corrupt { path, detail } => {
                write!(f, "corrupt checkpoint {}: {detail}", path.display())
            }
            Error::Schema {
                path,
                found,
                expected,
            } => write!(
                f,
                "checkpoint {} has schema v{found}, this build reads v{expected}",
                path.display()
            ),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// The cheap-to-read identity of a checkpoint.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CheckpointHeader {
    /// The [`SCHEMA_VERSION`] the file was written under.
    pub schema: u32,
    /// The warm-up fingerprint this state was captured under — the
    /// content address in a [`CheckpointStore`](crate::CheckpointStore)
    /// and the compatibility key for forking: only scenarios with an
    /// equal warm-up fingerprint may fork a quiescence checkpoint.
    pub fingerprint: String,
    /// The canonical JSON of the `ScenarioSpec` that produced the
    /// warm-up, when the producer had one (the experiments layer
    /// embeds it; a raw harness capture has none). Purely informative:
    /// resume never re-derives state from it.
    pub spec: Option<String>,
    /// The simulation clock at capture, nanoseconds.
    pub beat_nanos: u64,
    /// Whether the tail (failure / fault plan) was already scheduled at
    /// capture time. `false` = a quiescence checkpoint, open to any
    /// tail; `true` = a mid-convergence capture with its tail baked in.
    pub tail_applied: bool,
    /// Number of routers in the captured network.
    pub nodes: u64,
}

/// A complete, portable capture of one simulation's state.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Checkpoint {
    /// Identity and compatibility metadata.
    pub header: CheckpointHeader,
    /// The full simulator state.
    pub snapshot: RunSnapshot,
}

impl Checkpoint {
    /// Wraps a captured snapshot with its identity: the warm-up
    /// fingerprint it was captured under and (optionally) the
    /// producing scenario's canonical JSON.
    pub fn capture(snapshot: RunSnapshot, fingerprint: String, spec: Option<String>) -> Self {
        let header = CheckpointHeader {
            schema: SCHEMA_VERSION,
            fingerprint,
            spec,
            beat_nanos: snapshot.network.now().as_nanos(),
            tail_applied: snapshot.tail_applied,
            nodes: snapshot.network.node_count() as u64,
        };
        Checkpoint { header, snapshot }
    }

    /// Serializes the checkpoint to its JSON document.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Corrupt`] (with the given `path` for context)
    /// if serialization fails — only possible for non-finite floats,
    /// which no reachable simulator state contains.
    fn to_json(&self, path: &Path) -> Result<String, Error> {
        serde_json::to_string(self).map_err(|e| Error::Corrupt {
            path: path.to_path_buf(),
            detail: e.to_string(),
        })
    }

    /// Writes the checkpoint to `path` atomically (temp + rename), so
    /// an interrupted save never leaves a truncated file under a live
    /// name.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Io`] on filesystem failure.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), Error> {
        let path = path.as_ref();
        let json = self.to_json(path)?;
        write_atomic(path, json.as_bytes())
    }

    /// Reads a checkpoint back from `path`.
    ///
    /// # Errors
    ///
    /// * [`Error::Io`] — the file cannot be read;
    /// * [`Error::Corrupt`] — it is not a parseable checkpoint;
    /// * [`Error::Schema`] — it was written under another
    ///   [`SCHEMA_VERSION`].
    pub fn load(path: impl AsRef<Path>) -> Result<Checkpoint, Error> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path).map_err(|source| Error::Io {
            path: path.to_path_buf(),
            source,
        })?;
        Checkpoint::parse(&text, path)
    }

    /// Parses a checkpoint from its JSON text (`path` only labels
    /// errors).
    ///
    /// # Errors
    ///
    /// Same as [`Checkpoint::load`], minus I/O.
    pub fn parse(text: &str, path: &Path) -> Result<Checkpoint, Error> {
        let corrupt = |detail: String| Error::Corrupt {
            path: path.to_path_buf(),
            detail,
        };
        let value: Value = serde_json::from_str(text).map_err(|e| corrupt(e.to_string()))?;
        let header = header_of(&value, path)?;
        if header.schema != SCHEMA_VERSION {
            return Err(Error::Schema {
                path: path.to_path_buf(),
                found: header.schema,
                expected: SCHEMA_VERSION,
            });
        }
        let snapshot = field(&value, "snapshot")
            .and_then(RunSnapshot::from_value)
            .map_err(|e| corrupt(e.to_string()))?;
        Ok(Checkpoint { header, snapshot })
    }

    /// Reads only the header of a checkpoint file — cheap even for
    /// multi-megabyte state blobs, and tolerant of *snapshot*-level
    /// damage (a checkpoint whose header parses but whose state does
    /// not still identifies itself).
    ///
    /// # Errors
    ///
    /// * [`Error::Io`] — the file cannot be read;
    /// * [`Error::Corrupt`] — the header does not parse. An
    ///   incompatible schema is *not* an error here: inspecting is how
    ///   a caller finds out.
    pub fn inspect(path: impl AsRef<Path>) -> Result<CheckpointHeader, Error> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path).map_err(|source| Error::Io {
            path: path.to_path_buf(),
            source,
        })?;
        let value: Value = serde_json::from_str(&text).map_err(|e| Error::Corrupt {
            path: path.to_path_buf(),
            detail: e.to_string(),
        })?;
        header_of(&value, path)
    }
}

fn header_of(value: &Value, path: &Path) -> Result<CheckpointHeader, Error> {
    field(value, "header")
        .and_then(CheckpointHeader::from_value)
        .map_err(|e| Error::Corrupt {
            path: path.to_path_buf(),
            detail: e.to_string(),
        })
}

/// Writes `bytes` to `path` via a uniquely named temp file and an
/// atomic rename.
pub(crate) fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), Error> {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let seq = SEQ.fetch_add(1, Ordering::Relaxed);
    let tmp = path.with_extension(format!("tmp.{}.{}", std::process::id(), seq));
    let io_err = |source: io::Error| Error::Io {
        path: path.to_path_buf(),
        source,
    };
    // Deterministic fault injection (`BGPSIM_FAILPOINT=checkpoint_write:...`):
    // Err fails the write outright; Torn bypasses the temp+rename
    // discipline and leaves a half-written final file, which a later
    // load must detect as corrupt.
    match bgpsim_trace::failpoint::check("checkpoint_write", &path.to_string_lossy()) {
        Some(bgpsim_trace::failpoint::FailpointAction::Err) => {
            return Err(io_err(bgpsim_trace::failpoint::injected_error(
                "checkpoint_write",
            )));
        }
        Some(bgpsim_trace::failpoint::FailpointAction::Torn) => {
            return std::fs::write(path, &bytes[..bytes.len() / 2]).map_err(io_err);
        }
        _ => {}
    }
    std::fs::write(&tmp, bytes).map_err(io_err)?;
    match std::fs::rename(&tmp, path) {
        Ok(()) => Ok(()),
        Err(e) => {
            let _ = std::fs::remove_file(&tmp);
            Err(io_err(e))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::sample;
    use std::path::PathBuf;

    fn temp_file(tag: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        std::env::temp_dir().join(format!(
            "bgpsim-checkpoint-test-{tag}-{}-{}.json",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ))
    }

    #[test]
    fn save_load_fork_is_bit_identical() {
        let (experiment, checkpoint) = sample();
        let path = temp_file("roundtrip");
        checkpoint.save(&path).unwrap();
        let loaded = Checkpoint::load(&path).unwrap();
        assert_eq!(loaded.header, checkpoint.header);
        assert_eq!(
            crate::fork(&loaded, &experiment),
            experiment.run(),
            "a checkpoint that crossed the disk must still fork bit-identically"
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn inspect_reads_header_without_state() {
        let (_, checkpoint) = sample();
        let path = temp_file("inspect");
        checkpoint.save(&path).unwrap();
        let header = Checkpoint::inspect(&path).unwrap();
        assert_eq!(header.schema, SCHEMA_VERSION);
        assert_eq!(header.fingerprint, "warmup/test");
        assert_eq!(header.nodes, 5);
        assert!(!header.tail_applied);
        assert_eq!(
            header.beat_nanos,
            checkpoint.snapshot.network.now().as_nanos()
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn wrong_schema_is_rejected_on_load_but_inspectable() {
        let (_, checkpoint) = sample();
        let path = temp_file("schema");
        checkpoint.save(&path).unwrap();
        let bumped = std::fs::read_to_string(&path).unwrap().replacen(
            &format!("\"schema\":{SCHEMA_VERSION}"),
            &format!("\"schema\":{}", SCHEMA_VERSION + 1),
            1,
        );
        std::fs::write(&path, bumped).unwrap();
        assert!(matches!(
            Checkpoint::load(&path),
            Err(Error::Schema { found, expected, .. })
                if found == SCHEMA_VERSION + 1 && expected == SCHEMA_VERSION
        ));
        assert_eq!(
            Checkpoint::inspect(&path).unwrap().schema,
            SCHEMA_VERSION + 1
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn damaged_file_is_corrupt_not_panic() {
        let path = temp_file("corrupt");
        std::fs::write(&path, b"{ not a checkpoint").unwrap();
        assert!(matches!(
            Checkpoint::load(&path),
            Err(Error::Corrupt { .. })
        ));
        assert!(matches!(
            Checkpoint::inspect(&path),
            Err(Error::Corrupt { .. })
        ));
        std::fs::remove_file(&path).unwrap();
        assert!(matches!(Checkpoint::load(&path), Err(Error::Io { .. })));
    }
}
