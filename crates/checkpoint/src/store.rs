//! Content-addressed on-disk store of warm-up checkpoints.
//!
//! Lives alongside the `bgpsim-runner` run cache and follows the same
//! robustness rules (see `bgpsim_runner::cache`):
//!
//! * entries are named by a 128-bit content hash of the warm-up
//!   fingerprint and the [`SCHEMA_VERSION`]; the fingerprint is also
//!   embedded in the entry, so even a hash collision reads as a miss
//!   rather than resuming the wrong state;
//! * a corrupt or truncated entry is a **miss**, never a panic — and
//!   is quarantined into `<dir>/quarantine/` with a
//!   `cache_quarantine` trace event, exactly like the run cache;
//! * a schema bump invalidates all previous entries;
//! * writes are atomic (temp + rename), so concurrent sweeps sharing
//!   a store directory cannot observe half-written checkpoints.

use std::io;
use std::path::{Path, PathBuf};

use crate::file::{write_atomic, Checkpoint, Error, SCHEMA_VERSION};

/// A content-addressed store of checkpoints under one directory,
/// keyed by warm-up fingerprint.
///
/// Cheap to clone (`Arc` inside); all methods take `&self`.
#[derive(Debug, Clone)]
pub struct CheckpointStore {
    inner: std::sync::Arc<StoreInner>,
}

#[derive(Debug)]
struct StoreInner {
    dir: PathBuf,
    schema: u32,
}

impl CheckpointStore {
    /// Opens (creating if needed) a store directory at the current
    /// [`SCHEMA_VERSION`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::Io`] if the directory cannot be created.
    pub fn new(dir: impl Into<PathBuf>) -> Result<Self, Error> {
        CheckpointStore::with_schema(dir, SCHEMA_VERSION)
    }

    /// Opens a store pinned to an explicit schema version; entries
    /// written under any other version are invisible.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Io`] if the directory cannot be created.
    pub fn with_schema(dir: impl Into<PathBuf>, schema: u32) -> Result<Self, Error> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir).map_err(|source| Error::Io {
            path: dir.clone(),
            source,
        })?;
        Ok(CheckpointStore {
            inner: std::sync::Arc::new(StoreInner { dir, schema }),
        })
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.inner.dir
    }

    /// The entry file for a warm-up fingerprint (key = hash of
    /// schema + fingerprint; same double-FNV construction as the run
    /// cache).
    pub fn entry_path(&self, fingerprint: &str) -> PathBuf {
        let seeded = |basis: u64| -> u64 {
            let mut h = basis ^ u64::from(self.inner.schema).wrapping_mul(0x9e37_79b9_7f4a_7c15);
            for &b in fingerprint.as_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            h
        };
        let h1 = seeded(0xcbf2_9ce4_8422_2325);
        let h2 = seeded(0x6c62_272e_07bb_0142);
        self.inner.dir.join(format!("{h1:016x}{h2:016x}.ckpt.json"))
    }

    /// The directory corrupt entries are moved into by
    /// [`lookup`](Self::lookup).
    pub fn quarantine_dir(&self) -> PathBuf {
        self.inner.dir.join("quarantine")
    }

    /// Looks up the checkpoint for a warm-up fingerprint, treating
    /// every failure as a miss.
    ///
    /// **Contract: a corrupt entry reads as a miss.** Any unreadable,
    /// unparseable, wrong-schema, or colliding (embedded fingerprint
    /// mismatch) entry yields `None`, never a panic — the warm-up is
    /// simply recomputed and the slot overwritten by the next
    /// [`store`](Self::store). A corrupt entry is additionally
    /// quarantined and reported once via a `cache_quarantine` trace
    /// event and a stderr note, mirroring the run cache.
    pub fn lookup(&self, fingerprint: &str) -> Option<Checkpoint> {
        match self.try_lookup(fingerprint) {
            Ok(found) => found,
            Err(Error::Corrupt { path, detail }) => {
                self.quarantine(&path, &detail);
                None
            }
            Err(_) => None,
        }
    }

    /// Looks up a fingerprint, reporting *why* nothing usable was
    /// found. A missing entry, a schema mismatch, or a collision is
    /// `Ok(None)` — those are ordinary misses.
    ///
    /// # Errors
    ///
    /// * [`Error::Io`] — the entry exists but cannot be read;
    /// * [`Error::Corrupt`] — the entry exists but does not parse.
    pub fn try_lookup(&self, fingerprint: &str) -> Result<Option<Checkpoint>, Error> {
        let path = self.entry_path(fingerprint);
        let text = match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(source) => return Err(Error::Io { path, source }),
        };
        let checkpoint = match Checkpoint::parse(&text, &path) {
            Ok(cp) => cp,
            // A foreign schema is a miss (old entries must survive for
            // builds that still read them), not corruption.
            Err(Error::Schema { .. }) => return Ok(None),
            Err(e) => return Err(e),
        };
        if checkpoint.header.schema != self.inner.schema
            || checkpoint.header.fingerprint != fingerprint
        {
            return Ok(None);
        }
        Ok(Some(checkpoint))
    }

    /// Stores a checkpoint under its own warm-up fingerprint
    /// (atomically via temp + rename).
    ///
    /// # Errors
    ///
    /// Returns [`Error::Io`] or [`Error::Corrupt`] on failure; callers
    /// may treat a failed store as non-fatal (the warm-up simply stays
    /// unstored).
    pub fn store(&self, checkpoint: &Checkpoint) -> Result<(), Error> {
        let path = self.entry_path(&checkpoint.header.fingerprint);
        let json = serde_json::to_string(checkpoint).map_err(|e| Error::Corrupt {
            path: path.clone(),
            detail: e.to_string(),
        })?;
        write_atomic(&path, json.as_bytes())
    }

    /// Moves a corrupt entry out of the live store (best-effort) and
    /// reports it via trace + stderr.
    fn quarantine(&self, path: &Path, detail: &str) {
        let qdir = self.quarantine_dir();
        let moved = std::fs::create_dir_all(&qdir).and_then(|()| {
            let dest = qdir.join(path.file_name().unwrap_or_default());
            std::fs::rename(path, &dest).map(|()| dest)
        });
        let shown = match &moved {
            Ok(dest) => dest.clone(),
            Err(_) => path.to_path_buf(),
        };
        bgpsim_trace::TraceHandle::global().emit(|| bgpsim_trace::TraceEvent::CacheQuarantine {
            path: shown.display().to_string(),
            detail: detail.to_string(),
        });
        match moved {
            Ok(dest) => eprintln!(
                "bgpsim-checkpoint: quarantined corrupt checkpoint {} -> {} ({detail}); \
                 recomputing warm-up",
                path.display(),
                dest.display()
            ),
            Err(e) => eprintln!(
                "bgpsim-checkpoint: corrupt checkpoint {} ({detail}); quarantine failed: {e}; \
                 treating as miss",
                path.display()
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::sample;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_store_dir(tag: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        std::env::temp_dir().join(format!(
            "bgpsim-checkpoint-store-test-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ))
    }

    #[test]
    fn round_trip_hit_and_fork() {
        let dir = temp_store_dir("roundtrip");
        let store = CheckpointStore::new(&dir).unwrap();
        let (experiment, checkpoint) = sample();
        assert!(store.lookup("warmup/test").is_none());
        store.store(&checkpoint).unwrap();
        let hit = store.lookup("warmup/test").expect("stored entry hits");
        assert_eq!(hit.header, checkpoint.header);
        assert_eq!(crate::fork(&hit, &experiment), experiment.run());
        assert!(store.lookup("warmup/other").is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn schema_bump_invalidates() {
        let dir = temp_store_dir("schema");
        let old = CheckpointStore::with_schema(&dir, SCHEMA_VERSION).unwrap();
        let (_, checkpoint) = sample();
        old.store(&checkpoint).unwrap();
        let newer = CheckpointStore::with_schema(&dir, SCHEMA_VERSION + 1).unwrap();
        assert!(
            newer.lookup("warmup/test").is_none(),
            "new schema must not resume old state"
        );
        assert!(old.lookup("warmup/test").is_some());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_entry_is_quarantined_miss() {
        let dir = temp_store_dir("quarantine");
        let store = CheckpointStore::new(&dir).unwrap();
        let (_, checkpoint) = sample();
        store.store(&checkpoint).unwrap();
        let path = store.entry_path("warmup/test");
        std::fs::write(&path, b"{ mangled state").unwrap();
        // The strict API surfaces the damage …
        assert!(matches!(
            store.try_lookup("warmup/test"),
            Err(Error::Corrupt { .. })
        ));
        // … the lenient API honors the reads-as-miss contract and
        // parks the file in quarantine/ under the same name.
        assert!(store.lookup("warmup/test").is_none());
        assert!(!path.exists(), "corrupt entry must leave the live store");
        let parked = store.quarantine_dir().join(path.file_name().unwrap());
        assert_eq!(std::fs::read(&parked).unwrap(), b"{ mangled state");
        // The slot is reusable.
        store.store(&checkpoint).unwrap();
        assert!(store.lookup("warmup/test").is_some());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn colliding_name_with_different_fingerprint_is_miss() {
        let dir = temp_store_dir("collide");
        let store = CheckpointStore::new(&dir).unwrap();
        let (_, checkpoint) = sample();
        store.store(&checkpoint).unwrap();
        // Simulate a hash collision: copy the entry into another key's
        // slot.
        std::fs::copy(
            store.entry_path("warmup/test"),
            store.entry_path("warmup/elsewhere"),
        )
        .unwrap();
        assert!(
            store.lookup("warmup/elsewhere").is_none(),
            "an entry with a mismatched embedded fingerprint must not resume"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
