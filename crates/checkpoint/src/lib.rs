//! # bgpsim-checkpoint
//!
//! Deterministic checkpoint/fork of simulator state.
//!
//! A [`Checkpoint`] is a portable, schema-versioned capture of one
//! simulation's complete state — every router's RIBs, MRAI and
//! damping tables, the event queue with its original `(time, seq)`
//! ordering keys, per-link loss-model RNG streams, the main RNG, and
//! the record-in-progress — wrapped around the `bgpsim-sim`
//! [`RunSnapshot`](bgpsim_sim::RunSnapshot). Restoring one and
//! draining the run produces a
//! [`RunRecord`] **bit-identical** to the uninterrupted run (the
//! snapshot contract of `bgpsim-sim`, enforced here by property
//! tests over random fault plans and fork beats).
//!
//! Two persistence surfaces:
//!
//! * **Files** — [`Checkpoint::save`] / [`Checkpoint::load`] /
//!   [`Checkpoint::inspect`] move single checkpoints around
//!   explicitly (the `bgpsim checkpoint` CLI subcommand); `inspect`
//!   reads only the header, so a multi-megabyte state blob can be
//!   identified cheaply.
//! * **Store** — [`CheckpointStore`] is a content-addressed directory
//!   keyed by *warm-up fingerprint*
//!   (`bgpsim_experiments::ScenarioSpec::warmup_fingerprint`), living
//!   alongside the run cache and following the same robustness rules:
//!   schema-versioned names, embedded-key collision guard, atomic
//!   writes, and **corrupt entries read as misses** (quarantined, like
//!   `RunCache`).
//!
//! Forking is what checkpoints are for: one converged warm-up
//! captured at quiescence replays any number of post-failure tail
//! variants via [`fork`] / [`fork_budgeted`], and a mid-run capture is
//! the crash-resume primitive for long sweeps.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod file;
pub mod store;

use bgpsim_sim::{BudgetExceeded, ConvergenceExperiment, RunBudget, RunRecord};

pub use file::{Checkpoint, CheckpointHeader, Error, SCHEMA_VERSION};
pub use store::CheckpointStore;

/// Replays one tail variant from a checkpoint: restores the captured
/// state and drains `tail`'s post-failure convergence, returning a
/// record bit-identical to the from-scratch run of `tail`.
///
/// For a quiescence checkpoint (`tail_applied == false`) the `tail`
/// experiment's own failure or fault plan is scheduled against the
/// restored state — call this N times with N variants to replay N
/// runs from one warm-up. For a mid-convergence checkpoint the baked-in
/// tail simply finishes; `tail` must then be the original experiment.
///
/// # Panics
///
/// Panics if the tail's event budget is exhausted or its fault plan is
/// invalid.
pub fn fork(checkpoint: &Checkpoint, tail: &ConvergenceExperiment) -> RunRecord {
    tail.resume_from(&checkpoint.snapshot)
}

/// [`fork`] under watchdog `limit`s.
///
/// # Errors
///
/// Returns the interrupted phase and partial record when the budget
/// trips while draining the tail.
pub fn fork_budgeted(
    checkpoint: &Checkpoint,
    tail: &ConvergenceExperiment,
    limit: &RunBudget,
) -> Result<RunRecord, Box<BudgetExceeded>> {
    tail.resume_from_budgeted(&checkpoint.snapshot, limit)
}

#[cfg(test)]
pub(crate) mod testutil {
    use bgpsim_core::BgpConfig;
    use bgpsim_sim::{ConvergenceExperiment, FailureEvent, SnapshotBeat};
    use bgpsim_topology::{generators, NodeId};

    use crate::Checkpoint;

    /// A small experiment with a nontrivial warm-up, plus a checkpoint
    /// of it at quiescence.
    pub fn sample() -> (ConvergenceExperiment, Checkpoint) {
        let graph = generators::clique(5);
        let experiment = ConvergenceExperiment::new(
            graph,
            NodeId::new(0),
            FailureEvent::WithdrawPrefix {
                origin: NodeId::new(0),
                prefix: bgpsim_core::Prefix::new(0),
            },
        )
        .with_config(BgpConfig::default())
        .with_seed(11);
        let snap = experiment.snapshot_at(SnapshotBeat::Quiescence);
        let checkpoint = Checkpoint::capture(snap, "warmup/test".to_string(), None);
        (experiment, checkpoint)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::sample;

    #[test]
    fn fork_matches_from_scratch() {
        let (experiment, checkpoint) = sample();
        let forked = fork(&checkpoint, &experiment);
        let scratch = experiment.run();
        assert_eq!(forked, scratch, "fork must be bit-identical");
    }

    #[test]
    fn one_checkpoint_forks_many_variants() {
        let (base, checkpoint) = sample();
        let reset = ConvergenceExperiment {
            failure: bgpsim_sim::FailureEvent::LinkDown {
                a: bgpsim_topology::NodeId::new(1),
                b: bgpsim_topology::NodeId::new(2),
            },
            ..base.clone()
        };
        let a = fork(&checkpoint, &base);
        let b = fork(&checkpoint, &reset);
        assert_eq!(b, reset.run());
        assert_ne!(a, b, "different tails, different runs");
    }

    #[test]
    fn budgeted_fork_reports_partial_record() {
        let (experiment, checkpoint) = sample();
        let limit = RunBudget::unlimited().with_max_events(3);
        let stopped = fork_budgeted(&checkpoint, &experiment, &limit)
            .expect_err("3 events cannot drain a T_down tail");
        assert_eq!(stopped.phase, "convergence");
    }
}
