//! Property-level enforcement of the checkpoint contract: a forked run
//! is **bit-identical** to the uninterrupted run, across random fault
//! plans (link events, session resets, withdrawals, jittered flap
//! trains, lossy links) and fork beats (quiescence and mid-convergence,
//! including beats landing in the middle of a flap train), with every
//! checkpoint pushed through its JSON serialization first so the
//! property also covers the file format, not just the in-memory
//! snapshot.

use proptest::prelude::*;

use bgpsim_checkpoint::{fork, Checkpoint, CheckpointStore};
use bgpsim_core::{BgpConfig, Prefix};
use bgpsim_experiments::{EventKind, ScenarioSpec, TopologySpec};
use bgpsim_netsim::time::{SimDuration, SimTime};
use bgpsim_sim::{
    ConvergenceExperiment, FailureEvent, FaultPlan, FlapTrain, RunRecord, SnapshotBeat,
};
use bgpsim_topology::{generators, NodeId};

/// The experiment under test: an `n`-clique warm-up, a T_down tail
/// (withdraw of prefix 0 at the origin), plus an optional fault plan
/// anchored alongside it.
fn experiment(n: u32, seed: u64, plan: Option<FaultPlan>) -> ConvergenceExperiment {
    let exp = ConvergenceExperiment::new(
        generators::clique(n as usize),
        NodeId::new(0),
        FailureEvent::WithdrawPrefix {
            origin: NodeId::new(0),
            prefix: Prefix::new(0),
        },
    )
    .with_config(BgpConfig::default())
    .with_seed(seed);
    match plan {
        Some(plan) => exp.with_faults(plan),
        None => exp,
    }
}

/// Decodes raw proptest integers into a valid fault plan on an
/// `n`-clique. Returns `None` when the draw produced no faults at all
/// (an empty plan is invalid by contract — the experiment then runs
/// with its bare failure event).
fn plan_from(
    n: u32,
    events: &[(u8, u64, u32, u32)],
    flap: Option<(u64, u64, u32)>,
    loss: Option<u32>,
) -> Option<FaultPlan> {
    // Map an arbitrary pair of draws onto a real (distinct) clique edge.
    let pair = |a: u32, b: u32| {
        let a = a % n;
        let b = b % n;
        let b = if a == b { (b + 1) % n } else { b };
        (NodeId::new(a), NodeId::new(b))
    };
    if events.is_empty() && flap.is_none() && loss.is_none() {
        return None;
    }
    let mut plan = FaultPlan::new();
    for &(kind, at, a, b) in events {
        let at = SimDuration::from_secs(1 + at);
        let (a, b) = pair(a, b);
        plan = match kind % 4 {
            0 => plan.link_down(at, a, b),
            1 => plan.session_reset(at, a, b),
            2 => plan.withdraw(at, NodeId::new(0), Prefix::new(0)),
            // A down/up pulse, so LinkUp always has something to restore.
            _ => plan
                .link_down(at, a, b)
                .link_up(at + SimDuration::from_secs(2), a, b),
        };
    }
    if let Some((start, period, count)) = flap {
        let (a, b) = pair(1, 2);
        plan = plan.flap(
            FlapTrain::new(a, b)
                .starting_at(SimDuration::from_secs(start))
                .with_period(SimDuration::from_secs(period))
                .with_count(count)
                .with_jitter(0.2),
        );
    }
    if let Some(p) = loss {
        let (a, b) = pair(2, 3);
        // Keep loss light so every generated run still converges.
        plan = plan.loss(a, b, f64::from(p % 25) / 100.0);
    }
    plan.validate().expect("generated plans are valid");
    Some(plan)
}

/// Pushes a checkpoint through its JSON document and back, in memory.
fn json_roundtrip(checkpoint: &Checkpoint) -> Checkpoint {
    let json = serde_json::to_string(checkpoint).expect("checkpoint state serializes");
    let value: serde::Value = serde_json::from_str(&json).expect("document parses");
    serde::Deserialize::from_value(&value).expect("checkpoint deserializes")
}

/// A capture beat `frac`% of the way through the post-failure
/// convergence window of `scratch`.
fn beat_within(scratch: &RunRecord, frac: u64) -> SimTime {
    let from = scratch
        .failure_at
        .expect("every experiment schedules a failure")
        .as_nanos();
    let until = scratch
        .convergence_end()
        .map_or(
            from + SimDuration::from_secs(1).as_nanos(),
            SimTime::as_nanos,
        )
        .max(from);
    SimTime::from_nanos(from + (until - from) * frac.clamp(0, 100) / 100)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// A quiescence checkpoint saved to disk, loaded back, and forked
    /// reproduces the from-scratch run exactly — over random fault
    /// plans mixing discrete events, a flap train, and a loss model.
    #[test]
    fn quiescence_fork_is_bit_identical(
        (n, seed) in (4u32..7, 0u64..1_000_000),
        events in proptest::collection::vec((0u8..4, 0u64..8, 0u32..16, 0u32..16), 0..4),
        flap in proptest::option::of((1u64..3, 2u64..5, 2u32..4)),
        loss in proptest::option::of(1u32..25),
    ) {
        let exp = experiment(n, seed, plan_from(n, &events, flap, loss));
        let scratch = exp.run();
        let snap = exp.snapshot_at(SnapshotBeat::Quiescence);
        prop_assert!(!snap.tail_applied, "quiescence capture precedes the tail");
        let checkpoint = json_roundtrip(&Checkpoint::capture(
            snap,
            format!("prop/quiescence/{n}/{seed}"),
            None,
        ));
        prop_assert_eq!(fork(&checkpoint, &exp), scratch);
    }

    /// A mid-convergence checkpoint — taken anywhere in the
    /// failure-to-convergence window of a jittered flap train, i.e.
    /// with flaps already spent and flaps still pending — resumes into
    /// exactly the from-scratch record.
    #[test]
    fn mid_convergence_resume_is_bit_identical(
        (n, seed) in (4u32..7, 0u64..1_000_000),
        (start, period, count) in (1u64..3, 2u64..5, 2u32..5),
        frac in 0u64..101,
    ) {
        let plan = FaultPlan::new().flap(
            FlapTrain::new(NodeId::new(1), NodeId::new(2))
                .starting_at(SimDuration::from_secs(start))
                .with_period(SimDuration::from_secs(period))
                .with_count(count)
                .with_jitter(0.25),
        );
        let exp = experiment(n, seed, Some(plan));
        let scratch = exp.run();
        let beat = beat_within(&scratch, frac);
        let snap = exp.snapshot_at(SnapshotBeat::At(beat));
        prop_assert!(snap.tail_applied, "a mid-convergence capture bakes its tail in");
        let checkpoint = json_roundtrip(&Checkpoint::capture(
            snap,
            format!("prop/mid/{n}/{seed}"),
            None,
        ));
        prop_assert_eq!(checkpoint.header.beat_nanos, beat.as_nanos());
        prop_assert_eq!(fork(&checkpoint, &exp), scratch);
    }
}

/// Pin one mid-flap-train beat explicitly (between pulse 2 and 3 of a
/// 4-pulse train): the restored event queue must still hold the
/// not-yet-fired flap pulses under their original `(time, seq)` keys.
#[test]
fn resume_between_flap_pulses_is_bit_identical() {
    let plan = FaultPlan::new().flap(
        FlapTrain::new(NodeId::new(1), NodeId::new(2))
            .starting_at(SimDuration::from_secs(1))
            .with_period(SimDuration::from_secs(2))
            .with_count(4),
    );
    let exp = experiment(5, 77, Some(plan));
    let scratch = exp.run();
    let failure_at = scratch.failure_at.expect("failure is scheduled");
    let beat = failure_at + SimDuration::from_secs(4);
    assert!(
        scratch.convergence_end().is_some_and(|end| end > beat),
        "the train must still be running at the capture beat"
    );
    let snap = exp.snapshot_at(SnapshotBeat::At(beat));
    let checkpoint = json_roundtrip(&Checkpoint::capture(snap, "mid-train".into(), None));
    assert_eq!(fork(&checkpoint, &exp), scratch);
}

/// The full experiments-layer loop: a warm-up snapshot captured under a
/// `ScenarioSpec`, content-addressed into a `CheckpointStore` by
/// warm-up fingerprint with the canonical spec embedded, looked up by a
/// *sibling* scenario (same warm-up, different seedless tail is not
/// possible — same spec), and replayed via `run_forked` — equal to the
/// from-scratch `ScenarioResult` bit for bit.
#[test]
fn scenario_store_roundtrip_forks_bit_identically() {
    let dir = std::env::temp_dir().join(format!(
        "bgpsim-checkpoint-determinism-{}",
        std::process::id()
    ));
    let store = CheckpointStore::new(&dir).unwrap();
    let spec = ScenarioSpec::new(TopologySpec::Clique(6), EventKind::TDown).with_seed(9);
    let fingerprint = spec.warmup_fingerprint();

    assert!(store.lookup(&fingerprint).is_none());
    let checkpoint = Checkpoint::capture(
        spec.snapshot_warmup(),
        fingerprint.clone(),
        Some(spec.to_canonical_json().unwrap()),
    );
    store.store(&checkpoint).unwrap();

    let hit = store
        .lookup(&fingerprint)
        .expect("warm-up hits by fingerprint");
    assert_eq!(
        hit.header.spec.as_deref(),
        Some(spec.to_canonical_json().unwrap().as_str()),
        "the canonical spec travels with the checkpoint"
    );
    let forked = spec.run_forked(&hit.snapshot);
    let scratch = spec.run();
    assert_eq!(
        forked.record, scratch.record,
        "records must be bit-identical"
    );
    assert_eq!(
        format!("{:?}", forked.measurement),
        format!("{:?}", scratch.measurement),
        "and so must every derived metric"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}
