//! Packet replay against a forwarding history.
//!
//! [`walk_packet`] traces one packet hop by hop through the
//! time-indexed [`NetworkFib`]: at each AS it looks up the entry in
//! effect *at the packet's current time*, so forwarding-table changes
//! that happen while the packet is in flight are honored exactly as in
//! a fully interleaved event simulation (`bgpsim-sim` cross-checks
//! this equivalence).

use bgpsim_core::{FibEntry, Prefix};
use bgpsim_netsim::time::{SimDuration, SimTime};
use bgpsim_topology::NodeId;

use crate::fib::NetworkFib;
use crate::packet::{Packet, PacketFate};

/// Per-hop record of a packet's trajectory (optional detailed output).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hop {
    /// The AS the packet was at.
    pub node: NodeId,
    /// The time it was there.
    pub at: SimTime,
}

/// Walks `packet` through `fib`, returning its fate.
///
/// Each hop costs `link_delay`; the TTL is decremented once per AS hop
/// (the paper's per-AS TTL model, §4.2).
///
/// # Examples
///
/// ```
/// use bgpsim_dataplane::fib::NetworkFib;
/// use bgpsim_dataplane::packet::{Packet, PacketFate, DEFAULT_TTL};
/// use bgpsim_dataplane::replay::walk_packet;
/// use bgpsim_core::{FibEntry, Prefix};
/// use bgpsim_netsim::time::{SimDuration, SimTime};
/// use bgpsim_topology::NodeId;
///
/// let p = Prefix::new(0);
/// let mut fib = NetworkFib::new(2);
/// fib.record(NodeId::new(0), p, SimTime::ZERO, Some(FibEntry::Local));
/// fib.record(NodeId::new(1), p, SimTime::ZERO, Some(FibEntry::Via(NodeId::new(0))));
/// let pkt = Packet { id: 0, src: NodeId::new(1), prefix: p, ttl: DEFAULT_TTL, sent_at: SimTime::from_secs(1) };
/// let fate = walk_packet(&fib, &pkt, SimDuration::from_millis(2));
/// assert!(fate.is_delivered());
/// ```
pub fn walk_packet(fib: &NetworkFib, packet: &Packet, link_delay: SimDuration) -> PacketFate {
    walk_packet_traced(fib, packet, link_delay, None)
}

/// Like [`walk_packet`], but optionally records every hop into `trace`.
pub fn walk_packet_traced(
    fib: &NetworkFib,
    packet: &Packet,
    link_delay: SimDuration,
    mut trace: Option<&mut Vec<Hop>>,
) -> PacketFate {
    let mut node = packet.src;
    let mut at = packet.sent_at;
    let mut ttl = packet.ttl;
    loop {
        if let Some(tr) = trace.as_deref_mut() {
            tr.push(Hop { node, at });
        }
        match fib.lookup(node, packet.prefix, at) {
            Some(FibEntry::Local) => {
                return PacketFate::Delivered {
                    at,
                    hops: packet.ttl - ttl,
                }
            }
            None => return PacketFate::NoRoute { at, node },
            Some(FibEntry::Via(next)) => {
                if ttl == 0 {
                    return PacketFate::TtlExhausted { at, node };
                }
                ttl -= 1;
                at += link_delay;
                node = next;
            }
        }
    }
}

/// Walks a batch of packets and returns their fates in order.
pub fn walk_all(fib: &NetworkFib, packets: &[Packet], link_delay: SimDuration) -> Vec<PacketFate> {
    packets
        .iter()
        .map(|p| walk_packet(fib, p, link_delay))
        .collect()
}

/// Generates the packets sent by `sources` in `[start, end)` toward
/// `prefix`, ids assigned in deterministic (source-major) order.
pub fn generate_packets(
    sources: &[crate::source::CbrSource],
    prefix: Prefix,
    ttl: u32,
    start: SimTime,
    end: SimTime,
) -> Vec<Packet> {
    let mut packets = Vec::new();
    let mut id = 0u64;
    for src in sources {
        for sent_at in src.send_times(start, end) {
            packets.push(Packet {
                id,
                src: src.node(),
                prefix,
                ttl,
                sent_at,
            });
            id += 1;
        }
    }
    packets
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::DEFAULT_TTL;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn p() -> Prefix {
        Prefix::new(0)
    }

    fn d2() -> SimDuration {
        SimDuration::from_millis(2)
    }

    fn pkt(src: u32, at: SimTime) -> Packet {
        Packet {
            id: 0,
            src: n(src),
            prefix: p(),
            ttl: DEFAULT_TTL,
            sent_at: at,
        }
    }

    /// A 3-node chain 2 → 1 → 0 with stable routes.
    fn chain_fib() -> NetworkFib {
        let mut fib = NetworkFib::new(3);
        fib.record(n(0), p(), SimTime::ZERO, Some(FibEntry::Local));
        fib.record(n(1), p(), SimTime::ZERO, Some(FibEntry::Via(n(0))));
        fib.record(n(2), p(), SimTime::ZERO, Some(FibEntry::Via(n(1))));
        fib
    }

    #[test]
    fn delivery_counts_hops_and_delay() {
        let fib = chain_fib();
        let fate = walk_packet(&fib, &pkt(2, SimTime::from_secs(1)), d2());
        match fate {
            PacketFate::Delivered { at, hops } => {
                assert_eq!(hops, 2);
                assert_eq!(at, SimTime::from_millis(1004));
            }
            other => panic!("expected delivery, got {other:?}"),
        }
    }

    #[test]
    fn no_route_drops_at_first_routeless_node() {
        let mut fib = chain_fib();
        fib.record(n(1), p(), SimTime::from_secs(5), None);
        let fate = walk_packet(&fib, &pkt(2, SimTime::from_secs(6)), d2());
        match fate {
            PacketFate::NoRoute { node, .. } => assert_eq!(node, n(1)),
            other => panic!("expected no-route, got {other:?}"),
        }
    }

    #[test]
    fn two_node_loop_exhausts_ttl_at_256ms() {
        // The paper's Figure 1(b): 5 → 6 and 6 → 5.
        let mut fib = NetworkFib::new(7);
        fib.record(n(5), p(), SimTime::ZERO, Some(FibEntry::Via(n(6))));
        fib.record(n(6), p(), SimTime::ZERO, Some(FibEntry::Via(n(5))));
        let fate = walk_packet(&fib, &pkt(5, SimTime::from_secs(1)), d2());
        match fate {
            PacketFate::TtlExhausted { at, node } => {
                // 128 hops × 2 ms = 256 ms after send.
                assert_eq!(at, SimTime::from_millis(1256));
                assert!(node == n(5) || node == n(6));
            }
            other => panic!("expected TTL exhaustion, got {other:?}"),
        }
    }

    #[test]
    fn packet_escapes_loop_that_resolves_in_flight() {
        // Loop 5↔6 forms at t=0 and resolves at t=1.1: node 6 switches
        // to a working path via 0. A packet sent at t=1 loops briefly,
        // then escapes and is delivered — the "packets which encountered
        // and escaped a loop" case.
        let mut fib = NetworkFib::new(7);
        fib.record(n(0), p(), SimTime::ZERO, Some(FibEntry::Local));
        fib.record(n(5), p(), SimTime::ZERO, Some(FibEntry::Via(n(6))));
        fib.record(n(6), p(), SimTime::ZERO, Some(FibEntry::Via(n(5))));
        fib.record(
            n(6),
            p(),
            SimTime::from_millis(1100),
            Some(FibEntry::Via(n(0))),
        );
        let fate = walk_packet(&fib, &pkt(5, SimTime::from_secs(1)), d2());
        assert!(fate.is_delivered(), "got {fate:?}");
        if let PacketFate::Delivered { hops, .. } = fate {
            assert!(hops > 2, "must have circulated before escaping");
        }
    }

    #[test]
    fn source_with_no_route_drops_immediately() {
        let fib = NetworkFib::new(3);
        let fate = walk_packet(&fib, &pkt(2, SimTime::ZERO), d2());
        match fate {
            PacketFate::NoRoute { node, at } => {
                assert_eq!(node, n(2));
                assert_eq!(at, SimTime::ZERO);
            }
            other => panic!("expected no-route, got {other:?}"),
        }
    }

    #[test]
    fn trace_records_trajectory() {
        let fib = chain_fib();
        let mut trace = Vec::new();
        let _ = walk_packet_traced(&fib, &pkt(2, SimTime::ZERO), d2(), Some(&mut trace));
        let nodes: Vec<NodeId> = trace.iter().map(|h| h.node).collect();
        assert_eq!(nodes, vec![n(2), n(1), n(0)]);
        assert_eq!(trace[1].at, SimTime::from_millis(2));
    }

    #[test]
    fn zero_ttl_exhausts_before_any_hop() {
        let fib = chain_fib();
        let packet = Packet {
            ttl: 0,
            ..pkt(2, SimTime::ZERO)
        };
        assert!(walk_packet(&fib, &packet, d2()).is_ttl_exhausted());
    }

    #[test]
    fn generate_packets_is_deterministic_and_ordered() {
        use crate::source::CbrSource;
        let sources = vec![
            CbrSource::new(n(1), SimDuration::from_millis(100), SimDuration::ZERO),
            CbrSource::new(
                n(2),
                SimDuration::from_millis(100),
                SimDuration::from_millis(50),
            ),
        ];
        let pkts = generate_packets(
            &sources,
            p(),
            DEFAULT_TTL,
            SimTime::ZERO,
            SimTime::from_millis(300),
        );
        assert_eq!(pkts.len(), 6);
        // Ids are unique and source-major.
        let ids: Vec<u64> = pkts.iter().map(|pk| pk.id).collect();
        assert_eq!(ids, (0..6).collect::<Vec<_>>());
        assert!(pkts[..3].iter().all(|pk| pk.src == n(1)));
        assert!(pkts[3..].iter().all(|pk| pk.src == n(2)));
    }

    #[test]
    fn walk_all_matches_individual_walks() {
        let fib = chain_fib();
        let packets = vec![pkt(2, SimTime::ZERO), pkt(1, SimTime::from_secs(1))];
        let fates = walk_all(&fib, &packets, d2());
        assert_eq!(fates.len(), 2);
        assert_eq!(fates[0], walk_packet(&fib, &packets[0], d2()));
        assert_eq!(fates[1], walk_packet(&fib, &packets[1], d2()));
    }
}
