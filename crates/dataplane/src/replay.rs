//! Packet replay against a forwarding history.
//!
//! [`walk_packet`] traces one packet hop by hop through the
//! time-indexed [`NetworkFib`]: at each AS it looks up the entry in
//! effect *at the packet's current time*, so forwarding-table changes
//! that happen while the packet is in flight are honored exactly as in
//! a fully interleaved event simulation (`bgpsim-sim` cross-checks
//! this equivalence).
//!
//! [`walk_all_batched`] is the production path: it replays a whole
//! fleet against a per-prefix [`EpochIndex`], replacing the per-hop
//! binary search with a monotone epoch cursor and memoizing walks that
//! stay inside one FIB epoch. Fates are bit-identical to per-packet
//! [`walk_packet`] (property-tested here and in CI); the naive walk is
//! retained as the oracle.

use std::collections::HashMap;

use bgpsim_core::{FibEntry, Prefix};
use bgpsim_netsim::time::{SimDuration, SimTime};
use bgpsim_topology::NodeId;

use crate::epoch::EpochIndex;
use crate::fib::NetworkFib;
use crate::packet::{Packet, PacketFate};

/// Per-hop record of a packet's trajectory (optional detailed output).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hop {
    /// The AS the packet was at.
    pub node: NodeId,
    /// The time it was there.
    pub at: SimTime,
}

/// Walks `packet` through `fib`, returning its fate.
///
/// Each hop costs `link_delay`; the TTL is decremented once per AS hop
/// (the paper's per-AS TTL model, §4.2).
///
/// # Examples
///
/// ```
/// use bgpsim_dataplane::fib::NetworkFib;
/// use bgpsim_dataplane::packet::{Packet, PacketFate, DEFAULT_TTL};
/// use bgpsim_dataplane::replay::walk_packet;
/// use bgpsim_core::{FibEntry, Prefix};
/// use bgpsim_netsim::time::{SimDuration, SimTime};
/// use bgpsim_topology::NodeId;
///
/// let p = Prefix::new(0);
/// let mut fib = NetworkFib::new(2);
/// fib.record(NodeId::new(0), p, SimTime::ZERO, Some(FibEntry::Local));
/// fib.record(NodeId::new(1), p, SimTime::ZERO, Some(FibEntry::Via(NodeId::new(0))));
/// let pkt = Packet { id: 0, src: NodeId::new(1), prefix: p, ttl: DEFAULT_TTL, sent_at: SimTime::from_secs(1) };
/// let fate = walk_packet(&fib, &pkt, SimDuration::from_millis(2));
/// assert!(fate.is_delivered());
/// ```
pub fn walk_packet(fib: &NetworkFib, packet: &Packet, link_delay: SimDuration) -> PacketFate {
    walk_packet_traced(fib, packet, link_delay, None)
}

/// Like [`walk_packet`], but optionally records every hop into `trace`.
pub fn walk_packet_traced(
    fib: &NetworkFib,
    packet: &Packet,
    link_delay: SimDuration,
    mut trace: Option<&mut Vec<Hop>>,
) -> PacketFate {
    let mut node = packet.src;
    let mut at = packet.sent_at;
    let mut ttl = packet.ttl;
    if let Some(tr) = trace.as_deref_mut() {
        // A walk visits at most ttl + 1 nodes (one per TTL decrement
        // plus the fate node): reserve the bound once instead of
        // growing per hop.
        tr.reserve((packet.ttl as usize + 1).saturating_sub(tr.len()));
    }
    loop {
        if let Some(tr) = trace.as_deref_mut() {
            tr.push(Hop { node, at });
        }
        match fib.lookup(node, packet.prefix, at) {
            Some(FibEntry::Local) => {
                return PacketFate::Delivered {
                    at,
                    hops: packet.ttl - ttl,
                }
            }
            None => return PacketFate::NoRoute { at, node },
            Some(FibEntry::Via(next)) => {
                if ttl == 0 {
                    return PacketFate::TtlExhausted { at, node };
                }
                ttl -= 1;
                at += link_delay;
                node = next;
            }
        }
    }
}

/// Walks a batch of packets and returns their fates in order.
///
/// This is the naive per-packet oracle: one independent time-indexed
/// FIB lookup per hop. Production measurement goes through
/// [`walk_all_batched`], which must (and is property-tested to)
/// produce identical fates.
pub fn walk_all(fib: &NetworkFib, packets: &[Packet], link_delay: SimDuration) -> Vec<PacketFate> {
    packets
        .iter()
        .map(|p| walk_packet(fib, p, link_delay))
        .collect()
}

/// Counters from one batched replay ([`walk_all_batched_stats`] /
/// [`walk_indexed_batch`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplayStats {
    /// Packets replayed.
    pub packets: u64,
    /// Packets whose fate was reconstructed from a memoized walk.
    pub memo_hits: u64,
    /// Walks actually executed (`packets - memo_hits`).
    pub walks: u64,
    /// Epoch boundaries (distinct FIB change instants) in the indexes
    /// the batch ran against.
    pub epochs: u64,
}

impl ReplayStats {
    /// Fraction of packets served from the memo, in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        if self.packets == 0 {
            0.0
        } else {
            self.memo_hits as f64 / self.packets as f64
        }
    }

    /// Folds another batch's counters into this one (all sums).
    pub fn merge(&mut self, other: &ReplayStats) {
        self.packets += other.packets;
        self.memo_hits += other.memo_hits;
        self.walks += other.walks;
        self.epochs += other.epochs;
    }
}

/// How a memoized walk ended; together with the step count this
/// reconstructs the exact [`PacketFate`] for any packet that provably
/// repeats the same trajectory.
#[derive(Debug, Clone, Copy)]
enum MemoEnd {
    Delivered,
    NoRoute(NodeId),
    TtlExhausted(NodeId),
}

/// A send-time-relative walk: `steps` hops of `link_delay` each, then
/// `end`. Valid for reuse only while the whole walk stays inside the
/// launch epoch (checked at lookup time against the epoch boundary).
#[derive(Debug, Clone, Copy)]
struct MemoWalk {
    steps: u32,
    end: MemoEnd,
}

impl MemoWalk {
    /// The fate of a packet whose walk ends at `at` (exactly
    /// `sent_at + steps × link_delay`, matching the naive walk's
    /// repeated `at += link_delay` in u64 nanoseconds).
    fn fate_at(&self, at: SimTime) -> PacketFate {
        match self.end {
            MemoEnd::Delivered => PacketFate::Delivered {
                at,
                hops: self.steps,
            },
            MemoEnd::NoRoute(node) => PacketFate::NoRoute { at, node },
            MemoEnd::TtlExhausted(node) => PacketFate::TtlExhausted { at, node },
        }
    }
}

/// Batched replay: like [`walk_all`] (identical fates, in order), but
/// through per-prefix [`EpochIndex`]es with single-epoch memoization.
///
/// See [`walk_indexed_batch`] for the mechanics. Packets are grouped
/// by prefix and each group gets its own index; callers that already
/// built an index (one per run in `bgpsim-metrics`) should use
/// [`walk_indexed_batch`] directly.
pub fn walk_all_batched(
    fib: &NetworkFib,
    packets: &[Packet],
    link_delay: SimDuration,
) -> Vec<PacketFate> {
    walk_all_batched_stats(fib, packets, link_delay).0
}

/// [`walk_all_batched`] plus the batch's [`ReplayStats`].
pub fn walk_all_batched_stats(
    fib: &NetworkFib,
    packets: &[Packet],
    link_delay: SimDuration,
) -> (Vec<PacketFate>, ReplayStats) {
    let mut groups: std::collections::BTreeMap<Prefix, Vec<usize>> =
        std::collections::BTreeMap::new();
    for (i, p) in packets.iter().enumerate() {
        groups.entry(p.prefix).or_default().push(i);
    }
    let mut fates: Vec<Option<PacketFate>> = vec![None; packets.len()];
    let mut stats = ReplayStats::default();
    for (prefix, mut order) in groups {
        let index = EpochIndex::build(fib, prefix);
        order.sort_by_key(|&i| packets[i].sent_at);
        walk_group(&index, packets, &order, link_delay, &mut fates, &mut stats);
    }
    let fates = fates
        .into_iter()
        .map(|f| f.expect("every packet is in exactly one prefix group"))
        .collect();
    (fates, stats)
}

/// Replays `packets` (all toward `index.prefix()`) against a prebuilt
/// [`EpochIndex`], returning fates in packet order plus the batch's
/// [`ReplayStats`].
///
/// Mechanics: packets are processed in send-time order behind one
/// monotone launch-epoch cursor; each executed walk advances its own
/// epoch cursor per hop (`O(1)` amortized — no per-hop binary search)
/// and does an `O(1)` table lookup. A walk that never leaves its
/// launch epoch is memoized under `(source, launch epoch, TTL)` as a
/// send-time-relative trajectory; a later packet with the same key
/// reuses it iff its reconstructed fate time still precedes the epoch
/// boundary — inside a frozen forwarding graph the trajectory is
/// provably identical, so the reconstructed fate is bit-identical to
/// what [`walk_packet`] would compute.
pub fn walk_indexed_batch(
    index: &EpochIndex,
    packets: &[Packet],
    link_delay: SimDuration,
) -> (Vec<PacketFate>, ReplayStats) {
    debug_assert!(
        packets.iter().all(|p| p.prefix == index.prefix()),
        "every packet must target the indexed prefix"
    );
    let mut order: Vec<usize> = (0..packets.len()).collect();
    order.sort_by_key(|&i| packets[i].sent_at);
    let mut fates: Vec<Option<PacketFate>> = vec![None; packets.len()];
    let mut stats = ReplayStats::default();
    walk_group(index, packets, &order, link_delay, &mut fates, &mut stats);
    let fates = fates
        .into_iter()
        .map(|f| f.expect("every packet was walked"))
        .collect();
    (fates, stats)
}

/// Replays one prefix group (`order` = packet indices sorted by send
/// time) through `index`, filling `fates` slots and accumulating
/// `stats`.
fn walk_group(
    index: &EpochIndex,
    packets: &[Packet],
    order: &[usize],
    link_delay: SimDuration,
    fates: &mut [Option<PacketFate>],
    stats: &mut ReplayStats,
) {
    let boundaries = index.boundaries();
    let changes = boundaries.len();
    stats.epochs += changes as u64;
    let mut memo: HashMap<(u32, u32, u32), MemoWalk> = HashMap::new();
    // Send times arrive sorted, so the launch epoch only moves forward.
    let mut launch = 0usize;
    for &i in order {
        let packet = &packets[i];
        while launch < changes && boundaries[launch] <= packet.sent_at {
            launch += 1;
        }
        stats.packets += 1;
        let key = (packet.src.as_u32(), launch as u32, packet.ttl);
        if let Some(walk) = memo.get(&key) {
            let fate_at = packet.sent_at + link_delay * u64::from(walk.steps);
            // Reusable iff the whole walk (last lookup happens at the
            // fate instant) precedes the next FIB change. Strict: a
            // lookup exactly at the boundary already sees the new
            // epoch.
            if launch == changes || fate_at < boundaries[launch] {
                stats.memo_hits += 1;
                fates[i] = Some(walk.fate_at(fate_at));
                continue;
            }
        }
        stats.walks += 1;
        let (fate, walk, single_epoch) = walk_indexed(index, packet, link_delay, launch as u32);
        if single_epoch {
            memo.insert(key, walk);
        }
        fates[i] = Some(fate);
    }
}

/// One full walk through the epoch table, starting from a known launch
/// epoch. Returns the fate, the send-time-relative [`MemoWalk`], and
/// whether the walk stayed inside its launch epoch (= memoizable).
fn walk_indexed(
    index: &EpochIndex,
    packet: &Packet,
    link_delay: SimDuration,
    launch_epoch: u32,
) -> (PacketFate, MemoWalk, bool) {
    let boundaries = index.boundaries();
    let changes = boundaries.len();
    let mut node = packet.src;
    let mut at = packet.sent_at;
    let mut ttl = packet.ttl;
    let mut steps = 0u32;
    let mut epoch = launch_epoch as usize;
    loop {
        // The hop times of one walk are nondecreasing, so this cursor
        // is monotone: O(1) amortized per hop.
        while epoch < changes && boundaries[epoch] <= at {
            epoch += 1;
        }
        match index.entry(node, epoch as u32) {
            Some(FibEntry::Local) => {
                let fate = PacketFate::Delivered { at, hops: steps };
                let walk = MemoWalk {
                    steps,
                    end: MemoEnd::Delivered,
                };
                return (fate, walk, epoch == launch_epoch as usize);
            }
            None => {
                let fate = PacketFate::NoRoute { at, node };
                let walk = MemoWalk {
                    steps,
                    end: MemoEnd::NoRoute(node),
                };
                return (fate, walk, epoch == launch_epoch as usize);
            }
            Some(FibEntry::Via(next)) => {
                if ttl == 0 {
                    let fate = PacketFate::TtlExhausted { at, node };
                    let walk = MemoWalk {
                        steps,
                        end: MemoEnd::TtlExhausted(node),
                    };
                    return (fate, walk, epoch == launch_epoch as usize);
                }
                ttl -= 1;
                steps += 1;
                at += link_delay;
                node = next;
            }
        }
    }
}

/// Generates the packets sent by `sources` in `[start, end)` toward
/// `prefix`, ids assigned in deterministic (source-major) order.
pub fn generate_packets(
    sources: &[crate::source::CbrSource],
    prefix: Prefix,
    ttl: u32,
    start: SimTime,
    end: SimTime,
) -> Vec<Packet> {
    let mut packets = Vec::new();
    let mut id = 0u64;
    for src in sources {
        for sent_at in src.send_times(start, end) {
            packets.push(Packet {
                id,
                src: src.node(),
                prefix,
                ttl,
                sent_at,
            });
            id += 1;
        }
    }
    packets
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::DEFAULT_TTL;
    use proptest::prelude::*;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn p() -> Prefix {
        Prefix::new(0)
    }

    fn d2() -> SimDuration {
        SimDuration::from_millis(2)
    }

    fn pkt(src: u32, at: SimTime) -> Packet {
        Packet {
            id: 0,
            src: n(src),
            prefix: p(),
            ttl: DEFAULT_TTL,
            sent_at: at,
        }
    }

    /// A 3-node chain 2 → 1 → 0 with stable routes.
    fn chain_fib() -> NetworkFib {
        let mut fib = NetworkFib::new(3);
        fib.record(n(0), p(), SimTime::ZERO, Some(FibEntry::Local));
        fib.record(n(1), p(), SimTime::ZERO, Some(FibEntry::Via(n(0))));
        fib.record(n(2), p(), SimTime::ZERO, Some(FibEntry::Via(n(1))));
        fib
    }

    #[test]
    fn delivery_counts_hops_and_delay() {
        let fib = chain_fib();
        let fate = walk_packet(&fib, &pkt(2, SimTime::from_secs(1)), d2());
        match fate {
            PacketFate::Delivered { at, hops } => {
                assert_eq!(hops, 2);
                assert_eq!(at, SimTime::from_millis(1004));
            }
            other => panic!("expected delivery, got {other:?}"),
        }
    }

    #[test]
    fn no_route_drops_at_first_routeless_node() {
        let mut fib = chain_fib();
        fib.record(n(1), p(), SimTime::from_secs(5), None);
        let fate = walk_packet(&fib, &pkt(2, SimTime::from_secs(6)), d2());
        match fate {
            PacketFate::NoRoute { node, .. } => assert_eq!(node, n(1)),
            other => panic!("expected no-route, got {other:?}"),
        }
    }

    #[test]
    fn two_node_loop_exhausts_ttl_at_256ms() {
        // The paper's Figure 1(b): 5 → 6 and 6 → 5.
        let mut fib = NetworkFib::new(7);
        fib.record(n(5), p(), SimTime::ZERO, Some(FibEntry::Via(n(6))));
        fib.record(n(6), p(), SimTime::ZERO, Some(FibEntry::Via(n(5))));
        let fate = walk_packet(&fib, &pkt(5, SimTime::from_secs(1)), d2());
        match fate {
            PacketFate::TtlExhausted { at, node } => {
                // 128 hops × 2 ms = 256 ms after send.
                assert_eq!(at, SimTime::from_millis(1256));
                assert!(node == n(5) || node == n(6));
            }
            other => panic!("expected TTL exhaustion, got {other:?}"),
        }
    }

    #[test]
    fn packet_escapes_loop_that_resolves_in_flight() {
        // Loop 5↔6 forms at t=0 and resolves at t=1.1: node 6 switches
        // to a working path via 0. A packet sent at t=1 loops briefly,
        // then escapes and is delivered — the "packets which encountered
        // and escaped a loop" case.
        let mut fib = NetworkFib::new(7);
        fib.record(n(0), p(), SimTime::ZERO, Some(FibEntry::Local));
        fib.record(n(5), p(), SimTime::ZERO, Some(FibEntry::Via(n(6))));
        fib.record(n(6), p(), SimTime::ZERO, Some(FibEntry::Via(n(5))));
        fib.record(
            n(6),
            p(),
            SimTime::from_millis(1100),
            Some(FibEntry::Via(n(0))),
        );
        let fate = walk_packet(&fib, &pkt(5, SimTime::from_secs(1)), d2());
        assert!(fate.is_delivered(), "got {fate:?}");
        if let PacketFate::Delivered { hops, .. } = fate {
            assert!(hops > 2, "must have circulated before escaping");
        }
    }

    #[test]
    fn source_with_no_route_drops_immediately() {
        let fib = NetworkFib::new(3);
        let fate = walk_packet(&fib, &pkt(2, SimTime::ZERO), d2());
        match fate {
            PacketFate::NoRoute { node, at } => {
                assert_eq!(node, n(2));
                assert_eq!(at, SimTime::ZERO);
            }
            other => panic!("expected no-route, got {other:?}"),
        }
    }

    #[test]
    fn trace_records_trajectory() {
        let fib = chain_fib();
        let mut trace = Vec::new();
        let _ = walk_packet_traced(&fib, &pkt(2, SimTime::ZERO), d2(), Some(&mut trace));
        let nodes: Vec<NodeId> = trace.iter().map(|h| h.node).collect();
        assert_eq!(nodes, vec![n(2), n(1), n(0)]);
        assert_eq!(trace[1].at, SimTime::from_millis(2));
    }

    #[test]
    fn zero_ttl_exhausts_before_any_hop() {
        let fib = chain_fib();
        let packet = Packet {
            ttl: 0,
            ..pkt(2, SimTime::ZERO)
        };
        assert!(walk_packet(&fib, &packet, d2()).is_ttl_exhausted());
    }

    #[test]
    fn generate_packets_is_deterministic_and_ordered() {
        use crate::source::CbrSource;
        let sources = vec![
            CbrSource::new(n(1), SimDuration::from_millis(100), SimDuration::ZERO),
            CbrSource::new(
                n(2),
                SimDuration::from_millis(100),
                SimDuration::from_millis(50),
            ),
        ];
        let pkts = generate_packets(
            &sources,
            p(),
            DEFAULT_TTL,
            SimTime::ZERO,
            SimTime::from_millis(300),
        );
        assert_eq!(pkts.len(), 6);
        // Ids are unique and source-major.
        let ids: Vec<u64> = pkts.iter().map(|pk| pk.id).collect();
        assert_eq!(ids, (0..6).collect::<Vec<_>>());
        assert!(pkts[..3].iter().all(|pk| pk.src == n(1)));
        assert!(pkts[3..].iter().all(|pk| pk.src == n(2)));
    }

    #[test]
    fn walk_all_matches_individual_walks() {
        let fib = chain_fib();
        let packets = vec![pkt(2, SimTime::ZERO), pkt(1, SimTime::from_secs(1))];
        let fates = walk_all(&fib, &packets, d2());
        assert_eq!(fates.len(), 2);
        assert_eq!(fates[0], walk_packet(&fib, &packets[0], d2()));
        assert_eq!(fates[1], walk_packet(&fib, &packets[1], d2()));
    }

    #[test]
    fn batched_matches_naive_on_chain() {
        let fib = chain_fib();
        let packets = vec![
            pkt(2, SimTime::ZERO),
            pkt(1, SimTime::from_secs(1)),
            pkt(2, SimTime::from_secs(2)),
        ];
        assert_eq!(
            walk_all_batched(&fib, &packets, d2()),
            walk_all(&fib, &packets, d2())
        );
    }

    #[test]
    fn memo_hits_repeat_packets_and_fates_stay_exact() {
        // Same source, same TTL, stable FIB: all but the first packet
        // must come from the memo, with bit-identical fates.
        let fib = chain_fib();
        let packets: Vec<Packet> = (0..50)
            .map(|i| pkt(2, SimTime::from_millis(10 * i)))
            .collect();
        let (fates, stats) = walk_all_batched_stats(&fib, &packets, d2());
        assert_eq!(fates, walk_all(&fib, &packets, d2()));
        assert_eq!(stats.packets, 50);
        assert_eq!(stats.walks, 1);
        assert_eq!(stats.memo_hits, 49);
        assert!((stats.hit_rate() - 0.98).abs() < 1e-9);
    }

    #[test]
    fn memo_is_not_reused_across_epoch_boundary() {
        // Node 1 loses its route at t=100ms. A packet sent just before
        // the boundary would cross it in flight, so the memoized
        // pre-boundary walk must NOT be replayed for it.
        let mut fib = chain_fib();
        fib.record(n(1), p(), SimTime::from_millis(100), None);
        let packets = vec![
            pkt(2, SimTime::ZERO),             // delivered, memoized
            pkt(2, SimTime::from_millis(99)),  // crosses boundary mid-walk
            pkt(2, SimTime::from_millis(200)), // post-boundary epoch
        ];
        let (fates, stats) = walk_all_batched_stats(&fib, &packets, d2());
        assert_eq!(fates, walk_all(&fib, &packets, d2()));
        assert!(fates[0].is_delivered());
        assert!(matches!(fates[1], PacketFate::NoRoute { .. }));
        assert!(matches!(fates[2], PacketFate::NoRoute { .. }));
        // The second packet shares the first's key but fails the
        // boundary check; the third launches in a new epoch.
        assert_eq!(stats.memo_hits, 0);
        assert_eq!(stats.walks, 3);
    }

    #[test]
    fn batched_preserves_input_order_across_unsorted_sends() {
        // Fates come back in packet order even though the batch is
        // internally processed in send-time order.
        let mut fib = chain_fib();
        fib.record(n(1), p(), SimTime::from_secs(5), None);
        let packets = vec![
            pkt(2, SimTime::from_secs(6)), // late packet first in input
            pkt(2, SimTime::ZERO),
            pkt(1, SimTime::from_secs(7)),
        ];
        let fates = walk_all_batched(&fib, &packets, d2());
        assert_eq!(fates, walk_all(&fib, &packets, d2()));
        assert!(matches!(fates[0], PacketFate::NoRoute { node, .. } if node == n(1)));
        assert!(fates[1].is_delivered());
        assert!(matches!(fates[2], PacketFate::NoRoute { node, .. } if node == n(1)));
    }

    #[test]
    fn batched_groups_multiple_prefixes() {
        let p1 = Prefix::new(1);
        let mut fib = chain_fib();
        // Prefix 1 has the reverse orientation: 0 → 1 → 2 (local at 2).
        fib.record(n(2), p1, SimTime::ZERO, Some(FibEntry::Local));
        fib.record(n(1), p1, SimTime::ZERO, Some(FibEntry::Via(n(2))));
        fib.record(n(0), p1, SimTime::ZERO, Some(FibEntry::Via(n(1))));
        let packets = vec![
            pkt(2, SimTime::ZERO),
            Packet {
                prefix: p1,
                ..pkt(0, SimTime::ZERO)
            },
        ];
        assert_eq!(
            walk_all_batched(&fib, &packets, d2()),
            walk_all(&fib, &packets, d2())
        );
    }

    #[test]
    fn empty_batch_is_fine() {
        let fib = chain_fib();
        let (fates, stats) = walk_all_batched_stats(&fib, &[], d2());
        assert!(fates.is_empty());
        assert_eq!(stats, ReplayStats::default());
    }

    #[test]
    fn replay_stats_merge_sums() {
        let mut a = ReplayStats {
            packets: 10,
            memo_hits: 4,
            walks: 6,
            epochs: 3,
        };
        let b = ReplayStats {
            packets: 2,
            memo_hits: 1,
            walks: 1,
            epochs: 5,
        };
        a.merge(&b);
        assert_eq!(
            a,
            ReplayStats {
                packets: 12,
                memo_hits: 5,
                walks: 7,
                epochs: 8,
            }
        );
        assert_eq!(ReplayStats::default().hit_rate(), 0.0);
    }

    /// Builds a random FIB history from `(node, dt, hop)` triples using
    /// per-node clocks (each history time-ordered, global interleaving
    /// arbitrary) — the same scheme as the loop-census proptests.
    fn random_fib(nodes: u32, raw: &[(u32, u32, Option<u32>)]) -> NetworkFib {
        let mut fib = NetworkFib::new(nodes as usize);
        let mut clock = vec![0u64; nodes as usize];
        for &(node, dt, hop) in raw {
            let node = node % nodes;
            let t = clock[node as usize] + u64::from(dt);
            clock[node as usize] = t;
            let entry = match hop.map(|h| h % nodes) {
                Some(h) if h != node => Some(FibEntry::Via(n(h))),
                Some(_) => Some(FibEntry::Local),
                None => None,
            };
            fib.record(n(node), p(), SimTime::from_nanos(t), entry);
        }
        fib
    }

    /// Maps raw `(src, sent_at, ttl)` triples into packets. Nanosecond
    /// send times against a 2 ns link delay and tiny TTLs make walks
    /// routinely straddle epoch boundaries, stressing both the cursor
    /// and the memo-validity check.
    fn random_packets(nodes: u32, raw: &[(u32, u64, u32)]) -> Vec<Packet> {
        raw.iter()
            .enumerate()
            .map(|(id, &(src, sent_at, ttl))| Packet {
                id: id as u64,
                src: n(src % nodes),
                prefix: p(),
                ttl: ttl % 12,
                sent_at: SimTime::from_nanos(sent_at),
            })
            .collect()
    }

    proptest! {
        /// Tentpole invariant (satellite b): the batched replay is
        /// fate-for-fate bit-identical to the naive per-packet oracle
        /// on random histories and random unsorted packet fleets.
        #[test]
        fn batched_equals_naive_on_random_histories(
            raw in proptest::collection::vec(
                (0u32..8, 0u32..20, proptest::option::of(0u32..8)), 0..60),
            pkts in proptest::collection::vec(
                (0u32..8, 0u64..200, 0u32..12), 0..40),
            nodes in 2u32..8,
        ) {
            let fib = random_fib(nodes, &raw);
            let packets = random_packets(nodes, &pkts);
            let delay = SimDuration::from_nanos(2);
            let naive = walk_all(&fib, &packets, delay);
            let (batched, stats) = walk_all_batched_stats(&fib, &packets, delay);
            prop_assert_eq!(&batched, &naive);
            prop_assert_eq!(stats.packets, packets.len() as u64);
            prop_assert_eq!(stats.walks + stats.memo_hits, stats.packets);
        }

        /// The sparse epoch-table layout replays identically to the
        /// dense one (the dense/sparse switch is purely a space trade).
        #[test]
        fn sparse_index_replays_like_dense(
            raw in proptest::collection::vec(
                (0u32..8, 0u32..20, proptest::option::of(0u32..8)), 0..60),
            pkts in proptest::collection::vec(
                (0u32..8, 0u64..200, 0u32..12), 0..40),
            nodes in 2u32..8,
        ) {
            let fib = random_fib(nodes, &raw);
            let packets = random_packets(nodes, &pkts);
            let delay = SimDuration::from_nanos(2);
            let dense = EpochIndex::build(&fib, p());
            // A zero cell cap forces the sparse per-node layout.
            let sparse = EpochIndex::build_with_cap(&fib, p(), 0);
            prop_assert!(dense.is_dense());
            prop_assert!(!sparse.is_dense());
            let (df, ds) = walk_indexed_batch(&dense, &packets, delay);
            let (sf, ss) = walk_indexed_batch(&sparse, &packets, delay);
            prop_assert_eq!(&df, &sf);
            prop_assert_eq!(ds, ss);
            prop_assert_eq!(df, walk_all(&fib, &packets, delay));
        }
    }
}
