//! Constant-bit-rate traffic sources.
//!
//! The study gives every non-destination AS a host sending a constant
//! 10 packets/s stream toward the destination (§4.1), deliberately slow
//! enough that congestion and queueing are negligible. Each source gets
//! a random phase offset so the fleet does not fire in lockstep.

use bgpsim_netsim::rng::SimRng;
use bgpsim_netsim::time::{SimDuration, SimTime};
use bgpsim_topology::NodeId;

/// A periodic packet source at one AS.
///
/// # Examples
///
/// ```
/// use bgpsim_dataplane::source::CbrSource;
/// use bgpsim_netsim::time::{SimDuration, SimTime};
/// use bgpsim_topology::NodeId;
///
/// let src = CbrSource::new(
///     NodeId::new(3),
///     SimDuration::from_millis(100),
///     SimDuration::from_millis(40),
/// );
/// let times: Vec<_> = src
///     .send_times(SimTime::ZERO, SimTime::from_millis(250))
///     .collect();
/// assert_eq!(times.len(), 3); // 40 ms, 140 ms, 240 ms
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CbrSource {
    node: NodeId,
    interval: SimDuration,
    phase: SimDuration,
}

impl CbrSource {
    /// Creates a source at `node` emitting every `interval`, offset by
    /// `phase` from the window start.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero or `phase >= interval`.
    pub fn new(node: NodeId, interval: SimDuration, phase: SimDuration) -> Self {
        assert!(!interval.is_zero(), "interval must be positive");
        assert!(
            phase < interval,
            "phase {phase} must be smaller than interval {interval}"
        );
        CbrSource {
            node,
            interval,
            phase,
        }
    }

    /// Creates a source with a random phase drawn from `rng`.
    pub fn with_random_phase(node: NodeId, interval: SimDuration, rng: &mut SimRng) -> Self {
        let phase = SimDuration::from_nanos(rng.index(interval.as_nanos() as usize) as u64);
        CbrSource::new(node, interval, phase)
    }

    /// The source's AS.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The inter-packet interval.
    pub fn interval(&self) -> SimDuration {
        self.interval
    }

    /// The send instants within `[start, end)`.
    pub fn send_times(&self, start: SimTime, end: SimTime) -> SendTimes {
        SendTimes {
            next: start + self.phase,
            interval: self.interval,
            end,
        }
    }
}

/// Iterator over a source's send instants. Created by
/// [`CbrSource::send_times`].
#[derive(Debug, Clone)]
pub struct SendTimes {
    next: SimTime,
    interval: SimDuration,
    end: SimTime,
}

impl Iterator for SendTimes {
    type Item = SimTime;

    fn next(&mut self) -> Option<SimTime> {
        if self.next >= self.end {
            return None;
        }
        let t = self.next;
        self.next = t + self.interval;
        Some(t)
    }
}

/// Builds the study's standard source fleet: one 10 pkt/s source per
/// node except the destination, each with a random phase.
pub fn paper_sources(node_count: usize, destination: NodeId, rng: &mut SimRng) -> Vec<CbrSource> {
    let interval = SimDuration::from_millis(100);
    (0..node_count as u32)
        .map(NodeId::new)
        .filter(|&n| n != destination)
        .map(|n| CbrSource::with_random_phase(n, interval, rng))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_times_are_periodic() {
        let s = CbrSource::new(
            NodeId::new(1),
            SimDuration::from_millis(100),
            SimDuration::ZERO,
        );
        let times: Vec<u64> = s
            .send_times(SimTime::from_secs(1), SimTime::from_millis(1350))
            .map(|t| t.as_nanos() / 1_000_000)
            .collect();
        assert_eq!(times, vec![1000, 1100, 1200, 1300]);
    }

    #[test]
    fn empty_window_yields_nothing() {
        let s = CbrSource::new(
            NodeId::new(1),
            SimDuration::from_millis(100),
            SimDuration::from_millis(50),
        );
        assert_eq!(s.send_times(SimTime::ZERO, SimTime::ZERO).count(), 0);
        assert_eq!(
            s.send_times(SimTime::ZERO, SimTime::from_millis(50))
                .count(),
            0,
            "phase pushes first packet past the window"
        );
    }

    #[test]
    fn rate_matches_window_length() {
        let s = CbrSource::new(
            NodeId::new(1),
            SimDuration::from_millis(100),
            SimDuration::from_millis(7),
        );
        let count = s.send_times(SimTime::ZERO, SimTime::from_secs(10)).count();
        assert_eq!(count, 100, "10 pkt/s for 10 s");
    }

    #[test]
    #[should_panic(expected = "phase")]
    fn phase_must_be_less_than_interval() {
        let _ = CbrSource::new(
            NodeId::new(1),
            SimDuration::from_millis(100),
            SimDuration::from_millis(100),
        );
    }

    #[test]
    fn random_phase_in_range() {
        let mut rng = SimRng::new(3);
        for _ in 0..100 {
            let s = CbrSource::with_random_phase(
                NodeId::new(1),
                SimDuration::from_millis(100),
                &mut rng,
            );
            assert!(s.phase < s.interval);
        }
    }

    #[test]
    fn paper_fleet_excludes_destination() {
        let mut rng = SimRng::new(4);
        let fleet = paper_sources(10, NodeId::new(3), &mut rng);
        assert_eq!(fleet.len(), 9);
        assert!(fleet.iter().all(|s| s.node() != NodeId::new(3)));
        assert!(fleet
            .iter()
            .all(|s| s.interval() == SimDuration::from_millis(100)));
    }

    #[test]
    fn deterministic_fleet_for_same_seed() {
        let a = paper_sources(8, NodeId::new(0), &mut SimRng::new(9));
        let b = paper_sources(8, NodeId::new(0), &mut SimRng::new(9));
        assert_eq!(a, b);
    }
}
