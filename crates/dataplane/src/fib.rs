//! Time-indexed forwarding tables.
//!
//! The control plane (BGP) and the data plane (packets) interact in one
//! direction only: routers update forwarding entries, packets read them.
//! Because the study deliberately avoids congestion (§4.2), packets
//! never influence routing, so the forwarding state can be recorded as a
//! piecewise-constant **history** during the control-plane run and
//! packets can be replayed against it afterwards — exactly equivalent to
//! interleaving them in one event loop, but far cheaper. (The
//! `bgpsim-sim` crate cross-validates this equivalence in tests.)

use bgpsim_core::{FibEntry, Prefix};
use bgpsim_netsim::time::SimTime;
use bgpsim_topology::NodeId;
use std::collections::BTreeMap;

/// The FIB deltas applied at one instant: the affected nodes in
/// ascending id order, each with the entry in effect afterwards.
pub type FibDeltas = Vec<(NodeId, Option<FibEntry>)>;

/// The forwarding history of one `(node, prefix)` pair: a list of
/// `(change time, new entry)` pairs in nondecreasing time order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FibHistory {
    changes: Vec<(SimTime, Option<FibEntry>)>,
}

impl FibHistory {
    /// Creates an empty history (no route at any time).
    pub fn new() -> Self {
        FibHistory::default()
    }

    /// Records a change at `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is earlier than the last recorded change.
    pub fn record(&mut self, time: SimTime, entry: Option<FibEntry>) {
        if let Some(&(last, _)) = self.changes.last() {
            assert!(
                time >= last,
                "FIB changes must be recorded in time order ({time} < {last})"
            );
        }
        self.changes.push((time, entry));
    }

    /// The entry in effect at `time` (the latest change at or before
    /// `time`), or `None` if no route was installed yet.
    pub fn at(&self, time: SimTime) -> Option<FibEntry> {
        // Find the last change with change-time <= time.
        match self.changes.partition_point(|&(t, _)| t <= time) {
            0 => None,
            i => self.changes[i - 1].1,
        }
    }

    /// The latest entry, regardless of time.
    pub fn current(&self) -> Option<FibEntry> {
        self.changes.last().and_then(|&(_, e)| e)
    }

    /// All recorded changes, in order.
    pub fn changes(&self) -> &[(SimTime, Option<FibEntry>)] {
        &self.changes
    }
}

/// Forwarding-table histories for a whole network.
///
/// # Examples
///
/// ```
/// use bgpsim_dataplane::fib::NetworkFib;
/// use bgpsim_core::{FibEntry, Prefix};
/// use bgpsim_netsim::time::SimTime;
/// use bgpsim_topology::NodeId;
///
/// let mut fib = NetworkFib::new(3);
/// let p = Prefix::new(0);
/// fib.record(NodeId::new(1), p, SimTime::ZERO, Some(FibEntry::Via(NodeId::new(0))));
/// assert_eq!(
///     fib.lookup(NodeId::new(1), p, SimTime::from_secs(5)),
///     Some(FibEntry::Via(NodeId::new(0)))
/// );
/// assert_eq!(fib.lookup(NodeId::new(2), p, SimTime::ZERO), None);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NetworkFib {
    nodes: Vec<BTreeMap<Prefix, FibHistory>>,
}

impl NetworkFib {
    /// Creates histories for `n` nodes.
    pub fn new(n: usize) -> Self {
        NetworkFib {
            nodes: vec![BTreeMap::new(); n],
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Records that `node`'s entry for `prefix` changed at `time`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range or time order is violated for
    /// that `(node, prefix)`.
    pub fn record(&mut self, node: NodeId, prefix: Prefix, time: SimTime, entry: Option<FibEntry>) {
        self.nodes[node.index()]
            .entry(prefix)
            .or_default()
            .record(time, entry);
    }

    /// The entry in effect for `(node, prefix)` at `time`.
    pub fn lookup(&self, node: NodeId, prefix: Prefix, time: SimTime) -> Option<FibEntry> {
        self.nodes[node.index()]
            .get(&prefix)
            .and_then(|h| h.at(time))
    }

    /// The latest entry for `(node, prefix)`.
    pub fn current(&self, node: NodeId, prefix: Prefix) -> Option<FibEntry> {
        self.nodes[node.index()]
            .get(&prefix)
            .and_then(|h| h.current())
    }

    /// A full next-hop snapshot for `prefix` at `time`: element `i` is
    /// node `i`'s entry.
    pub fn snapshot(&self, prefix: Prefix, time: SimTime) -> Vec<Option<FibEntry>> {
        (0..self.nodes.len())
            .map(|i| self.lookup(NodeId::new(i as u32), prefix, time))
            .collect()
    }

    /// All change times for `prefix` across all nodes, sorted and
    /// deduplicated — the instants at which the forwarding graph
    /// changes shape.
    pub fn change_times(&self, prefix: Prefix) -> Vec<SimTime> {
        let mut times: Vec<SimTime> = self
            .nodes
            .iter()
            .filter_map(|m| m.get(&prefix))
            .flat_map(|h| h.changes().iter().map(|&(t, _)| t))
            .collect();
        times.sort();
        times.dedup();
        times
    }

    /// All changes for `prefix` grouped by change time, in time order.
    ///
    /// Each group lists the affected nodes in ascending id order with
    /// the entry in effect *after* that instant — when a node records
    /// several changes at the same time, only the last write survives
    /// (matching [`FibHistory::at`] semantics). This is the delta stream
    /// the incremental loop census consumes: it tells the scanner which
    /// next-hop edges moved at each instant without materializing a full
    /// snapshot.
    pub fn changes_by_time(&self, prefix: Prefix) -> Vec<(SimTime, FibDeltas)> {
        let mut grouped: BTreeMap<SimTime, BTreeMap<u32, Option<FibEntry>>> = BTreeMap::new();
        for (i, m) in self.nodes.iter().enumerate() {
            if let Some(h) = m.get(&prefix) {
                for &(t, e) in h.changes() {
                    // Per-node changes are time-ordered, so a later
                    // same-instant write overwrites an earlier one.
                    grouped.entry(t).or_default().insert(i as u32, e);
                }
            }
        }
        grouped
            .into_iter()
            .map(|(t, per_node)| {
                let deltas = per_node
                    .into_iter()
                    .map(|(i, e)| (NodeId::new(i), e))
                    .collect();
                (t, deltas)
            })
            .collect()
    }

    /// Builds the per-prefix [`EpochIndex`](crate::epoch::EpochIndex)
    /// over this history: the sorted change instants plus an `O(1)`
    /// `(node, epoch)` entry table. Built once per run by the
    /// measurement pipeline, it backs the batched packet replay and
    /// shares its delta stream with the incremental loop census.
    pub fn epoch_index(&self, prefix: Prefix) -> crate::epoch::EpochIndex {
        crate::epoch::EpochIndex::build(self, prefix)
    }

    /// Iterates over every `(node, prefix, time, entry)` change in
    /// per-node order (not globally time-sorted).
    pub fn iter_changes(
        &self,
    ) -> impl Iterator<Item = (NodeId, Prefix, SimTime, Option<FibEntry>)> + '_ {
        self.nodes.iter().enumerate().flat_map(|(i, m)| {
            m.iter().flat_map(move |(&prefix, h)| {
                h.changes()
                    .iter()
                    .map(move |&(t, e)| (NodeId::new(i as u32), prefix, t, e))
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn p() -> Prefix {
        Prefix::new(0)
    }

    #[test]
    fn empty_history_has_no_route() {
        let h = FibHistory::new();
        assert_eq!(h.at(SimTime::from_secs(100)), None);
        assert_eq!(h.current(), None);
    }

    #[test]
    fn lookup_finds_latest_change_at_or_before() {
        let mut h = FibHistory::new();
        h.record(SimTime::from_secs(1), Some(FibEntry::Via(n(1))));
        h.record(SimTime::from_secs(5), Some(FibEntry::Via(n(2))));
        h.record(SimTime::from_secs(9), None);
        assert_eq!(h.at(SimTime::ZERO), None, "before first change");
        assert_eq!(h.at(SimTime::from_secs(1)), Some(FibEntry::Via(n(1))));
        assert_eq!(h.at(SimTime::from_secs(4)), Some(FibEntry::Via(n(1))));
        assert_eq!(h.at(SimTime::from_secs(5)), Some(FibEntry::Via(n(2))));
        assert_eq!(h.at(SimTime::from_secs(9)), None, "route lost");
        assert_eq!(h.at(SimTime::from_secs(100)), None);
        assert_eq!(h.current(), None);
    }

    #[test]
    fn same_instant_changes_apply_last_writer() {
        let mut h = FibHistory::new();
        h.record(SimTime::from_secs(1), Some(FibEntry::Via(n(1))));
        h.record(SimTime::from_secs(1), Some(FibEntry::Via(n(2))));
        assert_eq!(h.at(SimTime::from_secs(1)), Some(FibEntry::Via(n(2))));
    }

    #[test]
    #[should_panic(expected = "time order")]
    fn out_of_order_record_panics() {
        let mut h = FibHistory::new();
        h.record(SimTime::from_secs(5), None);
        h.record(SimTime::from_secs(1), None);
    }

    #[test]
    fn network_fib_snapshot() {
        let mut fib = NetworkFib::new(3);
        fib.record(n(1), p(), SimTime::from_secs(1), Some(FibEntry::Via(n(0))));
        fib.record(n(2), p(), SimTime::from_secs(2), Some(FibEntry::Via(n(1))));
        fib.record(n(0), p(), SimTime::ZERO, Some(FibEntry::Local));
        let snap = fib.snapshot(p(), SimTime::from_secs(1));
        assert_eq!(
            snap,
            vec![
                Some(FibEntry::Local),
                Some(FibEntry::Via(n(0))),
                None, // node 2's entry starts at t=2
            ]
        );
    }

    #[test]
    fn change_times_are_sorted_unique() {
        let mut fib = NetworkFib::new(2);
        fib.record(n(0), p(), SimTime::from_secs(3), None);
        fib.record(n(1), p(), SimTime::from_secs(1), None);
        fib.record(n(1), p(), SimTime::from_secs(3), None);
        assert_eq!(
            fib.change_times(p()),
            vec![SimTime::from_secs(1), SimTime::from_secs(3)]
        );
    }

    #[test]
    fn changes_by_time_groups_and_keeps_last_write() {
        let mut fib = NetworkFib::new(3);
        fib.record(n(0), p(), SimTime::ZERO, Some(FibEntry::Local));
        fib.record(n(2), p(), SimTime::from_secs(1), Some(FibEntry::Via(n(1))));
        fib.record(n(1), p(), SimTime::from_secs(1), Some(FibEntry::Via(n(0))));
        // Same-instant double write: the second entry wins.
        fib.record(n(1), p(), SimTime::from_secs(2), Some(FibEntry::Via(n(2))));
        fib.record(n(1), p(), SimTime::from_secs(2), None);
        let grouped = fib.changes_by_time(p());
        assert_eq!(
            grouped,
            vec![
                (SimTime::ZERO, vec![(n(0), Some(FibEntry::Local))]),
                (
                    SimTime::from_secs(1),
                    vec![
                        (n(1), Some(FibEntry::Via(n(0)))),
                        (n(2), Some(FibEntry::Via(n(1)))),
                    ]
                ),
                (SimTime::from_secs(2), vec![(n(1), None)]),
            ]
        );
    }

    #[test]
    fn iter_changes_covers_everything() {
        let mut fib = NetworkFib::new(2);
        fib.record(n(0), p(), SimTime::ZERO, Some(FibEntry::Local));
        fib.record(n(1), p(), SimTime::from_secs(1), Some(FibEntry::Via(n(0))));
        assert_eq!(fib.iter_changes().count(), 2);
    }
}
