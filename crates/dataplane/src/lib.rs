//! # bgpsim-dataplane
//!
//! The packet-forwarding plane for the `bgpsim` BGP route-looping study
//! (ICDCS 2004 reproduction): CBR traffic sources, time-indexed
//! forwarding tables, a hop-by-hop packet replay engine with TTL
//! accounting, and a forwarding-loop scanner.
//!
//! ## Design
//!
//! The study runs the data plane at a rate low enough that congestion
//! never occurs (§4.2), so packets never influence routing. That makes
//! the coupling one-directional: the control-plane simulation records
//! each node's FIB changes as a piecewise-constant history
//! ([`fib::NetworkFib`]), and packets are *replayed* against it
//! ([`replay::walk_packet`]) — hop timings, in-flight table changes and
//! TTL exhaustion all behave exactly as in a fully interleaved
//! simulation, at a fraction of the cost. The `bgpsim-sim` crate
//! contains an event-driven forwarder used to cross-validate the
//! equivalence.
//!
//! Production measurement replays whole fleets through the
//! [`epoch::EpochIndex`]: the prefix's FIB history is cut into
//! *epochs* at its change instants, walks read an `O(1)`
//! `(node, epoch)` table behind monotone cursors instead of doing a
//! per-hop binary search, and walks confined to one epoch are memoized
//! per `(source, epoch, TTL)` ([`replay::walk_all_batched`]). Fates
//! are bit-identical to the per-packet walk (property-tested); the
//! same index hands its change stream to the loop census
//! ([`loopscan::loop_census_deltas`]) so one pass serves both.
//!
//! ## Example
//!
//! ```
//! use bgpsim_dataplane::prelude::*;
//! use bgpsim_core::{FibEntry, Prefix};
//! use bgpsim_netsim::time::{SimDuration, SimTime};
//! use bgpsim_topology::NodeId;
//!
//! // A two-node forwarding loop (paper Figure 1(b)).
//! let p = Prefix::new(0);
//! let mut fib = NetworkFib::new(2);
//! fib.record(NodeId::new(0), p, SimTime::ZERO, Some(FibEntry::Via(NodeId::new(1))));
//! fib.record(NodeId::new(1), p, SimTime::ZERO, Some(FibEntry::Via(NodeId::new(0))));
//!
//! let pkt = Packet { id: 0, src: NodeId::new(0), prefix: p, ttl: DEFAULT_TTL, sent_at: SimTime::ZERO };
//! let fate = walk_packet(&fib, &pkt, SimDuration::from_millis(2));
//! assert!(fate.is_ttl_exhausted());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod epoch;
pub mod fib;
pub mod loopscan;
pub mod packet;
pub mod replay;
pub mod source;

pub use epoch::EpochIndex;
pub use fib::{FibDeltas, FibHistory, NetworkFib};
pub use loopscan::{find_loops, loop_census, loop_census_deltas, loop_census_full, LoopRecord};
pub use packet::{Packet, PacketFate, DEFAULT_TTL};
pub use replay::{
    generate_packets, walk_all, walk_all_batched, walk_all_batched_stats, walk_indexed_batch,
    walk_packet, walk_packet_traced, ReplayStats,
};
pub use source::{paper_sources, CbrSource};

/// Commonly used types, for glob import.
pub mod prelude {
    pub use crate::epoch::EpochIndex;
    pub use crate::fib::{FibDeltas, FibHistory, NetworkFib};
    pub use crate::loopscan::{
        find_loops, loop_census, loop_census_deltas, loop_census_full, LoopRecord,
    };
    pub use crate::packet::{Packet, PacketFate, DEFAULT_TTL};
    pub use crate::replay::{
        generate_packets, walk_all, walk_all_batched, walk_all_batched_stats, walk_indexed_batch,
        walk_packet, walk_packet_traced, ReplayStats,
    };
    pub use crate::source::{paper_sources, CbrSource};
}
