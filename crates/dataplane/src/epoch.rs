//! Epoch-indexed forwarding history.
//!
//! A run's FIB history for one prefix changes only at finitely many
//! instants. Sorting those instants once yields **epochs**: half-open
//! intervals `[uₑ₋₁, uₑ)` inside which the whole forwarding graph is
//! frozen. [`EpochIndex`] materializes that view — the sorted change
//! instants plus an `O(1)` `(node, epoch) → entry` table — so the
//! packet-replay engine can replace one binary search per hop
//! ([`FibHistory::at`](crate::fib::FibHistory::at)) with a monotone
//! epoch cursor, and so batched walks can be memoized per launch epoch
//! (see [`walk_all_batched`](crate::replay::walk_all_batched)).
//!
//! The index owns the same grouped delta stream
//! ([`NetworkFib::changes_by_time`]) that the incremental loop census
//! consumes, so one pass over the FIB history serves both the census
//! and the replay (`bgpsim-metrics` builds the index once per run).
//!
//! # Epoch numbering
//!
//! With `E` distinct change instants `u₁ < … < u_E`, there are `E + 1`
//! epochs: epoch `0` covers `(-∞, u₁)` where no entry is installed,
//! and epoch `e ≥ 1` covers `[uₑ, uₑ₊₁)` (the last one unbounded).
//! Equivalently, `epoch(t)` is the number of change instants `≤ t` —
//! matching the "latest change at or before `t`" lookup rule of
//! [`FibHistory::at`](crate::fib::FibHistory::at), so for every node
//! and time, `entry(node, epoch(t)) == fib.lookup(node, prefix, t)`
//! (property-tested below).

use bgpsim_core::{FibEntry, Prefix};
use bgpsim_netsim::time::SimTime;
use bgpsim_topology::NodeId;

use crate::fib::{FibDeltas, NetworkFib};

/// Above this many table cells (`epochs × nodes`), [`EpochIndex`]
/// falls back from the dense snapshot table to per-node sparse change
/// lists. 2²² `Option<FibEntry>` cells is ~32 MiB — far beyond any
/// paper-scale run, but huge flap-train histories stay safe.
pub const DENSE_CELL_CAP: usize = 1 << 22;

/// The `(node, epoch) → entry` storage. Dense is one epoch-major
/// snapshot table (`O(1)` lookup, cache-friendly within an epoch);
/// sparse keeps each node's `(first-epoch, entry)` change list and
/// binary-searches it (used only above [`DENSE_CELL_CAP`]).
#[derive(Debug, Clone)]
enum Table {
    Dense(Vec<Option<FibEntry>>),
    Sparse(Vec<Vec<(u32, Option<FibEntry>)>>),
}

/// A per-prefix interval index over a recorded FIB history: the sorted
/// change instants (epoch boundaries), the grouped delta stream, and a
/// constant-time `(node, epoch)` entry table.
#[derive(Debug, Clone)]
pub struct EpochIndex {
    prefix: Prefix,
    node_count: usize,
    /// Distinct change instants, ascending: `times[e-1]` starts epoch
    /// `e`, and epoch `e` ends just before `times[e]`.
    times: Vec<SimTime>,
    /// The grouped last-writer-wins delta stream the index was built
    /// from — shared with the incremental loop census.
    deltas: Vec<(SimTime, FibDeltas)>,
    table: Table,
}

impl EpochIndex {
    /// Builds the index for `prefix` from a recorded history, using the
    /// dense table up to [`DENSE_CELL_CAP`] cells.
    pub fn build(fib: &NetworkFib, prefix: Prefix) -> Self {
        Self::build_with_cap(fib, prefix, DENSE_CELL_CAP)
    }

    /// [`build`](Self::build) with an explicit dense-table cell cap
    /// (`0` forces the sparse fallback; exposed for tests and benches).
    pub fn build_with_cap(fib: &NetworkFib, prefix: Prefix, dense_cell_cap: usize) -> Self {
        let deltas = fib.changes_by_time(prefix);
        let n = fib.node_count();
        let times: Vec<SimTime> = deltas.iter().map(|&(t, _)| t).collect();
        let epochs = times.len() + 1;
        let table = if epochs.saturating_mul(n) <= dense_cell_cap {
            // Column e is the full snapshot in effect during epoch e;
            // column 0 (before any change) is all-None.
            let mut entries: Vec<Option<FibEntry>> = vec![None; epochs * n];
            let mut current: Vec<Option<FibEntry>> = vec![None; n];
            for (e, (_, ds)) in deltas.iter().enumerate() {
                for &(node, entry) in ds {
                    current[node.index()] = entry;
                }
                entries[(e + 1) * n..(e + 2) * n].copy_from_slice(&current);
            }
            Table::Dense(entries)
        } else {
            let mut per_node: Vec<Vec<(u32, Option<FibEntry>)>> = vec![Vec::new(); n];
            for (e, (_, ds)) in deltas.iter().enumerate() {
                for &(node, entry) in ds {
                    let list = &mut per_node[node.index()];
                    // Skip recorded writes that didn't change the value
                    // so each list stays minimal.
                    if list.last().map(|&(_, prev)| prev) != Some(entry) {
                        list.push(((e + 1) as u32, entry));
                    }
                }
            }
            Table::Sparse(per_node)
        };
        EpochIndex {
            prefix,
            node_count: n,
            times,
            deltas,
            table,
        }
    }

    /// The prefix this index covers.
    pub fn prefix(&self) -> Prefix {
        self.prefix
    }

    /// Number of nodes in the indexed history.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// The epoch boundaries: distinct change instants, ascending.
    /// Epoch `e ≥ 1` starts at `boundaries()[e - 1]` and ends just
    /// before `boundaries()[e]` (the last epoch is unbounded).
    pub fn boundaries(&self) -> &[SimTime] {
        &self.times
    }

    /// Number of epochs (`boundaries().len() + 1`, counting the
    /// initial empty epoch 0).
    pub fn epoch_count(&self) -> usize {
        self.times.len() + 1
    }

    /// The epoch in effect at `t`: the number of change instants `≤ t`.
    pub fn epoch_of(&self, t: SimTime) -> u32 {
        self.times.partition_point(|&u| u <= t) as u32
    }

    /// The entry in effect for `node` during `epoch`.
    ///
    /// # Panics
    ///
    /// Panics if `node` or `epoch` is out of range (exactly as
    /// [`NetworkFib::lookup`] panics on an out-of-range node).
    #[inline]
    pub fn entry(&self, node: NodeId, epoch: u32) -> Option<FibEntry> {
        let i = node.index();
        assert!(i < self.node_count, "node {node} out of range");
        match &self.table {
            Table::Dense(entries) => entries[epoch as usize * self.node_count + i],
            Table::Sparse(per_node) => {
                let list = &per_node[i];
                match list.partition_point(|&(e, _)| e <= epoch) {
                    0 => None,
                    k => list[k - 1].1,
                }
            }
        }
    }

    /// Time-based lookup through the index:
    /// `entry(node, epoch_of(t))`. Equivalent to
    /// [`NetworkFib::lookup`]; the replay hot path uses
    /// [`entry`](Self::entry) with a monotone cursor instead.
    pub fn lookup(&self, node: NodeId, t: SimTime) -> Option<FibEntry> {
        self.entry(node, self.epoch_of(t))
    }

    /// The grouped delta stream the index was built from — the same
    /// `(instant, last-writer-wins deltas)` sequence as
    /// [`NetworkFib::changes_by_time`], reusable for the incremental
    /// loop census without a second pass over the history.
    pub fn deltas(&self) -> &[(SimTime, FibDeltas)] {
        &self.deltas
    }

    /// Runs the incremental loop census over the owned delta stream
    /// (identical output to
    /// [`loop_census`](crate::loopscan::loop_census) on the source
    /// history).
    pub fn loop_census(&self) -> Vec<crate::loopscan::LoopRecord> {
        crate::loopscan::loop_census_deltas(self.node_count, &self.deltas)
    }

    /// Whether the dense snapshot table is in use (as opposed to the
    /// sparse per-node fallback).
    pub fn is_dense(&self) -> bool {
        matches!(self.table, Table::Dense(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn p() -> Prefix {
        Prefix::new(0)
    }

    fn via(i: u32) -> Option<FibEntry> {
        Some(FibEntry::Via(n(i)))
    }

    fn sample_fib() -> NetworkFib {
        let mut fib = NetworkFib::new(3);
        fib.record(n(0), p(), SimTime::from_secs(1), Some(FibEntry::Local));
        fib.record(n(1), p(), SimTime::from_secs(1), via(0));
        fib.record(n(2), p(), SimTime::from_secs(2), via(1));
        fib.record(n(1), p(), SimTime::from_secs(5), None);
        fib
    }

    #[test]
    fn epoch_numbering_counts_changes_at_or_before() {
        let index = EpochIndex::build(&sample_fib(), p());
        assert_eq!(index.epoch_count(), 4);
        assert_eq!(
            index.boundaries(),
            &[
                SimTime::from_secs(1),
                SimTime::from_secs(2),
                SimTime::from_secs(5)
            ]
        );
        assert_eq!(index.epoch_of(SimTime::ZERO), 0);
        assert_eq!(
            index.epoch_of(SimTime::from_secs(1)),
            1,
            "boundary inclusive"
        );
        assert_eq!(index.epoch_of(SimTime::from_millis(1500)), 1);
        assert_eq!(index.epoch_of(SimTime::from_secs(2)), 2);
        assert_eq!(index.epoch_of(SimTime::from_secs(100)), 3);
    }

    #[test]
    fn entries_match_direct_lookup() {
        let fib = sample_fib();
        let index = EpochIndex::build(&fib, p());
        assert!(index.is_dense());
        for t in [0u64, 1, 2, 3, 5, 9] {
            let t = SimTime::from_secs(t);
            for i in 0..3 {
                assert_eq!(
                    index.lookup(n(i), t),
                    fib.lookup(n(i), p(), t),
                    "node {i} at {t}"
                );
            }
        }
        assert_eq!(index.entry(n(1), 0), None, "epoch 0 predates every entry");
        assert_eq!(index.entry(n(1), 1), via(0));
        assert_eq!(index.entry(n(1), 3), None, "route lost in the last epoch");
    }

    #[test]
    fn sparse_fallback_agrees_with_dense() {
        let fib = sample_fib();
        let dense = EpochIndex::build(&fib, p());
        let sparse = EpochIndex::build_with_cap(&fib, p(), 0);
        assert!(!sparse.is_dense());
        for e in 0..dense.epoch_count() as u32 {
            for i in 0..3 {
                assert_eq!(dense.entry(n(i), e), sparse.entry(n(i), e));
            }
        }
        assert_eq!(dense.boundaries(), sparse.boundaries());
    }

    #[test]
    fn deltas_are_the_census_stream() {
        let fib = sample_fib();
        let index = EpochIndex::build(&fib, p());
        assert_eq!(index.deltas(), &fib.changes_by_time(p())[..]);
        assert_eq!(index.loop_census(), crate::loopscan::loop_census(&fib, p()));
    }

    #[test]
    fn empty_history_has_one_epoch() {
        let fib = NetworkFib::new(4);
        let index = EpochIndex::build(&fib, p());
        assert_eq!(index.epoch_count(), 1);
        assert_eq!(index.epoch_of(SimTime::from_secs(7)), 0);
        assert_eq!(index.entry(n(3), 0), None);
    }

    proptest! {
        /// For every node and instant, the epoch-indexed lookup equals
        /// the direct time-indexed history lookup — on both table
        /// layouts.
        #[test]
        fn lookup_equivalence_on_random_histories(
            raw in proptest::collection::vec(
                (0u32..8, 0u32..10, proptest::option::of(0u32..8)), 0..50),
            nodes in 2u32..8,
            probes in proptest::collection::vec(0u64..60, 1..40),
        ) {
            let mut fib = NetworkFib::new(nodes as usize);
            let mut clock = vec![0u64; nodes as usize];
            for (node, dt, hop) in raw {
                let node = node % nodes;
                let t = clock[node as usize] + u64::from(dt);
                clock[node as usize] = t;
                let entry = match hop.map(|h| h % nodes) {
                    Some(h) if h != node => via(h),
                    Some(_) => Some(FibEntry::Local),
                    None => None,
                };
                fib.record(n(node), p(), SimTime::from_nanos(t), entry);
            }
            let dense = EpochIndex::build(&fib, p());
            let sparse = EpochIndex::build_with_cap(&fib, p(), 0);
            prop_assert!(dense.is_dense());
            for t in probes {
                let t = SimTime::from_nanos(t);
                for i in 0..nodes {
                    let reference = fib.lookup(n(i), p(), t);
                    prop_assert_eq!(dense.lookup(n(i), t), reference);
                    prop_assert_eq!(sparse.lookup(n(i), t), reference);
                }
            }
        }
    }
}
