//! Forwarding-loop detection.
//!
//! For one prefix, the next-hop entries of all nodes form a *functional
//! graph* (out-degree ≤ 1), so every forwarding loop is a simple cycle
//! and can be found in `O(n)` by walking with visit colors.
//!
//! [`loop_census`] goes further and tracks loop **lifetimes** across the
//! recorded FIB history — the per-loop size/duration statistics the
//! paper lists as future work (§6), provided here as an extension.

use bgpsim_core::{FibEntry, Prefix};
use bgpsim_netsim::time::SimTime;
use bgpsim_topology::NodeId;
use bgpsim_trace::{TraceEvent, TraceHandle};
use std::collections::{BTreeMap, HashMap};

use crate::fib::NetworkFib;

/// Finds all forwarding loops in a next-hop snapshot.
///
/// Each loop is returned in canonical form: the cycle's nodes in
/// traversal order, rotated so the smallest id comes first. Loops are
/// sorted by their smallest member.
///
/// # Examples
///
/// ```
/// use bgpsim_dataplane::loopscan::find_loops;
/// use bgpsim_core::FibEntry;
/// use bgpsim_topology::NodeId;
///
/// // 5 → 6 → 5 (the paper's Figure 1(b) loop), 0 local, others empty.
/// let n = NodeId::new;
/// let snapshot = vec![
///     Some(FibEntry::Local),              // 0
///     None,                               // 1
///     None,                               // 2
///     None,                               // 3
///     None,                               // 4
///     Some(FibEntry::Via(n(6))),          // 5
///     Some(FibEntry::Via(n(5))),          // 6
/// ];
/// let loops = find_loops(&snapshot);
/// assert_eq!(loops, vec![vec![n(5), n(6)]]);
/// ```
pub fn find_loops(snapshot: &[Option<FibEntry>]) -> Vec<Vec<NodeId>> {
    #[derive(Clone, Copy, PartialEq)]
    enum Color {
        White,
        InProgress(u32), // walk id
        Done,
    }
    let n = snapshot.len();
    let next = |i: usize| -> Option<usize> {
        match snapshot[i] {
            Some(FibEntry::Via(v)) => Some(v.index()),
            _ => None,
        }
    };
    let mut color = vec![Color::White; n];
    let mut loops = Vec::new();
    for start in 0..n {
        if color[start] != Color::White {
            continue;
        }
        let walk_id = start as u32;
        let mut trail: Vec<usize> = Vec::new();
        let mut cur = start;
        loop {
            match color[cur] {
                Color::Done => break,
                Color::InProgress(w) if w == walk_id => {
                    // Found a new cycle: the suffix of the trail from
                    // `cur`.
                    let pos = trail
                        .iter()
                        .position(|&x| x == cur)
                        .expect("cycle node must be on the current trail");
                    let cycle: Vec<usize> = trail[pos..].to_vec();
                    loops.push(canonicalize(&cycle));
                    break;
                }
                Color::InProgress(_) => break, // joined an older walk
                Color::White => {
                    color[cur] = Color::InProgress(walk_id);
                    trail.push(cur);
                    match next(cur) {
                        Some(nx) if nx < n => cur = nx,
                        _ => break, // sink (local, no route, or dangling)
                    }
                }
            }
        }
        for &i in &trail {
            color[i] = Color::Done;
        }
    }
    loops.sort_by_key(|c| c[0]);
    loops
}

fn canonicalize(cycle: &[usize]) -> Vec<NodeId> {
    let min_pos = cycle
        .iter()
        .enumerate()
        .min_by_key(|&(_, &v)| v)
        .map(|(i, _)| i)
        .expect("cycles are non-empty");
    cycle[min_pos..]
        .iter()
        .chain(cycle[..min_pos].iter())
        .map(|&i| NodeId::new(i as u32))
        .collect()
}

/// One observed forwarding loop with its lifetime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoopRecord {
    /// The cycle in canonical order (smallest id first).
    pub nodes: Vec<NodeId>,
    /// When the loop appeared in the forwarding graph.
    pub formed_at: SimTime,
    /// When it disappeared (`None` if still present at the end of the
    /// history).
    pub resolved_at: Option<SimTime>,
}

impl LoopRecord {
    /// Number of nodes in the loop.
    pub fn size(&self) -> usize {
        self.nodes.len()
    }

    /// The loop's lifetime, if it resolved.
    pub fn duration(&self) -> Option<bgpsim_netsim::time::SimDuration> {
        self.resolved_at.map(|r| r - self.formed_at)
    }
}

/// Scans a FIB history and reports every loop's birth and death — the
/// per-loop census the paper proposes as future work.
///
/// A loop is identified by its canonical node cycle; if the same cycle
/// disappears and later re-forms, two records are produced.
///
/// The scan is **incremental**: instead of re-walking all `n` nodes at
/// every FIB change time (as [`loop_census_full`] does), it maintains
/// the current next-hop graph and, at each instant, re-walks only from
/// the *dirty* nodes — those whose next hop actually moved. This is
/// sound because the forwarding graph is functional (out-degree ≤ 1):
///
/// * a live cycle dies **iff** one of its members is dirty (its exact
///   edge sequence is otherwise intact), and
/// * any newly formed cycle contains a changed edge, hence a dirty
///   node, so the walk started at that node traverses the whole cycle.
///
/// The first instant is naturally a "full" scan: the graph starts empty
/// and every initial edge arrives as a dirty delta. Produces exactly
/// the records of [`loop_census_full`] (property-tested below).
pub fn loop_census(fib: &NetworkFib, prefix: Prefix) -> Vec<LoopRecord> {
    loop_census_deltas(fib.node_count(), &fib.changes_by_time(prefix))
}

/// [`loop_census`] over an already-materialized delta stream (the
/// `(instant, last-writer-wins deltas)` groups of
/// [`NetworkFib::changes_by_time`]).
///
/// The epoch-indexed replay layer builds the same stream once per run
/// ([`EpochIndex::deltas`](crate::epoch::EpochIndex::deltas)); taking
/// it borrowed here lets the census and the packet replay share that
/// single pass over the FIB history.
pub fn loop_census_deltas(
    node_count: usize,
    stream: &[(SimTime, crate::fib::FibDeltas)],
) -> Vec<LoopRecord> {
    let n = node_count;
    // Current next-hop edge per node; out-of-range and non-Via entries
    // are sinks, exactly as in `find_loops`.
    let mut next: Vec<Option<usize>> = vec![None; n];
    // Epoch-stamped walk state reused across instants: a slot is only
    // meaningful when its stamp equals the current epoch, so resetting
    // costs one counter bump instead of an O(n) clear.
    let mut seen_epoch = vec![0u64; n];
    let mut seen_walk = vec![0u32; n];
    let mut done_epoch = vec![0u64; n];
    let mut epoch = 0u64;

    let mut live: BTreeMap<Vec<NodeId>, SimTime> = BTreeMap::new();
    // The live cycle (by canonical key) each node belongs to. Cycles in
    // a functional graph are disjoint, so this is at most one per node.
    let mut member_of: HashMap<usize, Vec<NodeId>> = HashMap::new();
    let mut records = Vec::new();
    let mut dirty: Vec<usize> = Vec::new();

    for &(t, ref deltas) in stream {
        dirty.clear();
        for &(node, entry) in deltas {
            let i = node.index();
            let new_next = match entry {
                Some(FibEntry::Via(v)) if v.index() < n => Some(v.index()),
                _ => None,
            };
            if next[i] != new_next {
                next[i] = new_next;
                dirty.push(i);
            }
        }
        if dirty.is_empty() {
            continue; // recorded writes that didn't move any edge
        }
        // Deaths: a cycle's edges are u → succ(u) for its members, so
        // it survives iff no member moved.
        let mut dead: Vec<Vec<NodeId>> = dirty
            .iter()
            .filter_map(|i| member_of.get(i).cloned())
            .collect();
        dead.sort();
        dead.dedup();
        for key in dead {
            for node in &key {
                member_of.remove(&node.index());
            }
            let formed_at = live.remove(&key).expect("member map tracks live cycles");
            records.push(LoopRecord {
                nodes: key,
                formed_at,
                resolved_at: Some(t),
            });
        }
        // Births: colored walks from dirty nodes only. A walk may also
        // re-enter a surviving cycle through a rerouted tail; the
        // `or_insert` keeps its original formation time.
        epoch += 1;
        for (w, &start) in dirty.iter().enumerate() {
            let w = w as u32;
            let mut trail: Vec<usize> = Vec::new();
            let mut cur = start;
            loop {
                if done_epoch[cur] == epoch {
                    break; // explored earlier this instant
                }
                if seen_epoch[cur] == epoch {
                    if seen_walk[cur] == w {
                        let pos = trail
                            .iter()
                            .position(|&x| x == cur)
                            .expect("cycle node must be on the current trail");
                        let key = canonicalize(&trail[pos..]);
                        for node in &key {
                            member_of.insert(node.index(), key.clone());
                        }
                        live.entry(key).or_insert(t);
                    }
                    break;
                }
                seen_epoch[cur] = epoch;
                seen_walk[cur] = w;
                trail.push(cur);
                match next[cur] {
                    Some(nx) => cur = nx,
                    None => break,
                }
            }
            for &i in &trail {
                done_epoch[i] = epoch;
            }
        }
    }
    for (nodes, formed_at) in live {
        records.push(LoopRecord {
            nodes,
            formed_at,
            resolved_at: None,
        });
    }
    sort_census(&mut records);
    records
}

/// Reference implementation of [`loop_census`]: re-derives the full
/// loop set from a fresh snapshot at every change time. `O(changes × n)`
/// — kept as the obviously-correct oracle for the equivalence property
/// test and for one-off forensic use.
pub fn loop_census_full(fib: &NetworkFib, prefix: Prefix) -> Vec<LoopRecord> {
    let mut live: BTreeMap<Vec<NodeId>, SimTime> = BTreeMap::new();
    let mut records = Vec::new();
    for t in fib.change_times(prefix) {
        let snapshot = fib.snapshot(prefix, t);
        let current: Vec<Vec<NodeId>> = find_loops(&snapshot);
        let current_set: std::collections::BTreeSet<&Vec<NodeId>> = current.iter().collect();
        // Deaths: live loops absent from the current snapshot.
        let dead: Vec<Vec<NodeId>> = live
            .keys()
            .filter(|k| !current_set.contains(*k))
            .cloned()
            .collect();
        for k in dead {
            let formed_at = live.remove(&k).expect("key just observed");
            records.push(LoopRecord {
                nodes: k,
                formed_at,
                resolved_at: Some(t),
            });
        }
        // Births.
        for c in current {
            live.entry(c).or_insert(t);
        }
    }
    for (nodes, formed_at) in live {
        records.push(LoopRecord {
            nodes,
            formed_at,
            resolved_at: None,
        });
    }
    sort_census(&mut records);
    records
}

/// Census order: formation time, then canonical cycle. No two records
/// share both (a cycle must die before re-forming), so this is total.
fn sort_census(records: &mut [LoopRecord]) {
    records.sort_by(|a, b| (a.formed_at, &a.nodes).cmp(&(b.formed_at, &b.nodes)));
}

/// Replays a census as [`LoopOnset`](TraceEvent::LoopOnset) /
/// [`LoopOffset`](TraceEvent::LoopOffset) trace events attributed to
/// `seed`.
///
/// One onset is emitted per record and one offset per *resolved*
/// record, so the trace's loop event counts agree by construction with
/// the metrics layer, which summarizes the same census. Events are
/// emitted in census order (sorted by formation time, then nodes).
pub fn emit_census(census: &[LoopRecord], tracer: &TraceHandle, seed: u64) {
    if !tracer.is_enabled() {
        return;
    }
    for rec in census {
        let nodes: Vec<u32> = rec.nodes.iter().map(|n| n.as_u32()).collect();
        tracer.emit(|| TraceEvent::LoopOnset {
            seed,
            t: rec.formed_at.as_nanos(),
            nodes: nodes.clone(),
        });
        if let Some(resolved) = rec.resolved_at {
            tracer.emit(|| TraceEvent::LoopOffset {
                seed,
                t: resolved.as_nanos(),
                nodes,
                duration: (resolved - rec.formed_at).as_nanos(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn via(i: u32) -> Option<FibEntry> {
        Some(FibEntry::Via(n(i)))
    }

    #[test]
    fn no_loops_in_a_tree() {
        let snapshot = vec![Some(FibEntry::Local), via(0), via(0), via(1)];
        assert!(find_loops(&snapshot).is_empty());
    }

    #[test]
    fn detects_two_node_loop() {
        let snapshot = vec![None, via(2), via(1)];
        assert_eq!(find_loops(&snapshot), vec![vec![n(1), n(2)]]);
    }

    #[test]
    fn detects_long_loop_in_order() {
        // 3 → 1 → 4 → 2 → 3.
        let snapshot = vec![None, via(4), via(3), via(1), via(2)];
        assert_eq!(find_loops(&snapshot), vec![vec![n(1), n(4), n(2), n(3)]]);
    }

    #[test]
    fn detects_multiple_disjoint_loops() {
        let snapshot = vec![via(1), via(0), via(3), via(2), None];
        let loops = find_loops(&snapshot);
        assert_eq!(loops, vec![vec![n(0), n(1)], vec![n(2), n(3)]]);
    }

    #[test]
    fn tail_into_loop_is_not_part_of_it() {
        // 0 → 1 → 2 → 1: only {1, 2} loop.
        let snapshot = vec![via(1), via(2), via(1)];
        assert_eq!(find_loops(&snapshot), vec![vec![n(1), n(2)]]);
    }

    #[test]
    fn self_loop_cannot_exist_but_dangling_is_safe() {
        // FIB pointing out of range is treated as a sink, not a crash.
        let snapshot = vec![via(9)];
        assert!(find_loops(&snapshot).is_empty());
    }

    #[test]
    fn census_tracks_birth_and_death() {
        use bgpsim_core::Prefix;
        let p = Prefix::new(0);
        let mut fib = NetworkFib::new(3);
        fib.record(n(0), p, SimTime::ZERO, Some(FibEntry::Local));
        // Loop 1↔2 forms at t=1.
        fib.record(n(1), p, SimTime::from_secs(1), via(2));
        fib.record(n(2), p, SimTime::from_secs(1), via(1));
        // Resolves at t=5 when node 2 switches to 0.
        fib.record(n(2), p, SimTime::from_secs(5), via(0));
        let census = loop_census(&fib, p);
        assert_eq!(census.len(), 1);
        let rec = &census[0];
        assert_eq!(rec.nodes, vec![n(1), n(2)]);
        assert_eq!(rec.formed_at, SimTime::from_secs(1));
        assert_eq!(rec.resolved_at, Some(SimTime::from_secs(5)));
        assert_eq!(
            rec.duration(),
            Some(bgpsim_netsim::time::SimDuration::from_secs(4))
        );
        assert_eq!(rec.size(), 2);
    }

    #[test]
    fn census_reports_unresolved_loop() {
        use bgpsim_core::Prefix;
        let p = Prefix::new(0);
        let mut fib = NetworkFib::new(2);
        fib.record(n(0), p, SimTime::ZERO, via(1));
        fib.record(n(1), p, SimTime::ZERO, via(0));
        let census = loop_census(&fib, p);
        assert_eq!(census.len(), 1);
        assert_eq!(census[0].resolved_at, None);
        assert_eq!(census[0].duration(), None);
    }

    #[test]
    fn census_counts_reformation_twice() {
        use bgpsim_core::Prefix;
        let p = Prefix::new(0);
        let mut fib = NetworkFib::new(3);
        fib.record(n(1), p, SimTime::ZERO, via(2));
        fib.record(n(2), p, SimTime::ZERO, via(1));
        fib.record(n(2), p, SimTime::from_secs(2), None); // resolve
        fib.record(n(2), p, SimTime::from_secs(4), via(1)); // re-form
        let census = loop_census(&fib, p);
        assert_eq!(census.len(), 2);
        assert_eq!(census[0].resolved_at, Some(SimTime::from_secs(2)));
        assert_eq!(census[1].formed_at, SimTime::from_secs(4));
    }

    #[test]
    fn emit_census_matches_record_counts() {
        use bgpsim_core::Prefix;
        use bgpsim_trace::MemorySink;
        use std::sync::Arc;

        let p = Prefix::new(0);
        let mut fib = NetworkFib::new(3);
        // One resolved loop and one still live at the end.
        fib.record(n(1), p, SimTime::ZERO, via(2));
        fib.record(n(2), p, SimTime::ZERO, via(1));
        fib.record(n(2), p, SimTime::from_secs(2), None);
        fib.record(n(0), p, SimTime::from_secs(3), via(1));
        fib.record(n(1), p, SimTime::from_secs(3), via(0));
        let census = loop_census(&fib, p);

        let sink = Arc::new(MemorySink::new());
        let tracer = TraceHandle::new(Arc::clone(&sink) as Arc<dyn bgpsim_trace::TraceSink>);
        emit_census(&census, &tracer, 42);

        let events = sink.events();
        let onsets = events.iter().filter(|e| e.kind() == "loop_onset").count();
        let offsets = events.iter().filter(|e| e.kind() == "loop_offset").count();
        assert_eq!(onsets, census.len());
        assert_eq!(
            offsets,
            census.iter().filter(|r| r.resolved_at.is_some()).count()
        );
        assert!(events.iter().all(|e| e.seed() == 42));

        // Disabled tracing emits nothing.
        emit_census(&census, &TraceHandle::disabled(), 42);
        assert_eq!(sink.len(), events.len());
    }

    /// Brute-force reference: a node is on a loop iff walking from it
    /// returns to it within n steps.
    fn on_loop_brute(snapshot: &[Option<FibEntry>], start: usize) -> bool {
        let mut cur = start;
        for _ in 0..=snapshot.len() {
            match snapshot[cur] {
                Some(FibEntry::Via(v)) if v.index() < snapshot.len() => {
                    cur = v.index();
                    if cur == start {
                        return true;
                    }
                }
                _ => return false,
            }
        }
        false
    }

    #[test]
    fn incremental_census_matches_full_on_reformation() {
        use bgpsim_core::Prefix;
        let p = Prefix::new(0);
        let mut fib = NetworkFib::new(5);
        // Loop {1,2} forms, breaks, re-forms while {3,4} persists and a
        // tail reroutes into it.
        fib.record(n(1), p, SimTime::ZERO, via(2));
        fib.record(n(2), p, SimTime::ZERO, via(1));
        fib.record(n(3), p, SimTime::from_secs(1), via(4));
        fib.record(n(4), p, SimTime::from_secs(1), via(3));
        fib.record(n(2), p, SimTime::from_secs(2), None);
        fib.record(n(0), p, SimTime::from_secs(3), via(3)); // tail into live loop
        fib.record(n(2), p, SimTime::from_secs(4), via(1)); // re-form
        assert_eq!(loop_census(&fib, p), loop_census_full(&fib, p));
        assert_eq!(loop_census(&fib, p).len(), 3);
    }

    proptest! {
        /// The incremental census is record-for-record identical to the
        /// full-walk reference on random FIB-change sequences over
        /// random topologies (satellite property for the dirty-set
        /// rewrite).
        #[test]
        fn incremental_census_equals_full_walk(
            raw in proptest::collection::vec((0u32..10, 0u32..12, proptest::option::of(0u32..10)), 0..60),
            nodes in 2u32..10,
        ) {
            use bgpsim_core::Prefix;
            let p = Prefix::new(0);
            let mut fib = NetworkFib::new(nodes as usize);
            // Per-node clocks keep each history time-ordered while the
            // global interleaving stays arbitrary.
            let mut clock = vec![0u64; nodes as usize];
            for (node, dt, hop) in raw {
                let node = node % nodes;
                let t = clock[node as usize] + u64::from(dt);
                clock[node as usize] = t;
                let entry = match hop.map(|h| h % nodes) {
                    Some(h) if h != node => Some(FibEntry::Via(n(h))),
                    Some(_) => Some(FibEntry::Local),
                    None => None,
                };
                fib.record(n(node), p, SimTime::from_nanos(t), entry);
            }
            prop_assert_eq!(loop_census(&fib, p), loop_census_full(&fib, p));
        }

        /// The fast scanner agrees with the brute-force definition on
        /// random functional graphs.
        #[test]
        fn matches_brute_force(entries in proptest::collection::vec(
            proptest::option::of(0u32..12), 1..12
        )) {
            let m = entries.len() as u32;
            // Map raw values into in-range next hops, dropping
            // accidental self-loops (impossible in BGP FIBs).
            let snapshot: Vec<Option<FibEntry>> = entries
                .iter()
                .enumerate()
                .map(|(i, e)| match e.map(|v| v % m) {
                    Some(v) if v as usize != i => Some(FibEntry::Via(NodeId::new(v))),
                    _ => None,
                })
                .collect();
            let loops = find_loops(&snapshot);
            let mut on_loop = vec![false; snapshot.len()];
            for c in &loops {
                for node in c {
                    on_loop[node.index()] = true;
                }
            }
            for (i, &looped) in on_loop.iter().enumerate() {
                prop_assert_eq!(
                    looped,
                    on_loop_brute(&snapshot, i),
                    "node {} disagreement", i
                );
            }
            // Loops are disjoint (functional graph invariant).
            let total: usize = loops.iter().map(|c| c.len()).sum();
            let distinct: std::collections::HashSet<_> =
                loops.iter().flatten().collect();
            prop_assert_eq!(total, distinct.len());
        }
    }
}
