//! Data packets and their fates.

use bgpsim_netsim::time::SimTime;
use bgpsim_topology::NodeId;

use bgpsim_core::Prefix;

/// The default initial TTL, as in the study (§4.2): with a 2 ms link
/// delay a packet lives `128 × 2 ms = 256 ms` before TTL exhaustion.
pub const DEFAULT_TTL: u32 = 128;

/// A data packet injected at a source AS toward a destination prefix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Packet {
    /// Sequence number (unique per run).
    pub id: u64,
    /// The AS that sent the packet.
    pub src: NodeId,
    /// The destination prefix.
    pub prefix: Prefix,
    /// Initial TTL (decremented once per AS hop).
    pub ttl: u32,
    /// When the packet left the source.
    pub sent_at: SimTime,
}

/// What finally happened to a packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum PacketFate {
    /// Reached the AS originating its destination prefix.
    Delivered {
        /// Arrival time.
        at: SimTime,
        /// Number of AS hops taken.
        hops: u32,
    },
    /// Dropped because the TTL reached zero — the study's indicator
    /// that the packet was caught in a forwarding loop.
    TtlExhausted {
        /// Drop time.
        at: SimTime,
        /// The AS at which the packet died.
        node: NodeId,
    },
    /// Dropped at an AS with no route to the destination.
    NoRoute {
        /// Drop time.
        at: SimTime,
        /// The AS that had no route.
        node: NodeId,
    },
}

impl PacketFate {
    /// The time the fate was sealed.
    pub fn at(&self) -> SimTime {
        match *self {
            PacketFate::Delivered { at, .. }
            | PacketFate::TtlExhausted { at, .. }
            | PacketFate::NoRoute { at, .. } => at,
        }
    }

    /// Returns `true` for delivered packets.
    pub fn is_delivered(&self) -> bool {
        matches!(self, PacketFate::Delivered { .. })
    }

    /// Returns `true` for TTL-exhaustion drops.
    pub fn is_ttl_exhausted(&self) -> bool {
        matches!(self, PacketFate::TtlExhausted { .. })
    }

    /// Returns `true` for no-route drops.
    pub fn is_no_route(&self) -> bool {
        matches!(self, PacketFate::NoRoute { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fate_predicates() {
        let t = SimTime::from_secs(1);
        let d = PacketFate::Delivered { at: t, hops: 3 };
        let x = PacketFate::TtlExhausted {
            at: t,
            node: NodeId::new(2),
        };
        let n = PacketFate::NoRoute {
            at: t,
            node: NodeId::new(2),
        };
        assert!(d.is_delivered() && !d.is_ttl_exhausted() && !d.is_no_route());
        assert!(x.is_ttl_exhausted() && !x.is_delivered());
        assert!(n.is_no_route() && !n.is_delivered());
        assert_eq!(d.at(), t);
        assert_eq!(x.at(), t);
        assert_eq!(n.at(), t);
    }

    #[test]
    fn default_ttl_gives_256ms_lifetime() {
        // Documented invariant from the paper's §4.2.
        let lifetime_ms = DEFAULT_TTL as u64 * 2;
        assert_eq!(lifetime_ms, 256);
    }
}
