//! Checkpoint criterion group: what warm-up sharing buys (DESIGN.md
//! §14).
//!
//! The headline pair is the 16-way tail fan-out on a clique-16 —
//! sixteen `T_long`-style tails (links away from the destination, so
//! the tail is cheap and the warm-up dominates) executed from scratch
//! vs forked off one captured quiescence checkpoint. CI gates the
//! committed `BENCH_checkpoint.json` on the forked variant being at
//! least 3× faster; the asymptote is the per-variant warm-up/fork
//! cost ratio (~5× here). The supporting rows price the primitives:
//! running a warm-up to its snapshot, replaying one forked tail, and
//! pushing a full checkpoint through its JSON file format.
//!
//! Set `BGPSIM_BENCH_JSON=<file>` to emit the machine-readable report.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use bgpsim_checkpoint::Checkpoint;
use bgpsim_core::Prefix;
use bgpsim_sim::{ConvergenceExperiment, FailureEvent, SnapshotBeat};
use bgpsim_topology::{generators, NodeId};

/// Tail fan-out width of the headline A/B pair.
const FANOUT: u64 = 16;

/// The shared warm-up: a clique-16 announcing from node 0, seed 1.
/// The failure event is irrelevant until the tail runs, so every
/// variant below shares this experiment's warm-up fingerprint.
fn base() -> ConvergenceExperiment {
    ConvergenceExperiment::new(
        generators::clique(16),
        NodeId::new(0),
        FailureEvent::WithdrawPrefix {
            origin: NodeId::new(0),
            prefix: Prefix::new(0),
        },
    )
    .with_seed(1)
}

/// The i-th tail variant: a `T_long`-style failure of a link between
/// two non-destination nodes, so alternate paths exist and the tail
/// converges quickly — the regime where warm-up sharing pays most.
fn tail_variant(i: u64) -> ConvergenceExperiment {
    let stride = 1 + i / 14;
    let a = 1 + (i % 14);
    let b = 1 + ((i % 14 + stride) % 14);
    ConvergenceExperiment {
        failure: FailureEvent::LinkDown {
            a: NodeId::new(a as u32),
            b: NodeId::new(b as u32),
        },
        ..base()
    }
}

fn bench_primitives(c: &mut Criterion) {
    c.bench_function("checkpoint/warmup_snapshot_clique16", |b| {
        b.iter(|| {
            black_box(
                black_box(&base())
                    .snapshot_at(SnapshotBeat::Quiescence)
                    .network
                    .now(),
            )
        })
    });
    let checkpoint = Checkpoint::capture(
        base().snapshot_at(SnapshotBeat::Quiescence),
        "warmup/bench".to_string(),
        None,
    );
    c.bench_function("checkpoint/fork_tlong_tail_clique16", |b| {
        let tail = tail_variant(0);
        b.iter(|| {
            black_box(
                bgpsim_checkpoint::fork(black_box(&checkpoint), black_box(&tail))
                    .sends
                    .len(),
            )
        })
    });
    c.bench_function("checkpoint/file_roundtrip_clique16", |b| {
        let path = std::path::Path::new("bench.ckpt");
        b.iter(|| {
            let json = serde_json::to_string(black_box(&checkpoint)).unwrap();
            black_box(Checkpoint::parse(&json, path).unwrap().header.beat_nanos)
        })
    });
}

fn bench_fanout(c: &mut Criterion) {
    // Experiment construction (graph generation) is identical on both
    // sides and not what is under test, so it stays outside the loop.
    let tails: Vec<ConvergenceExperiment> = (0..FANOUT).map(tail_variant).collect();
    c.bench_function("checkpoint/fanout16_from_scratch_clique16", |b| {
        b.iter(|| {
            let mut sends = 0usize;
            for tail in &tails {
                sends += tail.run().sends.len();
            }
            black_box(sends)
        })
    });
    c.bench_function("checkpoint/fanout16_forked_clique16", |b| {
        b.iter(|| {
            // The whole shared-warm-up pipeline per iteration: one
            // warm-up, one capture, sixteen forked tails.
            let checkpoint = Checkpoint::capture(
                base().snapshot_at(SnapshotBeat::Quiescence),
                "warmup/bench".to_string(),
                None,
            );
            let mut sends = 0usize;
            for tail in &tails {
                sends += bgpsim_checkpoint::fork(&checkpoint, tail).sends.len();
            }
            black_box(sends)
        })
    });
}

criterion_group!(checkpoint, bench_primitives, bench_fanout);
criterion_main!(checkpoint);
