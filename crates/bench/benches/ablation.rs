//! Bench target running the design-choice ablations called out in
//! DESIGN.md: MRAI jitter, message processing delay (the paper's §5
//! footnote-5 mechanism), and routing policy.

use bgpsim_experiments::ablation::{
    jitter_ablation, policy_ablation, processing_delay_ablation, render_rows,
};
use bgpsim_experiments::figures::Scale;
use std::time::Instant;

fn main() {
    let scale = Scale::from_env();
    let (clique_n, gf_clique_n, internet_n, seeds): (usize, usize, usize, Vec<u64>) = match scale {
        Scale::Quick => (8, 10, 29, vec![1, 2]),
        Scale::Paper => (15, 20, 48, vec![1, 2, 3]),
    };
    eprintln!("[ablation] running at {scale:?} scale…");
    let t0 = Instant::now();
    println!(
        "{}",
        render_rows(
            &format!("MRAI jitter ablation (clique-{clique_n} T_down)"),
            &jitter_ablation(clique_n, &seeds),
        )
    );
    println!(
        "{}",
        render_rows(
            &format!(
                "Processing-delay ablation (clique-{gf_clique_n} T_down) — \
                 paper §5 footnote 5"
            ),
            &processing_delay_ablation(gf_clique_n, &seeds),
        )
    );
    println!(
        "{}",
        render_rows(
            &format!("Routing-policy ablation (internet-{internet_n} T_down)"),
            &policy_ablation(internet_n, &seeds),
        )
    );
    println!("[ablation] wall time: {:?}", t0.elapsed());
    eprintln!("{}", bgpsim_experiments::runner::global().render_stats());
}
