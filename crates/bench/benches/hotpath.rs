//! Hot-path criterion group: the three intra-run bottlenecks attacked
//! by the hot-path overhaul (DESIGN.md §11) plus the end-to-end run CI
//! gates on.
//!
//! * AS-path ops — `Arc`-interned clone fan-out, membership-filter
//!   `contains`, single-allocation `prepend`;
//! * loop census — incremental dirty-set scan vs the retained full
//!   walk on the same recorded FIB history;
//! * event-queue churn — MRAI-style schedule/cancel/reschedule load
//!   that exercises lazy-cancel reclamation and heap compaction;
//! * `hotpath/clique8_tdown_end_to_end` — a full convergence run; the
//!   CI bench-smoke job fails if this regresses >25% against the
//!   committed `BENCH_hotpath.json` baseline.
//!
//! The `replay` group benchmarks the measurement pipeline's epoch-
//! indexed batched packet replay against the naive per-packet oracle
//! (index build, batched vs naive walk over the paper's traffic fleet,
//! and the end-to-end `measure_run`); CI gates it at >25% regression
//! against the committed `BENCH_replay.json` baseline.
//!
//! Set `BGPSIM_BENCH_JSON=<file>` to emit the machine-readable report.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use bgpsim_core::prelude::*;
use bgpsim_dataplane::prelude::*;
use bgpsim_metrics::prelude::*;
use bgpsim_netsim::prelude::*;
use bgpsim_netsim::queue::EventQueue;
use bgpsim_sim::prelude::*;
use bgpsim_topology::{generators, NodeId};

/// A converged clique-8 `T_down` run record: the census benches replay
/// its FIB history, the end-to-end bench re-runs the experiment.
fn clique8_tdown() -> ConvergenceExperiment {
    ConvergenceExperiment::new(
        generators::clique(8),
        NodeId::new(0),
        FailureEvent::WithdrawPrefix {
            origin: NodeId::new(0),
            prefix: Prefix::new(0),
        },
    )
    .with_seed(1)
}

fn bench_aspath_ops(c: &mut Criterion) {
    // A 16-hop path: the long end of what clique sweeps explore.
    let path = AsPath::from_ids(0..16);
    c.bench_function("hotpath/aspath_clone_fanout_30", |b| {
        b.iter(|| {
            // UPDATE fan-out to 30 peers: one refcount bump each.
            let mut clones = Vec::with_capacity(30);
            for _ in 0..30 {
                clones.push(black_box(&path).clone());
            }
            black_box(clones.len())
        })
    });
    c.bench_function("hotpath/aspath_contains_filter_miss", |b| {
        // Poison-reverse probe for a node not on the path: the
        // membership filter answers without scanning the slice.
        b.iter(|| black_box(black_box(&path).contains(NodeId::new(999))))
    });
    c.bench_function("hotpath/aspath_contains_hit", |b| {
        b.iter(|| black_box(black_box(&path).contains(NodeId::new(15))))
    });
    c.bench_function("hotpath/aspath_prepend", |b| {
        b.iter(|| black_box(black_box(&path).prepend(NodeId::new(99))))
    });
}

fn bench_census(c: &mut Criterion) {
    let record = clique8_tdown().run();
    let prefix = Prefix::new(0);
    c.bench_function("hotpath/census_incremental_clique8", |b| {
        b.iter(|| black_box(loop_census(black_box(&record.fib), prefix)))
    });
    c.bench_function("hotpath/census_full_walk_clique8", |b| {
        b.iter(|| black_box(loop_census_full(black_box(&record.fib), prefix)))
    });
}

fn bench_queue_churn(c: &mut Criterion) {
    c.bench_function("hotpath/queue_mrai_churn_4k", |b| {
        b.iter(|| {
            // MRAI-style load: every scheduled expiry is superseded
            // (cancel + reschedule) before a batch of pops drains the
            // survivors — stale keys pile up and compaction must keep
            // the heap bounded.
            let mut q: EventQueue<u32> = EventQueue::new();
            let mut pending = Vec::with_capacity(64);
            let mut popped = 0u64;
            for round in 0..64u64 {
                for slot in 0..64u64 {
                    let at = SimTime::from_nanos(round * 1_000 + slot * 7);
                    pending.push(q.schedule(at, slot as u32));
                }
                for id in pending.drain(..) {
                    q.cancel(id);
                    let at = SimTime::from_nanos(round * 1_000 + 500);
                    q.schedule(at, 0);
                }
                for _ in 0..32 {
                    if q.pop().is_some() {
                        popped += 1;
                    }
                }
            }
            while q.pop().is_some() {
                popped += 1;
            }
            black_box(popped)
        })
    });
}

fn bench_end_to_end(c: &mut Criterion) {
    c.bench_function("hotpath/clique8_tdown_end_to_end", |b| {
        b.iter_batched(
            clique8_tdown,
            |exp| black_box(exp.run().sends.len()),
            BatchSize::SmallInput,
        )
    });
}

fn bench_replay(c: &mut Criterion) {
    let record = clique8_tdown().run();
    let prefix = Prefix::new(0);
    let destination = NodeId::new(0);
    let link_delay = SimDuration::from_millis(2);
    // The exact fleet `measure_run` replays: paper sources over the
    // record's replay window, traffic fork tag 0xDA7A, seed 1.
    let mut rng = SimRng::new(1).fork(0xDA7A);
    let sources = paper_sources(record.node_count, destination, &mut rng);
    let (start, end) = record.replay_window();
    let packets = generate_packets(&sources, prefix, DEFAULT_TTL, start, end);
    assert!(!packets.is_empty(), "bench fleet must be nonempty");

    c.bench_function("replay/epoch_index_build_clique8", |b| {
        b.iter(|| black_box(black_box(&record.fib).epoch_index(prefix)))
    });
    c.bench_function("replay/walk_naive_clique8", |b| {
        b.iter(|| {
            black_box(walk_all(
                black_box(&record.fib),
                black_box(&packets),
                link_delay,
            ))
        })
    });
    c.bench_function("replay/walk_batched_clique8", |b| {
        let index = record.fib.epoch_index(prefix);
        b.iter(|| {
            black_box(walk_indexed_batch(
                black_box(&index),
                black_box(&packets),
                link_delay,
            ))
        })
    });
    c.bench_function("replay/measure_run_clique8", |b| {
        b.iter(|| {
            black_box(measure_run(
                black_box(&record),
                destination,
                prefix,
                black_box(1),
            ))
        })
    });
}

criterion_group!(
    benches,
    bench_aspath_ops,
    bench_census,
    bench_queue_churn,
    bench_end_to_end
);
criterion_group!(replay, bench_replay);
criterion_main!(benches, replay);
