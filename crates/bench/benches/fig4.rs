//! Bench target regenerating the paper's Figure 4 and checking its
//! claims. Runs at Quick scale by default; set `BGPSIM_SCALE=paper`
//! for the full parameter ranges.

use bgpsim_experiments::figures::{fig4, render_claims, Scale};
use std::time::Instant;

fn main() {
    // Under `cargo bench`, ignore harness flags like `--bench`.
    let scale = Scale::from_env();
    eprintln!("[fig4] sweeping at {scale:?} scale (BGPSIM_SCALE overrides)…");
    let t0 = Instant::now();
    let fig = fig4::run(scale);
    let elapsed = t0.elapsed();
    println!("{}", fig.render());
    let claims = fig.claims();
    println!("{}", render_claims(&claims));
    println!("[fig4] wall time: {elapsed:?}");
    eprintln!("{}", bgpsim_experiments::runner::global().render_stats());
    let failed = claims.iter().filter(|c| !c.pass).count();
    if failed > 0 {
        eprintln!("[fig4] {failed} claim check(s) failed");
        std::process::exit(1);
    }
}
