//! Parallel criterion group: the sharded conservative-parallel engine
//! vs the serial oracle on the same experiments (DESIGN.md §15).
//!
//! The headline A/B pair is a clique-32 `T_down` — the paper's regime
//! where update fan-out saturates the event queue — run serially and
//! at 2 and 4 shards; an internet-like 33-AS topology covers the
//! sparser realistic case. Shard workers are real OS threads, so the
//! measured speedup is a property of the *machine*: the committed
//! `BENCH_parallel.json` records the core count it was captured under,
//! and CI only gates the ≥1.8× four-shard speedup when the runner
//! actually has ≥4 cores (on fewer cores the conservative sync
//! barriers make sharding a deliberate slowdown, which is still worth
//! recording).
//!
//! Set `BGPSIM_BENCH_JSON=<file>` to emit the machine-readable report.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use bgpsim_core::Prefix;
use bgpsim_experiments::TopologySpec;
use bgpsim_sim::{ConvergenceExperiment, FailureEvent};
use bgpsim_topology::{generators, NodeId};

/// Shard counts the A/B rows cover, serial (1) included.
const SHARD_COUNTS: [u32; 3] = [1, 2, 4];

/// The dense headline experiment: clique-32 `T_down`, seed 1.
fn clique32() -> ConvergenceExperiment {
    ConvergenceExperiment::new(
        generators::clique(32),
        NodeId::new(0),
        FailureEvent::WithdrawPrefix {
            origin: NodeId::new(0),
            prefix: Prefix::new(0),
        },
    )
    .with_seed(1)
}

/// The sparse counterpart: an internet-like 33-AS topology.
fn internet33() -> ConvergenceExperiment {
    let (graph, destination) = TopologySpec::InternetLike {
        n: 33,
        topo_seed: 3,
    }
    .build();
    ConvergenceExperiment::new(
        graph,
        destination,
        FailureEvent::WithdrawPrefix {
            origin: destination,
            prefix: Prefix::new(0),
        },
    )
    .with_seed(1)
}

fn bench_parallel(c: &mut Criterion) {
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    println!("parallel: {cores} core(s) available to this process");
    for (label, exp) in [
        ("clique32_tdown", clique32()),
        ("internet33_tdown", internet33()),
    ] {
        for k in SHARD_COUNTS {
            let name = if k == 1 {
                format!("parallel/{label}_serial")
            } else {
                format!("parallel/{label}_shards{k}")
            };
            c.bench_function(&name, |b| {
                b.iter(|| {
                    let record = if k == 1 {
                        black_box(&exp).run()
                    } else {
                        black_box(&exp).run_sharded(k)
                    };
                    black_box(record.events_dispatched)
                })
            });
        }
    }
}

criterion_group!(parallel, bench_parallel);
criterion_main!(parallel);
