//! Criterion microbenchmarks for the simulation substrate: event-queue
//! throughput, AS-path operations, the BGP decision process, the
//! forwarding-loop scanner, packet replay, and a full small
//! convergence run.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use bgpsim_core::prelude::*;
use bgpsim_core::rib::RibIn;
use bgpsim_dataplane::prelude::*;
use bgpsim_netsim::prelude::*;
use bgpsim_sim::prelude::*;
use bgpsim_topology::{generators, NodeId};

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("netsim/event_queue_schedule_pop_10k", |b| {
        b.iter(|| {
            let mut engine: Engine<u32> = Engine::new();
            for i in 0..10_000u32 {
                engine.schedule_at(SimTime::from_nanos(u64::from(i) * 37 % 100_000), i);
            }
            let mut sum = 0u64;
            while let Some((_, v)) = engine.pop() {
                sum += u64::from(v);
            }
            black_box(sum)
        })
    });
}

fn bench_aspath(c: &mut Criterion) {
    let base = AsPath::from_ids(0..30);
    c.bench_function("core/aspath_prepend_and_contains", |b| {
        b.iter(|| {
            let p = base.prepend(NodeId::new(99));
            black_box(p.contains(NodeId::new(15)) && p.contains(NodeId::new(99)))
        })
    });
}

fn bench_decision(c: &mut Criterion) {
    // A RIB with 29 candidate paths, like a node in a 30-clique.
    let mut rib = RibIn::new();
    for i in 1..30u32 {
        rib.insert(NodeId::new(i), AsPath::from_ids([i, 100 + i % 7, 200]));
    }
    c.bench_function("core/decision_process_29_candidates", |b| {
        b.iter(|| {
            black_box(bgpsim_core::decision::select_best(
                &rib,
                NodeId::new(50),
                &bgpsim_core::decision::ShortestPath,
            ))
        })
    });
}

fn bench_loop_scanner(c: &mut Criterion) {
    // A 110-node functional graph with a tail, a chain and a cycle.
    let snapshot: Vec<Option<FibEntry>> = (0..110u32)
        .map(|i| match i {
            0 => Some(FibEntry::Local),
            1..=50 => Some(FibEntry::Via(NodeId::new(i - 1))),
            51..=60 => Some(FibEntry::Via(NodeId::new(51 + (i - 50) % 10))),
            _ => Some(FibEntry::Via(NodeId::new(i / 2))),
        })
        .collect();
    c.bench_function("dataplane/loop_scan_110_nodes", |b| {
        b.iter(|| black_box(find_loops(black_box(&snapshot))))
    });
}

fn bench_packet_replay(c: &mut Criterion) {
    // Replay through a 2-node loop: the worst case (full TTL walk).
    let p = Prefix::new(0);
    let mut fib = NetworkFib::new(4);
    fib.record(
        NodeId::new(1),
        p,
        SimTime::ZERO,
        Some(FibEntry::Via(NodeId::new(2))),
    );
    fib.record(
        NodeId::new(2),
        p,
        SimTime::ZERO,
        Some(FibEntry::Via(NodeId::new(1))),
    );
    let pkt = Packet {
        id: 0,
        src: NodeId::new(1),
        prefix: p,
        ttl: DEFAULT_TTL,
        sent_at: SimTime::from_secs(1),
    };
    c.bench_function("dataplane/replay_128_hop_loop_walk", |b| {
        b.iter(|| black_box(walk_packet(&fib, &pkt, SimDuration::from_millis(2))))
    });
}

fn bench_full_run(c: &mut Criterion) {
    c.bench_function("sim/clique8_tdown_full_convergence", |b| {
        b.iter_batched(
            || generators::clique(8),
            |g| {
                let exp = ConvergenceExperiment::new(
                    g,
                    NodeId::new(0),
                    FailureEvent::WithdrawPrefix {
                        origin: NodeId::new(0),
                        prefix: Prefix::new(0),
                    },
                )
                .with_seed(1);
                black_box(exp.run().sends.len())
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_aspath,
    bench_decision,
    bench_loop_scanner,
    bench_packet_replay,
    bench_full_run
);
criterion_main!(benches);
