//! # bgpsim-bench
//!
//! Benchmark harness for the `bgpsim` study. The library itself is
//! empty; the interesting targets live under `benches/`:
//!
//! * `fig4` … `fig9` — regenerate each evaluation figure of the paper
//!   and check its claims (Quick scale by default; set
//!   `BGPSIM_SCALE=paper` for the full ranges);
//! * `micro` — Criterion microbenchmarks of the substrate (event
//!   queue, decision process, loop scanner, packet replay, full runs).
//!
//! Run them with `cargo bench -p bgpsim-bench`.
