//! Gao–Rexford policy routing — an extension beyond the paper.
//!
//! The ICDCS'04 study uses a shortest-AS-path policy throughout; real
//! inter-domain routing follows commercial relationships. The
//! [`GaoRexford`] policy implements the canonical stable-routing rules
//! (Gao & Rexford, *Stable Internet Routing Without Global
//! Coordination*):
//!
//! * **Preference**: customer routes over peer routes over provider
//!   routes (a form of local-pref), then shorter paths, then the
//!   paper's smaller-node-id tie-break;
//! * **Export**: routes learned from customers go to everyone; routes
//!   learned from peers or providers go only to customers (no transit
//!   for free). Locally originated prefixes go to everyone.
//!
//! Converged routes under these rules are **valley-free**, which the
//! workspace's integration tests verify end-to-end.

use std::cmp::Ordering;
use std::collections::BTreeMap;

use bgpsim_topology::relationships::{Relationship, RelationshipMap};
use bgpsim_topology::NodeId;

use crate::aspath::AsPath;
use crate::decision::RoutePolicy;

/// The Gao–Rexford route policy for one node.
///
/// # Examples
///
/// ```
/// use bgpsim_core::policy::GaoRexford;
/// use bgpsim_core::decision::RoutePolicy;
/// use bgpsim_core::AsPath;
/// use bgpsim_topology::relationships::{Relationship, RelationshipMap};
/// use bgpsim_topology::NodeId;
/// use std::cmp::Ordering;
///
/// let mut rels = RelationshipMap::new();
/// let me = NodeId::new(0);
/// rels.set(me, NodeId::new(1), Relationship::Customer);
/// rels.set(me, NodeId::new(2), Relationship::Provider);
/// let policy = GaoRexford::for_node(me, &rels);
///
/// // A longer customer route beats a shorter provider route.
/// let long = AsPath::from_ids([1, 7, 8, 9]);
/// let short = AsPath::from_ids([2, 9]);
/// assert_eq!(
///     policy.compare((NodeId::new(1), &long), (NodeId::new(2), &short)),
///     Ordering::Less
/// );
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GaoRexford {
    rels: BTreeMap<NodeId, Relationship>,
}

impl GaoRexford {
    /// Builds the policy for `node` from a topology-wide relationship
    /// map: every annotated neighbor of `node` is included.
    pub fn for_node(node: NodeId, map: &RelationshipMap) -> Self {
        GaoRexford {
            rels: map.neighbors_of(node).collect(),
        }
    }

    /// Builds a policy from explicit per-neighbor relationships.
    pub fn from_neighbors<I>(rels: I) -> Self
    where
        I: IntoIterator<Item = (NodeId, Relationship)>,
    {
        GaoRexford {
            rels: rels.into_iter().collect(),
        }
    }

    /// What `peer` is to this node, if known.
    pub fn relationship(&self, peer: NodeId) -> Option<Relationship> {
        self.rels.get(&peer).copied()
    }

    /// Preference class of a route learned from `peer`: lower is
    /// better. Unknown neighbors rank below providers (class 3) so
    /// unannotated sessions are only used as a last resort.
    fn class(&self, peer: NodeId) -> u8 {
        match self.rels.get(&peer) {
            Some(Relationship::Customer) => 0,
            Some(Relationship::Peer) => 1,
            Some(Relationship::Provider) => 2,
            None => 3,
        }
    }
}

impl RoutePolicy for GaoRexford {
    fn compare(&self, a: (NodeId, &AsPath), b: (NodeId, &AsPath)) -> Ordering {
        self.class(a.0)
            .cmp(&self.class(b.0))
            .then_with(|| a.1.len().cmp(&b.1.len()))
            .then_with(|| a.0.cmp(&b.0))
    }

    fn export_allowed(&self, learned_from: Option<NodeId>, to: NodeId) -> bool {
        let Some(from) = learned_from else {
            return true; // own prefixes go to everyone
        };
        // Customer routes are exported to all; peer/provider routes
        // only down to customers.
        matches!(self.rels.get(&from), Some(Relationship::Customer))
            || matches!(self.rels.get(&to), Some(Relationship::Customer))
    }
}

/// Checks that a converged AS path is **valley-free** with respect to
/// the relationship map: read from the origin outward, a path may
/// climb customer→provider links, cross at most one peer link, and
/// then only descend provider→customer links.
///
/// `path` is head-first (as stored by the router): `path[0]` is the
/// node itself, the last element the origin. We walk from the origin
/// toward the head, tracking whether we have started descending.
pub fn is_valley_free(path: &AsPath, rels: &RelationshipMap) -> bool {
    // Walk origin → head. For each hop (carrier, receiver), classify
    // what `receiver` is to `carrier`.
    let nodes = path.as_slice();
    let mut descending = false;
    for w in nodes.windows(2).rev() {
        let (receiver, carrier) = (w[0], w[1]);
        // The route flows carrier → receiver. Uphill means the receiver
        // is the carrier's provider; peer crossing and downhill start
        // the descent.
        match rels.get(carrier, receiver) {
            Some(Relationship::Provider) => {
                if descending {
                    return false; // up after down: a valley
                }
            }
            Some(Relationship::Peer) => {
                if descending {
                    return false; // peer after descent started
                }
                descending = true;
            }
            Some(Relationship::Customer) => descending = true,
            None => return false, // unannotated hop
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    /// me = 0; 1 is my customer, 2 my peer, 3 my provider.
    fn policy() -> GaoRexford {
        GaoRexford::from_neighbors([
            (n(1), Relationship::Customer),
            (n(2), Relationship::Peer),
            (n(3), Relationship::Provider),
        ])
    }

    #[test]
    fn preference_order_is_customer_peer_provider() {
        let p = policy();
        let path = AsPath::from_ids([9, 0]); // content irrelevant here
        let pairs = [(n(1), 0u8), (n(2), 1), (n(3), 2), (n(7), 3)];
        for (peer, class) in pairs {
            assert_eq!(p.class(peer), class);
        }
        assert_eq!(p.compare((n(1), &path), (n(2), &path)), Ordering::Less);
        assert_eq!(p.compare((n(2), &path), (n(3), &path)), Ordering::Less);
    }

    #[test]
    fn longer_customer_route_beats_shorter_provider_route() {
        let p = policy();
        let long = AsPath::from_ids([1, 7, 8, 9]);
        let short = AsPath::from_ids([3, 9]);
        assert_eq!(p.compare((n(1), &long), (n(3), &short)), Ordering::Less);
    }

    #[test]
    fn same_class_falls_back_to_length_then_id() {
        let mut p = policy();
        p.rels.insert(n(4), Relationship::Customer);
        let a = AsPath::from_ids([1, 9]);
        let b = AsPath::from_ids([4, 8, 9]);
        assert_eq!(p.compare((n(1), &a), (n(4), &b)), Ordering::Less);
        let c = AsPath::from_ids([4, 9]);
        assert_eq!(
            p.compare((n(1), &a), (n(4), &c)),
            Ordering::Less,
            "equal length ties break on smaller id"
        );
    }

    #[test]
    fn export_rules() {
        let p = policy();
        // Own prefix: everyone.
        assert!(p.export_allowed(None, n(2)));
        assert!(p.export_allowed(None, n(3)));
        // Customer route: everyone.
        assert!(p.export_allowed(Some(n(1)), n(2)));
        assert!(p.export_allowed(Some(n(1)), n(3)));
        // Peer route: customers only.
        assert!(p.export_allowed(Some(n(2)), n(1)));
        assert!(!p.export_allowed(Some(n(2)), n(3)));
        assert!(!p.export_allowed(Some(n(2)), n(2)));
        // Provider route: customers only.
        assert!(p.export_allowed(Some(n(3)), n(1)));
        assert!(!p.export_allowed(Some(n(3)), n(2)));
    }

    #[test]
    fn for_node_reads_topology_map() {
        let mut map = RelationshipMap::new();
        map.set(n(0), n(1), Relationship::Customer);
        map.set(n(0), n(2), Relationship::Provider);
        map.set(n(5), n(6), Relationship::Peer); // unrelated
        let p = GaoRexford::for_node(n(0), &map);
        assert_eq!(p.relationship(n(1)), Some(Relationship::Customer));
        assert_eq!(p.relationship(n(2)), Some(Relationship::Provider));
        assert_eq!(p.relationship(n(6)), None);
    }

    #[test]
    fn valley_free_accepts_up_peer_down() {
        // Path head-first: 5 <- 2 <- 9, i.e. origin 9, then 2, then 5.
        // 9 is 2's customer (route climbed), 2 and 5 are peers.
        let mut map = RelationshipMap::new();
        map.set(n(2), n(9), Relationship::Customer);
        map.set(n(5), n(2), Relationship::Peer);
        let path = AsPath::from_ids([5, 2, 9]);
        assert!(is_valley_free(&path, &map));
    }

    #[test]
    fn valley_free_rejects_down_then_up() {
        // origin 9 → 2: 9 is 2's provider (descent); 2 → 5: 5 is 2's
        // provider (ascent after descent) = valley.
        let mut map = RelationshipMap::new();
        map.set(n(2), n(9), Relationship::Provider);
        map.set(n(2), n(5), Relationship::Provider);
        let path = AsPath::from_ids([5, 2, 9]);
        assert!(!is_valley_free(&path, &map));
    }

    #[test]
    fn valley_free_rejects_double_peer() {
        let mut map = RelationshipMap::new();
        map.set(n(2), n(9), Relationship::Peer);
        map.set(n(5), n(2), Relationship::Peer);
        let path = AsPath::from_ids([5, 2, 9]);
        assert!(!is_valley_free(&path, &map));
    }

    #[test]
    fn valley_free_accepts_pure_climb_and_pure_descent() {
        let mut map = RelationshipMap::new();
        // climb: 9 is 2's customer, 2 is 5's customer.
        map.set(n(2), n(9), Relationship::Customer);
        map.set(n(5), n(2), Relationship::Customer);
        assert!(is_valley_free(&AsPath::from_ids([5, 2, 9]), &map));
        // descent: 9 is 2's provider, 2 is 5's... for pure descent the
        // route flows down: receiver is the carrier's customer.
        let mut map2 = RelationshipMap::new();
        map2.set(n(2), n(9), Relationship::Provider);
        map2.set(n(2), n(5), Relationship::Customer);
        assert!(is_valley_free(&AsPath::from_ids([5, 2, 9]), &map2));
    }

    #[test]
    fn single_node_path_is_trivially_valley_free() {
        let map = RelationshipMap::new();
        assert!(is_valley_free(&AsPath::origin_only(n(3)), &map));
    }
}
