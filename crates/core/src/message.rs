//! BGP UPDATE messages.
//!
//! Only the two message kinds that matter for path-vector dynamics are
//! modelled: a route **announcement** (an UPDATE carrying a path) and an
//! explicit **withdrawal**. Session management (OPEN/KEEPALIVE) is
//! abstracted away — the simulator's links play the role of established
//! TCP sessions.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::aspath::AsPath;
use crate::prefix::Prefix;

/// A BGP routing message for a single prefix.
///
/// # Examples
///
/// ```
/// use bgpsim_core::{AsPath, BgpMessage, Prefix};
///
/// let ann = BgpMessage::announce(Prefix::new(0), AsPath::from_ids([4, 0]));
/// assert!(!ann.is_withdraw());
/// let wd = BgpMessage::withdraw(Prefix::new(0));
/// assert!(wd.is_withdraw());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BgpMessage {
    /// Announce a (new) best path for a prefix.
    Announce {
        /// The destination prefix.
        prefix: Prefix,
        /// The advertised AS path, sender first.
        path: AsPath,
    },
    /// Withdraw any previously announced route for a prefix.
    Withdraw {
        /// The destination prefix.
        prefix: Prefix,
    },
}

impl BgpMessage {
    /// Creates an announcement.
    pub fn announce(prefix: Prefix, path: AsPath) -> Self {
        BgpMessage::Announce { prefix, path }
    }

    /// Creates a withdrawal.
    pub fn withdraw(prefix: Prefix) -> Self {
        BgpMessage::Withdraw { prefix }
    }

    /// The prefix this message concerns.
    pub fn prefix(&self) -> Prefix {
        match self {
            BgpMessage::Announce { prefix, .. } | BgpMessage::Withdraw { prefix } => *prefix,
        }
    }

    /// Returns `true` for withdrawals.
    pub fn is_withdraw(&self) -> bool {
        matches!(self, BgpMessage::Withdraw { .. })
    }

    /// The announced path, if this is an announcement.
    pub fn path(&self) -> Option<&AsPath> {
        match self {
            BgpMessage::Announce { path, .. } => Some(path),
            BgpMessage::Withdraw { .. } => None,
        }
    }
}

impl fmt::Display for BgpMessage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BgpMessage::Announce { prefix, path } => write!(f, "ANNOUNCE {prefix} {path}"),
            BgpMessage::Withdraw { prefix } => write!(f, "WITHDRAW {prefix}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let p = Prefix::new(7);
        let ann = BgpMessage::announce(p, AsPath::from_ids([1, 0]));
        assert_eq!(ann.prefix(), p);
        assert!(!ann.is_withdraw());
        assert_eq!(ann.path(), Some(&AsPath::from_ids([1, 0])));

        let wd = BgpMessage::withdraw(p);
        assert_eq!(wd.prefix(), p);
        assert!(wd.is_withdraw());
        assert_eq!(wd.path(), None);
    }

    #[test]
    fn display_formats() {
        let ann = BgpMessage::announce(Prefix::new(0), AsPath::from_ids([5, 4, 0]));
        assert_eq!(ann.to_string(), "ANNOUNCE p0 (5 4 0)");
        assert_eq!(
            BgpMessage::withdraw(Prefix::new(0)).to_string(),
            "WITHDRAW p0"
        );
    }
}
