//! # bgpsim-core
//!
//! A BGP path-vector protocol engine, built to reproduce *"A Study of
//! BGP Path Vector Route Looping Behavior"* (Pei, Zhao, Massey, Zhang —
//! ICDCS 2004).
//!
//! The crate models one BGP speaker per AS with:
//!
//! * per-neighbor Adj-RIB-In ([`rib::RibIn`]) holding the latest
//!   advertisement from each peer;
//! * the decision process ([`decision`]) with **path-based poison
//!   reverse** — any path containing the local node is discarded, which
//!   detects arbitrarily long loops involving oneself;
//! * per-`(peer, prefix)` **MRAI timers** ([`mrai`]) with SSFNet-style
//!   jitter — the paper's dominant factor in transient loop duration;
//! * explicit withdrawals, exempt from MRAI per RFC 1771;
//! * the four convergence enhancements of the paper's §5 as
//!   configuration flags ([`config::Enhancements`]): SSLD, WRATE,
//!   Assertion and Ghost Flushing.
//!
//! The engine is deliberately **host-agnostic**: [`router::Router`]
//! consumes inputs (messages, timer expiries, session events) at given
//! simulation times and returns a [`output::RouterOutput`] describing
//! messages to send, timers to schedule, and FIB changes. The
//! `bgpsim-sim` crate wires routers into the `bgpsim-netsim` event loop.
//!
//! ## Example
//!
//! ```
//! use bgpsim_core::prelude::*;
//! use bgpsim_netsim::rng::SimRng;
//! use bgpsim_netsim::time::SimTime;
//! use bgpsim_topology::NodeId;
//!
//! let mut origin = Router::new(NodeId::new(0), [NodeId::new(1)], BgpConfig::default());
//! let mut rng = SimRng::new(42);
//! let out = origin.originate(Prefix::new(0), SimTime::ZERO, &mut rng);
//! assert_eq!(out.sends.len(), 1); // advertise to the single peer
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::redundant_clone)]

pub mod aspath;
pub mod config;
pub mod damping;
pub mod decision;
pub mod message;
pub mod mrai;
pub mod output;
pub mod policy;
pub mod prefix;
pub mod rib;
pub mod router;

pub use aspath::AsPath;
pub use config::{BgpConfig, Enhancements, Jitter};
pub use message::BgpMessage;
pub use output::{FibEntry, LocRoute, MraiTimerRequest, ReuseTimerRequest, RouterOutput};
pub use prefix::Prefix;
pub use router::{Router, RouterState, RouterStats};

/// Commonly used types, for glob import.
pub mod prelude {
    pub use crate::aspath::AsPath;
    pub use crate::config::{BgpConfig, Enhancements, Jitter};
    pub use crate::damping::{DampingConfig, DampingTable, FlapKind};
    pub use crate::decision::{RoutePolicy, ShortestPath};
    pub use crate::message::BgpMessage;
    pub use crate::output::{
        FibEntry, LocRoute, MraiTimerRequest, ReuseTimerRequest, RouterOutput,
    };
    pub use crate::policy::GaoRexford;
    pub use crate::prefix::Prefix;
    pub use crate::router::{Router, RouterState, RouterStats};
}

#[cfg(test)]
mod proptests {
    use crate::prelude::*;
    use bgpsim_netsim::rng::SimRng;
    use bgpsim_netsim::time::SimTime;
    use bgpsim_topology::NodeId;
    use proptest::prelude::*;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    proptest! {
        /// Whatever sequence of announcements/withdrawals a router
        /// processes, its selected route is always simple (no repeated
        /// AS) and always starts with its own id.
        #[test]
        fn selected_route_is_well_formed(
            msgs in proptest::collection::vec(
                (1u32..6, proptest::collection::vec(6u32..12, 0..4), any::<bool>()),
                1..40,
            )
        ) {
            let peers: Vec<NodeId> = (1..6).map(n).collect();
            let mut r = Router::new(n(0), peers, BgpConfig::default());
            let mut rng = SimRng::new(5);
            let prefix = Prefix::new(0);
            let mut t = SimTime::ZERO;
            for (peer, tail, withdraw) in msgs {
                t += bgpsim_netsim::time::SimDuration::from_millis(10);
                let msg = if withdraw {
                    BgpMessage::withdraw(prefix)
                } else {
                    // Build a simple path: peer, then distinct tail ids,
                    // ending at origin 100.
                    let mut ids = vec![peer];
                    for x in tail {
                        if !ids.contains(&x) {
                            ids.push(x);
                        }
                    }
                    ids.push(100);
                    BgpMessage::announce(prefix, AsPath::from_ids(ids))
                };
                r.handle_message(n(peer), &msg, t, &mut rng);
                if let Some(best) = r.best(prefix) {
                    prop_assert!(best.path.is_simple());
                    prop_assert_eq!(best.path.head(), n(0));
                    prop_assert!(!matches!(best.fib, FibEntry::Local));
                }
            }
        }

        /// The router never announces a path containing the receiving
        /// peer when SSLD is on, and never sends two identical
        /// consecutive advertisements to the same peer.
        #[test]
        fn ssld_and_no_duplicate_adverts(
            msgs in proptest::collection::vec(
                (1u32..5, proptest::collection::vec(5u32..10, 0..3), any::<bool>()),
                1..40,
            ),
            ssld in any::<bool>(),
        ) {
            let peers: Vec<NodeId> = (1..5).map(n).collect();
            let enh = if ssld { Enhancements::ssld() } else { Enhancements::standard() };
            let cfg = BgpConfig::default()
                .with_mrai(bgpsim_netsim::time::SimDuration::ZERO)
                .with_enhancements(enh);
            let mut r = Router::new(n(0), peers, cfg);
            let mut rng = SimRng::new(9);
            let prefix = Prefix::new(0);
            let mut t = SimTime::ZERO;
            let mut last_sent: std::collections::HashMap<NodeId, BgpMessage> =
                std::collections::HashMap::new();
            for (peer, tail, withdraw) in msgs {
                t += bgpsim_netsim::time::SimDuration::from_millis(10);
                let msg = if withdraw {
                    BgpMessage::withdraw(prefix)
                } else {
                    let mut ids = vec![peer];
                    for x in tail {
                        if !ids.contains(&x) {
                            ids.push(x);
                        }
                    }
                    ids.push(100);
                    BgpMessage::announce(prefix, AsPath::from_ids(ids))
                };
                let out = r.handle_message(n(peer), &msg, t, &mut rng);
                for (to, sent) in out.sends {
                    if ssld {
                        if let Some(path) = sent.path() {
                            prop_assert!(
                                !path.contains(to),
                                "SSLD must not announce {} to {}", path, to
                            );
                        }
                    }
                    if let Some(prev) = last_sent.get(&to) {
                        prop_assert_ne!(prev, &sent, "duplicate advert to {}", to);
                    }
                    last_sent.insert(to, sent);
                }
            }
        }
    }
}
