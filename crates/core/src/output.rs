//! Router output: the effects a router asks its host simulator to
//! perform.
//!
//! The router core is simulator-agnostic: processing an input returns a
//! [`RouterOutput`] describing messages to transmit, MRAI timer events
//! to schedule, and forwarding-table changes to apply. This keeps the
//! protocol engine unit-testable without any event loop.

use bgpsim_netsim::time::SimTime;
use bgpsim_topology::NodeId;

use crate::aspath::AsPath;
use crate::message::BgpMessage;
use crate::prefix::Prefix;

/// A forwarding-table entry for one prefix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum FibEntry {
    /// The prefix is locally originated: deliver.
    Local,
    /// Forward to this neighbor.
    Via(NodeId),
}

impl FibEntry {
    /// The next-hop neighbor, if the entry forwards.
    pub fn via(self) -> Option<NodeId> {
        match self {
            FibEntry::Local => None,
            FibEntry::Via(n) => Some(n),
        }
    }
}

/// A request to schedule an MRAI expiry callback.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MraiTimerRequest {
    /// The peer whose timer this is.
    pub peer: NodeId,
    /// The prefix whose timer this is.
    pub prefix: Prefix,
    /// When the timer expires. The host must call
    /// [`Router::on_mrai_expire`] at this instant.
    ///
    /// [`Router::on_mrai_expire`]: crate::router::Router::on_mrai_expire
    pub at: SimTime,
}

/// A request to schedule a route-flap-damping reuse check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReuseTimerRequest {
    /// The peer whose suppressed route may become reusable.
    pub peer: NodeId,
    /// The prefix concerned.
    pub prefix: Prefix,
    /// When the penalty decays to the reuse threshold. The host must
    /// call [`Router::on_damping_reuse`] at this instant.
    ///
    /// [`Router::on_damping_reuse`]: crate::router::Router::on_damping_reuse
    pub at: SimTime,
}

/// The route selected for a prefix, as exposed to observers.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct LocRoute {
    /// Forwarding entry (local or via a neighbor).
    pub fib: FibEntry,
    /// The full local AS path (starts with the router's own id).
    pub path: AsPath,
}

/// Everything a router wants done after processing one input.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RouterOutput {
    /// Messages to transmit now, in order, to the given peers.
    pub sends: Vec<(NodeId, BgpMessage)>,
    /// MRAI expiries the host must schedule.
    pub timers: Vec<MraiTimerRequest>,
    /// Damping reuse checks the host must schedule.
    pub reuse_timers: Vec<ReuseTimerRequest>,
    /// Forwarding-table changes (`None` = route lost).
    pub fib_changes: Vec<(Prefix, Option<FibEntry>)>,
}

impl RouterOutput {
    /// An output with no effects.
    pub fn empty() -> Self {
        RouterOutput::default()
    }

    /// Returns `true` if the output carries no effects.
    pub fn is_empty(&self) -> bool {
        self.sends.is_empty()
            && self.timers.is_empty()
            && self.reuse_timers.is_empty()
            && self.fib_changes.is_empty()
    }

    /// Appends all effects from `other`.
    pub fn merge(&mut self, other: RouterOutput) {
        self.sends.extend(other.sends);
        self.timers.extend(other.timers);
        self.reuse_timers.extend(other.reuse_timers);
        self.fib_changes.extend(other.fib_changes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_output() {
        let out = RouterOutput::empty();
        assert!(out.is_empty());
        assert_eq!(out, RouterOutput::default());
    }

    #[test]
    fn merge_concatenates() {
        let mut a = RouterOutput::empty();
        a.sends
            .push((NodeId::new(1), BgpMessage::withdraw(Prefix::new(0))));
        let mut b = RouterOutput::empty();
        b.fib_changes.push((Prefix::new(0), None));
        b.timers.push(MraiTimerRequest {
            peer: NodeId::new(1),
            prefix: Prefix::new(0),
            at: SimTime::from_secs(30),
        });
        a.merge(b);
        assert_eq!(a.sends.len(), 1);
        assert_eq!(a.timers.len(), 1);
        assert_eq!(a.fib_changes.len(), 1);
        assert!(!a.is_empty());
    }

    #[test]
    fn fib_entry_via() {
        assert_eq!(FibEntry::Local.via(), None);
        assert_eq!(FibEntry::Via(NodeId::new(3)).via(), Some(NodeId::new(3)));
    }
}
