//! Destination prefixes.

use std::fmt;

use serde::{Deserialize, Serialize};

/// An opaque destination prefix identifier.
///
/// The study advertises a single destination, but the protocol engine is
/// written per-prefix so multiple destinations can be simulated at once.
/// Prefixes are plain identifiers — address structure is irrelevant to
/// path-vector dynamics.
///
/// # Examples
///
/// ```
/// use bgpsim_core::Prefix;
///
/// let p = Prefix::new(0);
/// assert_eq!(p.to_string(), "p0");
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct Prefix(u32);

impl Prefix {
    /// Creates a prefix with the given identifier.
    pub const fn new(id: u32) -> Self {
        Prefix(id)
    }

    /// The raw identifier.
    pub const fn as_u32(self) -> u32 {
        self.0
    }
}

impl From<u32> for Prefix {
    fn from(v: u32) -> Self {
        Prefix(v)
    }
}

impl fmt::Display for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_and_display() {
        let p = Prefix::from(3u32);
        assert_eq!(p.as_u32(), 3);
        assert_eq!(p.to_string(), "p3");
        assert_eq!(p, Prefix::new(3));
    }

    #[test]
    fn ordering() {
        assert!(Prefix::new(1) < Prefix::new(2));
        assert_eq!(Prefix::default(), Prefix::new(0));
    }
}
