//! The BGP decision process.
//!
//! The study configures a shortest-AS-path policy with "smaller node ID"
//! tie-breaking (§3). The decision process is pluggable through
//! [`RoutePolicy`] so other preference schemes can be studied; the
//! default [`ShortestPath`] implements the paper's rule exactly.

use std::cmp::Ordering;

use bgpsim_topology::NodeId;

use crate::aspath::AsPath;
use crate::rib::RibIn;

/// A route selection policy: a total preference order over candidate
/// routes `(advertising peer, advertised path)`.
///
/// Implementations must be total and deterministic: the simulator's
/// reproducibility depends on it.
pub trait RoutePolicy {
    /// Compares two candidates; `Ordering::Less` means `a` is
    /// *preferred* over `b`.
    fn compare(&self, a: (NodeId, &AsPath), b: (NodeId, &AsPath)) -> Ordering;

    /// Import filter: returns `true` if a route from `peer` may be used
    /// at all. The default accepts everything.
    fn accepts(&self, _peer: NodeId, _path: &AsPath) -> bool {
        true
    }

    /// Export filter: may the currently selected route — learned from
    /// `learned_from` (`None` if locally originated) — be advertised to
    /// `to`? The default exports everything; Gao–Rexford-style policies
    /// restrict peer/provider routes to customers (see
    /// [`GaoRexford`](crate::policy::GaoRexford)).
    fn export_allowed(&self, _learned_from: Option<NodeId>, _to: NodeId) -> bool {
        true
    }
}

/// Shortest AS path, ties broken by the smaller advertising-node id —
/// the policy used throughout the ICDCS'04 study.
///
/// # Examples
///
/// ```
/// use bgpsim_core::decision::{RoutePolicy, ShortestPath};
/// use bgpsim_core::AsPath;
/// use bgpsim_topology::NodeId;
/// use std::cmp::Ordering;
///
/// let short = AsPath::from_ids([5, 0]);
/// let long = AsPath::from_ids([6, 4, 0]);
/// let p = ShortestPath;
/// assert_eq!(
///     p.compare((NodeId::new(5), &short), (NodeId::new(6), &long)),
///     Ordering::Less
/// );
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShortestPath;

impl RoutePolicy for ShortestPath {
    fn compare(&self, a: (NodeId, &AsPath), b: (NodeId, &AsPath)) -> Ordering {
        a.1.len().cmp(&b.1.len()).then_with(|| a.0.cmp(&b.0))
    }
}

/// A route chosen by the decision process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Selection {
    /// The neighbor the route was learned from (the forwarding next
    /// hop).
    pub next_hop: NodeId,
    /// The local path: our own id prepended to the neighbor's path.
    pub path: AsPath,
}

/// Runs the decision process for `myself` over the Adj-RIB-In.
///
/// Candidates containing `myself` are excluded (path-based poison
/// reverse); the policy then picks the most preferred of the rest.
/// Returns `None` if no usable route exists.
///
/// # Examples
///
/// ```
/// use bgpsim_core::decision::{select_best, ShortestPath};
/// use bgpsim_core::rib::RibIn;
/// use bgpsim_core::AsPath;
/// use bgpsim_topology::NodeId;
///
/// let mut rib = RibIn::new();
/// rib.insert(NodeId::new(4), AsPath::from_ids([4, 0]));
/// rib.insert(NodeId::new(6), AsPath::from_ids([6, 4, 0]));
/// let best = select_best(&rib, NodeId::new(5), &ShortestPath).unwrap();
/// assert_eq!(best.next_hop, NodeId::new(4));
/// assert_eq!(best.path, AsPath::from_ids([5, 4, 0]));
/// ```
pub fn select_best<P: RoutePolicy>(rib: &RibIn, myself: NodeId, policy: &P) -> Option<Selection> {
    select_best_where(rib, myself, policy, |_| true)
}

/// Like [`select_best`], but additionally excludes candidates from
/// peers for which `usable` returns `false` — used by route flap
/// damping to hide suppressed routes from the decision process.
pub fn select_best_where<P, F>(
    rib: &RibIn,
    myself: NodeId,
    policy: &P,
    usable: F,
) -> Option<Selection>
where
    P: RoutePolicy,
    F: FnMut(NodeId) -> bool,
{
    select_best_entry_where(rib, myself, policy, usable).map(|(peer, path)| Selection {
        next_hop: peer,
        path: path.prepend(myself),
    })
}

/// Like [`select_best_where`], but returns the winning `(peer, stored
/// path)` entry by reference, without materializing the prepended local
/// path. The router's decision process uses this to detect "selection
/// unchanged" without allocating.
pub fn select_best_entry_where<'r, P, F>(
    rib: &'r RibIn,
    myself: NodeId,
    policy: &P,
    mut usable: F,
) -> Option<(NodeId, &'r AsPath)>
where
    P: RoutePolicy,
    F: FnMut(NodeId) -> bool,
{
    let mut best: Option<(NodeId, &AsPath)> = None;
    for (peer, path) in rib.candidates(myself) {
        if !usable(peer) || !policy.accepts(peer, path) {
            continue;
        }
        best = match best {
            None => Some((peer, path)),
            Some(cur) => {
                if policy.compare((peer, path), cur) == Ordering::Less {
                    Some((peer, path))
                } else {
                    Some(cur)
                }
            }
        };
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn shorter_path_wins() {
        let mut rib = RibIn::new();
        rib.insert(n(3), AsPath::from_ids([3, 2, 1, 0]));
        rib.insert(n(5), AsPath::from_ids([5, 4, 0]));
        let best = select_best(&rib, n(6), &ShortestPath).unwrap();
        assert_eq!(best.next_hop, n(5));
        assert_eq!(best.path, AsPath::from_ids([6, 5, 4, 0]));
    }

    #[test]
    fn equal_length_tie_breaks_on_smaller_id() {
        let mut rib = RibIn::new();
        rib.insert(n(7), AsPath::from_ids([7, 4, 0]));
        rib.insert(n(2), AsPath::from_ids([2, 4, 0]));
        let best = select_best(&rib, n(9), &ShortestPath).unwrap();
        assert_eq!(best.next_hop, n(2));
    }

    #[test]
    fn looped_candidates_excluded() {
        // Figure 1(b): after the withdrawal, node 5 only holds node 6's
        // poison-reverse-able path if it contains 5 — excluded.
        let mut rib = RibIn::new();
        rib.insert(n(6), AsPath::from_ids([6, 5, 4, 0]));
        assert_eq!(select_best(&rib, n(5), &ShortestPath), None);
    }

    #[test]
    fn empty_rib_gives_none() {
        let rib = RibIn::new();
        assert_eq!(select_best(&rib, n(1), &ShortestPath), None);
    }

    #[test]
    fn import_filter_respected() {
        struct RejectPeer(NodeId);
        impl RoutePolicy for RejectPeer {
            fn compare(&self, a: (NodeId, &AsPath), b: (NodeId, &AsPath)) -> Ordering {
                ShortestPath.compare(a, b)
            }
            fn accepts(&self, peer: NodeId, _path: &AsPath) -> bool {
                peer != self.0
            }
        }
        let mut rib = RibIn::new();
        rib.insert(n(4), AsPath::from_ids([4, 0]));
        rib.insert(n(6), AsPath::from_ids([6, 4, 0]));
        let best = select_best(&rib, n(5), &RejectPeer(n(4))).unwrap();
        assert_eq!(best.next_hop, n(6));
    }

    #[test]
    fn selection_path_starts_with_self() {
        let mut rib = RibIn::new();
        rib.insert(n(4), AsPath::from_ids([4, 0]));
        let best = select_best(&rib, n(5), &ShortestPath).unwrap();
        assert_eq!(best.path.head(), n(5));
        assert_eq!(best.path.origin(), n(0));
    }

    #[test]
    fn policy_is_deterministic_under_reordering() {
        // Insert in two different orders; result identical.
        let mut a = RibIn::new();
        a.insert(n(1), AsPath::from_ids([1, 0]));
        a.insert(n(2), AsPath::from_ids([2, 0]));
        let mut b = RibIn::new();
        b.insert(n(2), AsPath::from_ids([2, 0]));
        b.insert(n(1), AsPath::from_ids([1, 0]));
        assert_eq!(
            select_best(&a, n(9), &ShortestPath),
            select_best(&b, n(9), &ShortestPath)
        );
    }
}
