//! MRAI timer bookkeeping.
//!
//! BGP's Minimum Route Advertisement Interval spaces consecutive
//! advertisements for the same destination to the same peer by `M`
//! seconds (default 30, with jitter). The study identifies this timer as
//! *the* dominant factor in transient loop duration: a single `m`-node
//! loop can persist for up to `(m − 1) · M` seconds because each hop of
//! the resolving update can be held back a full MRAI interval (§3.2).
//!
//! Per RFC 1771 the timer applies to announcements only; the WRATE
//! enhancement (and later specification drafts) extend it to
//! withdrawals.

use bgpsim_netsim::time::SimTime;
use bgpsim_topology::NodeId;

use crate::prefix::Prefix;

/// Per-`(peer, prefix)` MRAI expiry table for one router.
///
/// A router tracks at most `degree × prefix-count` timers, so the
/// table is a vector kept sorted by key: binary-search point ops with
/// no per-entry allocation on the per-send hot path.
///
/// # Examples
///
/// ```
/// use bgpsim_core::mrai::MraiTable;
/// use bgpsim_core::Prefix;
/// use bgpsim_netsim::time::SimTime;
/// use bgpsim_topology::NodeId;
///
/// let mut t = MraiTable::new();
/// let (peer, prefix) = (NodeId::new(1), Prefix::new(0));
/// t.start(peer, prefix, SimTime::from_secs(30));
/// assert!(t.is_running(peer, prefix, SimTime::from_secs(10)));
/// assert!(!t.is_running(peer, prefix, SimTime::from_secs(30)));
/// ```
#[derive(Debug, Clone, Default)]
pub struct MraiTable {
    /// Sorted by `(peer, prefix)`.
    expiry: Vec<((NodeId, Prefix), SimTime)>,
}

impl MraiTable {
    /// Creates an empty table (all timers idle).
    pub fn new() -> Self {
        MraiTable::default()
    }

    fn position(&self, peer: NodeId, prefix: Prefix) -> Result<usize, usize> {
        self.expiry
            .binary_search_by_key(&(peer, prefix), |&(k, _)| k)
    }

    /// Starts (or restarts) the timer for `(peer, prefix)` to expire at
    /// `at`.
    pub fn start(&mut self, peer: NodeId, prefix: Prefix, at: SimTime) {
        match self.position(peer, prefix) {
            Ok(i) => self.expiry[i].1 = at,
            Err(i) => self.expiry.insert(i, ((peer, prefix), at)),
        }
    }

    /// Returns `true` if the timer is running at `now` (strictly before
    /// its expiry instant).
    pub fn is_running(&self, peer: NodeId, prefix: Prefix, now: SimTime) -> bool {
        match self.expiry(peer, prefix) {
            Some(at) => now < at,
            None => false,
        }
    }

    /// The pending expiry instant, if the timer has ever been started
    /// and not cleared.
    pub fn expiry(&self, peer: NodeId, prefix: Prefix) -> Option<SimTime> {
        self.position(peer, prefix).ok().map(|i| self.expiry[i].1)
    }

    /// Clears the timer for `(peer, prefix)` (expiry processed).
    pub fn clear(&mut self, peer: NodeId, prefix: Prefix) {
        if let Ok(i) = self.position(peer, prefix) {
            self.expiry.remove(i);
        }
    }

    /// Clears every timer involving `peer` (session down). Returns how
    /// many were cleared.
    pub fn clear_peer(&mut self, peer: NodeId) -> usize {
        let before = self.expiry.len();
        self.expiry.retain(|&((p, _), _)| p != peer);
        before - self.expiry.len()
    }

    /// Iterates over `((peer, prefix), expiry)` entries in ascending
    /// key order (checkpoint export).
    pub fn iter(&self) -> impl Iterator<Item = ((NodeId, Prefix), SimTime)> + '_ {
        self.expiry.iter().copied()
    }

    /// Rebuilds a table from exported entries (checkpoint restore);
    /// later duplicates of a key are dropped.
    pub fn from_entries(mut entries: Vec<((NodeId, Prefix), SimTime)>) -> MraiTable {
        entries.sort_by_key(|&(k, _)| k);
        entries.dedup_by_key(|e| e.0);
        MraiTable { expiry: entries }
    }

    /// Number of entries currently tracked.
    pub fn len(&self) -> usize {
        self.expiry.len()
    }

    /// Returns `true` if no timers are tracked.
    pub fn is_empty(&self) -> bool {
        self.expiry.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key() -> (NodeId, Prefix) {
        (NodeId::new(3), Prefix::new(0))
    }

    #[test]
    fn idle_by_default() {
        let t = MraiTable::new();
        let (p, d) = key();
        assert!(!t.is_running(p, d, SimTime::ZERO));
        assert_eq!(t.expiry(p, d), None);
        assert!(t.is_empty());
    }

    #[test]
    fn running_until_expiry_instant() {
        let mut t = MraiTable::new();
        let (p, d) = key();
        t.start(p, d, SimTime::from_secs(30));
        assert!(t.is_running(p, d, SimTime::from_secs(29)));
        assert!(!t.is_running(p, d, SimTime::from_secs(30)));
        assert!(!t.is_running(p, d, SimTime::from_secs(31)));
        assert_eq!(t.expiry(p, d), Some(SimTime::from_secs(30)));
    }

    #[test]
    fn restart_overwrites() {
        let mut t = MraiTable::new();
        let (p, d) = key();
        t.start(p, d, SimTime::from_secs(10));
        t.start(p, d, SimTime::from_secs(40));
        assert!(t.is_running(p, d, SimTime::from_secs(20)));
    }

    #[test]
    fn clear_makes_idle() {
        let mut t = MraiTable::new();
        let (p, d) = key();
        t.start(p, d, SimTime::from_secs(30));
        t.clear(p, d);
        assert!(!t.is_running(p, d, SimTime::ZERO));
        assert!(t.is_empty());
    }

    #[test]
    fn timers_are_per_peer_and_prefix() {
        let mut t = MraiTable::new();
        let now = SimTime::ZERO;
        t.start(NodeId::new(1), Prefix::new(0), SimTime::from_secs(30));
        assert!(t.is_running(NodeId::new(1), Prefix::new(0), now));
        assert!(!t.is_running(NodeId::new(2), Prefix::new(0), now));
        assert!(!t.is_running(NodeId::new(1), Prefix::new(1), now));
    }

    #[test]
    fn clear_peer_drops_all_prefixes() {
        let mut t = MraiTable::new();
        t.start(NodeId::new(1), Prefix::new(0), SimTime::from_secs(30));
        t.start(NodeId::new(1), Prefix::new(1), SimTime::from_secs(30));
        t.start(NodeId::new(2), Prefix::new(0), SimTime::from_secs(30));
        assert_eq!(t.clear_peer(NodeId::new(1)), 2);
        assert_eq!(t.len(), 1);
        assert!(t.is_running(NodeId::new(2), Prefix::new(0), SimTime::ZERO));
    }
}
