//! AS paths — the "vector" in path-vector routing.
//!
//! An [`AsPath`] lists the ASes a route traverses, **most recent first**:
//! the head is the node that advertised the path, the tail is the origin
//! of the prefix. The full path is what lets a receiver discard any
//! route that already contains itself — the *path-based poison reverse*
//! at the heart of the ICDCS'04 study.

use std::fmt;

use bgpsim_topology::NodeId;
use serde::{Deserialize, Serialize};

/// An AS-level route path: `(head … origin)`.
///
/// # Examples
///
/// ```
/// use bgpsim_core::AsPath;
/// use bgpsim_topology::NodeId;
///
/// // Node 6's path through 4 to origin 0, as in paper Figure 1.
/// let p = AsPath::from_ids([6, 4, 0]);
/// assert_eq!(p.head(), NodeId::new(6));
/// assert_eq!(p.origin(), NodeId::new(0));
/// assert!(p.contains(NodeId::new(4)));
/// assert_eq!(p.to_string(), "(6 4 0)");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct AsPath(Vec<NodeId>);

impl AsPath {
    /// Creates the trivial path consisting only of the origin — what the
    /// origin AS itself advertises.
    pub fn origin_only(origin: NodeId) -> Self {
        AsPath(vec![origin])
    }

    /// Creates a path from a head-to-origin node sequence.
    ///
    /// # Panics
    ///
    /// Panics if the sequence is empty.
    pub fn from_nodes<I: IntoIterator<Item = NodeId>>(nodes: I) -> Self {
        let v: Vec<NodeId> = nodes.into_iter().collect();
        assert!(!v.is_empty(), "an AS path cannot be empty");
        AsPath(v)
    }

    /// Creates a path from raw `u32` ids, head first — convenient in
    /// tests and examples.
    ///
    /// # Panics
    ///
    /// Panics if the sequence is empty.
    pub fn from_ids<I: IntoIterator<Item = u32>>(ids: I) -> Self {
        Self::from_nodes(ids.into_iter().map(NodeId::new))
    }

    /// The advertising node (first element).
    pub fn head(&self) -> NodeId {
        self.0[0]
    }

    /// The origin AS (last element).
    pub fn origin(&self) -> NodeId {
        *self.0.last().expect("paths are non-empty")
    }

    /// Number of ASes in the path.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// `false` — paths are never empty; provided for API completeness.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Returns `true` if `node` appears anywhere in the path.
    ///
    /// This is the *path-based poison reverse* test: a node discards any
    /// path that contains itself, which detects loops of arbitrary
    /// length (RIP's poison reverse only catches 2-node loops).
    pub fn contains(&self, node: NodeId) -> bool {
        self.0.contains(&node)
    }

    /// Returns a new path with `node` prepended — what a router
    /// advertises after selecting this path.
    ///
    /// # Panics
    ///
    /// Panics if `node` is already in the path: prepending it would
    /// manufacture a looped path, which a correct router never does.
    pub fn prepend(&self, node: NodeId) -> AsPath {
        assert!(
            !self.contains(node),
            "prepending {node} onto {self} would create a loop"
        );
        let mut v = Vec::with_capacity(self.0.len() + 1);
        v.push(node);
        v.extend_from_slice(&self.0);
        AsPath(v)
    }

    /// The suffix of the path starting at the first occurrence of
    /// `node`, or `None` if `node` is not in the path.
    ///
    /// The Assertion enhancement compares `suffix_from(u)` of a stored
    /// backup path against neighbor `u`'s freshly announced path to spot
    /// obsolete routes.
    pub fn suffix_from(&self, node: NodeId) -> Option<&[NodeId]> {
        let pos = self.0.iter().position(|&n| n == node)?;
        Some(&self.0[pos..])
    }

    /// The nodes of the path, head first.
    pub fn as_slice(&self) -> &[NodeId] {
        &self.0
    }

    /// Iterates over the nodes, head first.
    pub fn iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.0.iter().copied()
    }

    /// Iterates over the raw AS numbers, head first — the wire-friendly
    /// form used by trace events and other serialized observations.
    pub fn ids(&self) -> impl Iterator<Item = u32> + '_ {
        self.0.iter().map(|n| n.as_u32())
    }

    /// Returns `true` if the path visits no AS twice (a well-formed
    /// path-vector route).
    pub fn is_simple(&self) -> bool {
        let mut seen = std::collections::HashSet::with_capacity(self.0.len());
        self.0.iter().all(|n| seen.insert(n))
    }
}

/// Error returned when parsing an [`AsPath`] from text fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseAsPathError(String);

impl fmt::Display for ParseAsPathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid AS path: {}", self.0)
    }
}

impl std::error::Error for ParseAsPathError {}

impl std::str::FromStr for AsPath {
    type Err = ParseAsPathError;

    /// Parses the [`Display`](fmt::Display) format back: `"(5 6 4 0)"`
    /// (parentheses optional).
    ///
    /// # Errors
    ///
    /// Returns [`ParseAsPathError`] for empty paths or non-numeric
    /// node ids.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let inner = s
            .trim()
            .trim_start_matches('(')
            .trim_end_matches(')')
            .trim();
        if inner.is_empty() {
            return Err(ParseAsPathError("a path cannot be empty".into()));
        }
        let ids: Result<Vec<u32>, _> = inner
            .split_whitespace()
            .map(|tok| {
                tok.parse::<u32>()
                    .map_err(|e| ParseAsPathError(format!("bad node id {tok:?}: {e}")))
            })
            .collect();
        Ok(AsPath::from_ids(ids?))
    }
}

impl fmt::Display for AsPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, n) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{}", n.as_u32())?;
        }
        write!(f, ")")
    }
}

impl<'a> IntoIterator for &'a AsPath {
    type Item = NodeId;
    type IntoIter = std::iter::Copied<std::slice::Iter<'a, NodeId>>;

    fn into_iter(self) -> Self::IntoIter {
        self.0.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn origin_only_path() {
        let p = AsPath::origin_only(n(0));
        assert_eq!(p.len(), 1);
        assert_eq!(p.head(), n(0));
        assert_eq!(p.origin(), n(0));
        assert_eq!(p.to_string(), "(0)");
    }

    #[test]
    fn paper_figure_1_paths() {
        // Node 4 receives (6 4 0) from node 6 and must detect itself.
        let p = AsPath::from_ids([6, 4, 0]);
        assert!(p.contains(n(4)));
        // Node 5's long backup (5 6 4 0) also contains node 4.
        let q = AsPath::from_ids([5, 6, 4, 0]);
        assert!(q.contains(n(4)));
        assert!(!q.contains(n(3)));
    }

    #[test]
    fn prepend_builds_advertisement() {
        let p = AsPath::from_ids([4, 0]);
        let q = p.prepend(n(6));
        assert_eq!(q, AsPath::from_ids([6, 4, 0]));
        assert_eq!(p, AsPath::from_ids([4, 0]), "prepend must not mutate");
    }

    #[test]
    #[should_panic(expected = "would create a loop")]
    fn prepend_rejects_loop() {
        let p = AsPath::from_ids([6, 4, 0]);
        let _ = p.prepend(n(4));
    }

    #[test]
    #[should_panic(expected = "cannot be empty")]
    fn empty_path_rejected() {
        let _ = AsPath::from_ids([]);
    }

    #[test]
    fn suffix_from_finds_subpath() {
        let p = AsPath::from_ids([5, 6, 4, 0]);
        assert_eq!(p.suffix_from(n(6)).unwrap(), &[n(6), n(4), n(0)][..]);
        assert_eq!(p.suffix_from(n(5)).unwrap(), p.as_slice());
        assert_eq!(p.suffix_from(n(0)).unwrap(), &[n(0)][..]);
        assert_eq!(p.suffix_from(n(9)), None);
    }

    #[test]
    fn simplicity_check() {
        assert!(AsPath::from_ids([5, 6, 4, 0]).is_simple());
        assert!(!AsPath::from_ids([5, 6, 5, 0]).is_simple());
    }

    #[test]
    fn iteration_is_head_first() {
        let p = AsPath::from_ids([2, 1, 0]);
        let ids: Vec<u32> = p.iter().map(NodeId::as_u32).collect();
        assert_eq!(ids, vec![2, 1, 0]);
        let ids2: Vec<u32> = (&p).into_iter().map(NodeId::as_u32).collect();
        assert_eq!(ids2, vec![2, 1, 0]);
    }

    #[test]
    fn ids_match_iter_and_round_trip() {
        let p = AsPath::from_ids([6, 4, 0]);
        let raw: Vec<u32> = p.ids().collect();
        assert_eq!(raw, vec![6, 4, 0], "ids() is head first");
        assert_eq!(AsPath::from_ids(p.ids()), p);
        assert_eq!(p.ids().count(), p.len());
    }

    #[test]
    fn serde_round_trip() {
        let p = AsPath::from_ids([5, 6, 4, 0]);
        let json = serde_json::to_string(&p).unwrap();
        let back: AsPath = serde_json::from_str(&json).unwrap();
        assert_eq!(p, back);
    }

    #[test]
    fn display_from_str_round_trip() {
        let p = AsPath::from_ids([5, 6, 4, 0]);
        let parsed: AsPath = p.to_string().parse().unwrap();
        assert_eq!(parsed, p);
        // Parentheses optional; whitespace tolerated.
        assert_eq!("5 6 4 0".parse::<AsPath>().unwrap(), p);
        assert_eq!("  ( 5 6 4 0 ) ".parse::<AsPath>().unwrap(), p);
    }

    #[test]
    fn from_str_rejects_garbage() {
        assert!("()".parse::<AsPath>().is_err());
        assert!("".parse::<AsPath>().is_err());
        let err = "(5 x 0)".parse::<AsPath>().unwrap_err();
        assert!(err.to_string().contains("\"x\""));
    }

    proptest! {
        /// Prepending a fresh node preserves the suffix and extends the
        /// head.
        #[test]
        fn prepend_properties(ids in proptest::collection::vec(0u32..100, 1..20), new_id in 100u32..200) {
            let mut dedup = ids.clone();
            dedup.dedup();
            let base = AsPath::from_ids(dedup.iter().copied());
            let p = base.prepend(n(new_id));
            prop_assert_eq!(p.len(), base.len() + 1);
            prop_assert_eq!(p.head(), n(new_id));
            prop_assert_eq!(p.origin(), base.origin());
            prop_assert_eq!(&p.as_slice()[1..], base.as_slice());
        }

        /// `contains` agrees with a linear scan, and `suffix_from`
        /// returns a suffix anchored at the queried node.
        #[test]
        fn contains_and_suffix_agree(ids in proptest::collection::vec(0u32..30, 1..15), probe in 0u32..30) {
            let p = AsPath::from_ids(ids.iter().copied());
            let expected = ids.contains(&probe);
            prop_assert_eq!(p.contains(n(probe)), expected);
            match p.suffix_from(n(probe)) {
                Some(suffix) => {
                    prop_assert!(expected);
                    prop_assert_eq!(suffix[0], n(probe));
                    prop_assert!(p.as_slice().ends_with(suffix));
                }
                None => prop_assert!(!expected),
            }
        }
    }
}
