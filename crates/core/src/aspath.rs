//! AS paths — the "vector" in path-vector routing.
//!
//! An [`AsPath`] lists the ASes a route traverses, **most recent first**:
//! the head is the node that advertised the path, the tail is the origin
//! of the prefix. The full path is what lets a receiver discard any
//! route that already contains itself — the *path-based poison reverse*
//! at the heart of the ICDCS'04 study.
//!
//! # Representation
//!
//! Paths are stored as a shared `Arc<[NodeId]>` plus a 64-bit membership
//! filter. Cloning a path — which happens on every UPDATE fan-out, RIB
//! insertion, and decision — is a reference-count bump instead of a heap
//! copy, and [`AsPath::contains`] (the poison-reverse test, the hottest
//! predicate in the decision process) answers most negatives from a
//! single AND of the filter bit `1 << (id mod 64)` without touching the
//! node slice. The filter is derived data: it never produces false
//! negatives, and a set bit merely falls back to the linear scan.

use std::fmt;
use std::sync::Arc;

use bgpsim_topology::NodeId;
use serde::{Deserialize, Error as SerdeError, Serialize, Value};

/// The membership-filter bit for `node`: paths containing `node` always
/// have this bit set.
fn filter_bit(node: NodeId) -> u64 {
    1u64 << (node.as_u32() & 63)
}

/// An AS-level route path: `(head … origin)`.
///
/// # Examples
///
/// ```
/// use bgpsim_core::AsPath;
/// use bgpsim_topology::NodeId;
///
/// // Node 6's path through 4 to origin 0, as in paper Figure 1.
/// let p = AsPath::from_ids([6, 4, 0]);
/// assert_eq!(p.head(), NodeId::new(6));
/// assert_eq!(p.origin(), NodeId::new(0));
/// assert!(p.contains(NodeId::new(4)));
/// assert_eq!(p.to_string(), "(6 4 0)");
/// ```
#[derive(Debug, Clone)]
pub struct AsPath {
    nodes: Arc<[NodeId]>,
    /// Union of [`filter_bit`] over `nodes` — a one-word bloom filter
    /// for the poison-reverse membership test.
    filter: u64,
}

impl AsPath {
    /// Creates the trivial path consisting only of the origin — what the
    /// origin AS itself advertises.
    pub fn origin_only(origin: NodeId) -> Self {
        AsPath {
            nodes: Arc::from([origin].as_slice()),
            filter: filter_bit(origin),
        }
    }

    /// Creates a path from a head-to-origin node sequence.
    ///
    /// # Panics
    ///
    /// Panics if the sequence is empty.
    pub fn from_nodes<I: IntoIterator<Item = NodeId>>(nodes: I) -> Self {
        let v: Vec<NodeId> = nodes.into_iter().collect();
        assert!(!v.is_empty(), "an AS path cannot be empty");
        let filter = v.iter().fold(0u64, |f, &n| f | filter_bit(n));
        AsPath {
            nodes: Arc::from(v),
            filter,
        }
    }

    /// Creates a path from raw `u32` ids, head first — convenient in
    /// tests and examples.
    ///
    /// # Panics
    ///
    /// Panics if the sequence is empty.
    pub fn from_ids<I: IntoIterator<Item = u32>>(ids: I) -> Self {
        Self::from_nodes(ids.into_iter().map(NodeId::new))
    }

    /// The advertising node (first element).
    pub fn head(&self) -> NodeId {
        self.nodes[0]
    }

    /// The origin AS (last element).
    pub fn origin(&self) -> NodeId {
        *self.nodes.last().expect("paths are non-empty")
    }

    /// Number of ASes in the path.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `false` — paths are never empty; provided for API completeness.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Returns `true` if `node` appears anywhere in the path.
    ///
    /// This is the *path-based poison reverse* test: a node discards any
    /// path that contains itself, which detects loops of arbitrary
    /// length (RIP's poison reverse only catches 2-node loops). The
    /// membership filter short-circuits the common negative case in one
    /// AND; only filter hits scan the slice.
    pub fn contains(&self, node: NodeId) -> bool {
        self.filter & filter_bit(node) != 0 && self.nodes.contains(&node)
    }

    /// Returns a new path with `node` prepended — what a router
    /// advertises after selecting this path.
    ///
    /// # Panics
    ///
    /// Panics if `node` is already in the path: prepending it would
    /// manufacture a looped path, which a correct router never does.
    pub fn prepend(&self, node: NodeId) -> AsPath {
        assert!(
            !self.contains(node),
            "prepending {node} onto {self} would create a loop"
        );
        // once+chain is TrustedLen, so this collects straight into a
        // single exactly-sized Arc allocation — no Vec intermediate.
        let nodes: Arc<[NodeId]> = std::iter::once(node)
            .chain(self.nodes.iter().copied())
            .collect();
        AsPath {
            nodes,
            filter: self.filter | filter_bit(node),
        }
    }

    /// The suffix of the path starting at the first occurrence of
    /// `node`, or `None` if `node` is not in the path.
    ///
    /// The Assertion enhancement compares `suffix_from(u)` of a stored
    /// backup path against neighbor `u`'s freshly announced path to spot
    /// obsolete routes.
    pub fn suffix_from(&self, node: NodeId) -> Option<&[NodeId]> {
        if self.filter & filter_bit(node) == 0 {
            return None;
        }
        let pos = self.nodes.iter().position(|&n| n == node)?;
        Some(&self.nodes[pos..])
    }

    /// The nodes of the path, head first.
    pub fn as_slice(&self) -> &[NodeId] {
        &self.nodes
    }

    /// Iterates over the nodes, head first.
    pub fn iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes.iter().copied()
    }

    /// Iterates over the raw AS numbers, head first — the wire-friendly
    /// form used by trace events and other serialized observations.
    pub fn ids(&self) -> impl Iterator<Item = u32> + '_ {
        self.nodes.iter().map(|n| n.as_u32())
    }

    /// Returns `true` if the path visits no AS twice (a well-formed
    /// path-vector route).
    pub fn is_simple(&self) -> bool {
        let mut seen = std::collections::HashSet::with_capacity(self.nodes.len());
        self.nodes.iter().all(|n| seen.insert(n))
    }
}

impl PartialEq for AsPath {
    fn eq(&self, other: &Self) -> bool {
        // Unequal filters prove unequal node sets; shared storage proves
        // equality. Only the remaining cases compare the slices.
        self.filter == other.filter
            && (Arc::ptr_eq(&self.nodes, &other.nodes) || self.nodes == other.nodes)
    }
}

impl Eq for AsPath {}

impl PartialOrd for AsPath {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for AsPath {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Lexicographic on the node sequence, matching the previous
        // `Vec<NodeId>` derive.
        self.nodes.as_ref().cmp(other.nodes.as_ref())
    }
}

impl std::hash::Hash for AsPath {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        // Hash only the node sequence (as the `Vec<NodeId>` derive did);
        // the filter is derived data.
        self.nodes.as_ref().hash(state);
    }
}

impl Serialize for AsPath {
    fn to_value(&self) -> Value {
        // Same wire format as the former `AsPath(Vec<NodeId>)` newtype:
        // a bare array of node ids.
        self.nodes.as_ref().to_value()
    }
}

impl Deserialize for AsPath {
    fn from_value(v: &Value) -> Result<Self, SerdeError> {
        let nodes: Vec<NodeId> = Vec::from_value(v)?;
        if nodes.is_empty() {
            return Err(SerdeError::new("an AS path cannot be empty".to_string()));
        }
        Ok(AsPath::from_nodes(nodes))
    }
}

/// Error returned when parsing an [`AsPath`] from text fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseAsPathError(String);

impl fmt::Display for ParseAsPathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid AS path: {}", self.0)
    }
}

impl std::error::Error for ParseAsPathError {}

impl std::str::FromStr for AsPath {
    type Err = ParseAsPathError;

    /// Parses the [`Display`](fmt::Display) format back: `"(5 6 4 0)"`
    /// (parentheses optional).
    ///
    /// # Errors
    ///
    /// Returns [`ParseAsPathError`] for empty paths or non-numeric
    /// node ids.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let inner = s
            .trim()
            .trim_start_matches('(')
            .trim_end_matches(')')
            .trim();
        if inner.is_empty() {
            return Err(ParseAsPathError("a path cannot be empty".into()));
        }
        let ids: Result<Vec<u32>, _> = inner
            .split_whitespace()
            .map(|tok| {
                tok.parse::<u32>()
                    .map_err(|e| ParseAsPathError(format!("bad node id {tok:?}: {e}")))
            })
            .collect();
        Ok(AsPath::from_ids(ids?))
    }
}

impl fmt::Display for AsPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, n) in self.nodes.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{}", n.as_u32())?;
        }
        write!(f, ")")
    }
}

impl<'a> IntoIterator for &'a AsPath {
    type Item = NodeId;
    type IntoIter = std::iter::Copied<std::slice::Iter<'a, NodeId>>;

    fn into_iter(self) -> Self::IntoIter {
        self.nodes.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn origin_only_path() {
        let p = AsPath::origin_only(n(0));
        assert_eq!(p.len(), 1);
        assert_eq!(p.head(), n(0));
        assert_eq!(p.origin(), n(0));
        assert_eq!(p.to_string(), "(0)");
    }

    #[test]
    fn paper_figure_1_paths() {
        // Node 4 receives (6 4 0) from node 6 and must detect itself.
        let p = AsPath::from_ids([6, 4, 0]);
        assert!(p.contains(n(4)));
        // Node 5's long backup (5 6 4 0) also contains node 4.
        let q = AsPath::from_ids([5, 6, 4, 0]);
        assert!(q.contains(n(4)));
        assert!(!q.contains(n(3)));
    }

    #[test]
    fn prepend_builds_advertisement() {
        let p = AsPath::from_ids([4, 0]);
        let q = p.prepend(n(6));
        assert_eq!(q, AsPath::from_ids([6, 4, 0]));
        assert_eq!(p, AsPath::from_ids([4, 0]), "prepend must not mutate");
    }

    #[test]
    #[should_panic(expected = "would create a loop")]
    fn prepend_rejects_loop() {
        let p = AsPath::from_ids([6, 4, 0]);
        let _ = p.prepend(n(4));
    }

    #[test]
    #[should_panic(expected = "cannot be empty")]
    fn empty_path_rejected() {
        let _ = AsPath::from_ids([]);
    }

    #[test]
    fn clone_shares_storage() {
        let p = AsPath::from_ids([5, 6, 4, 0]);
        let q = p.clone();
        assert_eq!(p, q);
        assert!(
            std::ptr::eq(p.as_slice().as_ptr(), q.as_slice().as_ptr()),
            "clones must share the node storage"
        );
    }

    #[test]
    fn filter_aliasing_still_answers_correctly() {
        // Ids 1 and 65 share filter bit 1: the filter alone cannot
        // distinguish them, so contains must fall through to the scan.
        let p = AsPath::from_ids([65, 0]);
        assert!(p.contains(n(65)));
        assert!(!p.contains(n(1)), "aliased bit must not fake membership");
        assert_eq!(p.suffix_from(n(1)), None);
    }

    #[test]
    fn suffix_from_finds_subpath() {
        let p = AsPath::from_ids([5, 6, 4, 0]);
        assert_eq!(p.suffix_from(n(6)).unwrap(), &[n(6), n(4), n(0)][..]);
        assert_eq!(p.suffix_from(n(5)).unwrap(), p.as_slice());
        assert_eq!(p.suffix_from(n(0)).unwrap(), &[n(0)][..]);
        assert_eq!(p.suffix_from(n(9)), None);
    }

    #[test]
    fn simplicity_check() {
        assert!(AsPath::from_ids([5, 6, 4, 0]).is_simple());
        assert!(!AsPath::from_ids([5, 6, 5, 0]).is_simple());
    }

    #[test]
    fn iteration_is_head_first() {
        let p = AsPath::from_ids([2, 1, 0]);
        let ids: Vec<u32> = p.iter().map(NodeId::as_u32).collect();
        assert_eq!(ids, vec![2, 1, 0]);
        let ids2: Vec<u32> = (&p).into_iter().map(NodeId::as_u32).collect();
        assert_eq!(ids2, vec![2, 1, 0]);
    }

    #[test]
    fn ids_match_iter_and_round_trip() {
        let p = AsPath::from_ids([6, 4, 0]);
        let raw: Vec<u32> = p.ids().collect();
        assert_eq!(raw, vec![6, 4, 0], "ids() is head first");
        assert_eq!(AsPath::from_ids(p.ids()), p);
        assert_eq!(p.ids().count(), p.len());
    }

    #[test]
    fn serde_round_trip() {
        let p = AsPath::from_ids([5, 6, 4, 0]);
        let json = serde_json::to_string(&p).unwrap();
        let back: AsPath = serde_json::from_str(&json).unwrap();
        assert_eq!(p, back);
    }

    #[test]
    fn serde_wire_format_is_bare_id_array() {
        // The interned representation must keep the newtype-era wire
        // format: a bare array of node ids, nothing else.
        let p = AsPath::from_ids([5, 6, 4, 0]);
        assert_eq!(
            serde_json::to_string(&p).unwrap(),
            serde_json::to_string(&vec![5u32, 6, 4, 0]).unwrap()
        );
        assert!(serde_json::from_str::<AsPath>("[]").is_err());
    }

    #[test]
    fn ordering_matches_node_sequence() {
        let a = AsPath::from_ids([1, 0]);
        let b = AsPath::from_ids([1, 2]);
        let c = AsPath::from_ids([1, 0, 3]);
        assert!(a < b, "lexicographic on ids");
        assert!(a < c, "prefix sorts before its extension");
        assert_eq!(a.cmp(&a.clone()), std::cmp::Ordering::Equal);
    }

    #[test]
    fn display_from_str_round_trip() {
        let p = AsPath::from_ids([5, 6, 4, 0]);
        let parsed: AsPath = p.to_string().parse().unwrap();
        assert_eq!(parsed, p);
        // Parentheses optional; whitespace tolerated.
        assert_eq!("5 6 4 0".parse::<AsPath>().unwrap(), p);
        assert_eq!("  ( 5 6 4 0 ) ".parse::<AsPath>().unwrap(), p);
    }

    #[test]
    fn from_str_rejects_garbage() {
        assert!("()".parse::<AsPath>().is_err());
        assert!("".parse::<AsPath>().is_err());
        let err = "(5 x 0)".parse::<AsPath>().unwrap_err();
        assert!(err.to_string().contains("\"x\""));
    }

    proptest! {
        /// Prepending a fresh node preserves the suffix and extends the
        /// head.
        #[test]
        fn prepend_properties(ids in proptest::collection::vec(0u32..100, 1..20), new_id in 100u32..200) {
            let mut dedup = ids.clone();
            dedup.dedup();
            let base = AsPath::from_ids(dedup.iter().copied());
            let p = base.prepend(n(new_id));
            prop_assert_eq!(p.len(), base.len() + 1);
            prop_assert_eq!(p.head(), n(new_id));
            prop_assert_eq!(p.origin(), base.origin());
            prop_assert_eq!(&p.as_slice()[1..], base.as_slice());
        }

        /// `contains` agrees with a linear scan (exercising filter-bit
        /// aliasing: ids 0..30 and 64..94 collide mod 64), and
        /// `suffix_from` returns a suffix anchored at the queried node.
        #[test]
        fn contains_and_suffix_agree(
            raw_ids in proptest::collection::vec(0u32..60, 1..15),
            raw_probe in 0u32..60,
        ) {
            // Fold the upper half of the range into 64..94 so generated
            // ids collide with the lower half modulo 64.
            let alias = |x: u32| if x >= 30 { x + 34 } else { x };
            let ids: Vec<u32> = raw_ids.iter().map(|&x| alias(x)).collect();
            let probe = alias(raw_probe);
            let p = AsPath::from_ids(ids.iter().copied());
            let expected = ids.contains(&probe);
            prop_assert_eq!(p.contains(n(probe)), expected);
            match p.suffix_from(n(probe)) {
                Some(suffix) => {
                    prop_assert!(expected);
                    prop_assert_eq!(suffix[0], n(probe));
                    prop_assert!(p.as_slice().ends_with(suffix));
                }
                None => prop_assert!(!expected),
            }
        }

        /// Ordering and equality agree with the reference `Vec<NodeId>`
        /// semantics the old representation derived.
        #[test]
        fn ord_matches_vec_reference(
            a in proptest::collection::vec(0u32..10, 1..6),
            b in proptest::collection::vec(0u32..10, 1..6),
        ) {
            let pa = AsPath::from_ids(a.iter().copied());
            let pb = AsPath::from_ids(b.iter().copied());
            prop_assert_eq!(pa.cmp(&pb), a.cmp(&b));
            prop_assert_eq!(pa == pb, a == b);
        }
    }
}
