//! Route flap damping (RFC 2439) — an extension beyond the paper.
//!
//! The MRAI timer the paper studies is BGP's *rate limiter*; route
//! flap damping is its *stability filter*: each flap of a route adds a
//! penalty that decays exponentially, and a route whose penalty
//! crosses the suppress threshold is ignored by the decision process
//! until the penalty decays below the reuse threshold.
//!
//! Damping interacts with transient looping in the opposite way from
//! MRAI: it removes *unstable* paths from consideration entirely
//! (fewer stale candidates), at the price of reachability during the
//! suppression window.

use std::collections::BTreeMap;

use bgpsim_netsim::time::{SimDuration, SimTime};
use bgpsim_topology::NodeId;

use crate::prefix::Prefix;

/// Damping parameters, defaulting to the classic Cisco values.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DampingConfig {
    /// Penalty added per withdrawal flap (default 1000).
    pub withdrawal_penalty: f64,
    /// Penalty added when an announcement changes attributes, i.e. the
    /// advertised path differs from the previous one (default 500).
    pub attribute_change_penalty: f64,
    /// Suppress the route when the penalty exceeds this (default 2000).
    pub suppress_threshold: f64,
    /// Reuse the route when the penalty decays below this (default 750).
    pub reuse_threshold: f64,
    /// Exponential decay half-life (default 15 minutes).
    pub half_life: SimDuration,
    /// Penalty ceiling (default 16 000), bounding the maximum
    /// suppression time.
    pub max_penalty: f64,
}

impl Default for DampingConfig {
    fn default() -> Self {
        DampingConfig {
            withdrawal_penalty: 1000.0,
            attribute_change_penalty: 500.0,
            suppress_threshold: 2000.0,
            reuse_threshold: 750.0,
            half_life: SimDuration::from_secs(15 * 60),
            max_penalty: 16_000.0,
        }
    }
}

impl DampingConfig {
    /// Validates the thresholds.
    ///
    /// # Panics
    ///
    /// Panics if the thresholds are not `0 < reuse < suppress <= max`
    /// or the half-life is zero.
    pub fn validate(&self) {
        assert!(
            self.reuse_threshold > 0.0
                && self.reuse_threshold < self.suppress_threshold
                && self.suppress_threshold <= self.max_penalty,
            "damping thresholds must satisfy 0 < reuse < suppress <= max"
        );
        assert!(!self.half_life.is_zero(), "half-life must be positive");
    }
}

/// The kind of flap observed for a route.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlapKind {
    /// The route was withdrawn.
    Withdrawal,
    /// The route was re-announced with a different path.
    AttributeChange,
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    penalty: f64,
    updated_at: SimTime,
    suppressed: bool,
}

/// The raw damping state of one `(peer, prefix)` route, as exported by
/// [`DampingTable::export_entries`] for checkpointing.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DampingEntryState {
    /// Undecayed penalty as of `updated_at`.
    pub penalty: f64,
    /// The instant the penalty was last updated.
    pub updated_at: SimTime,
    /// Whether the route is currently suppressed.
    pub suppressed: bool,
}

/// Per-`(peer, prefix)` flap-damping state for one router.
///
/// # Examples
///
/// ```
/// use bgpsim_core::damping::{DampingConfig, DampingTable, FlapKind};
/// use bgpsim_core::Prefix;
/// use bgpsim_netsim::time::SimTime;
/// use bgpsim_topology::NodeId;
///
/// let mut table = DampingTable::new(DampingConfig::default());
/// let (peer, prefix) = (NodeId::new(1), Prefix::new(0));
/// let t = SimTime::ZERO;
/// table.record_flap(peer, prefix, FlapKind::Withdrawal, t);
/// assert!(!table.is_suppressed(peer, prefix, t)); // 1000 < 2000
/// table.record_flap(peer, prefix, FlapKind::Withdrawal, t);
/// assert!(table.is_suppressed(peer, prefix, t)); // 2000 reached
/// ```
#[derive(Debug, Clone)]
pub struct DampingTable {
    config: DampingConfig,
    entries: BTreeMap<(NodeId, Prefix), Entry>,
}

impl DampingTable {
    /// Creates an empty table.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(config: DampingConfig) -> Self {
        config.validate();
        DampingTable {
            config,
            entries: BTreeMap::new(),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &DampingConfig {
        &self.config
    }

    /// The decayed penalty of `(peer, prefix)` at `now`.
    pub fn penalty(&self, peer: NodeId, prefix: Prefix, now: SimTime) -> f64 {
        match self.entries.get(&(peer, prefix)) {
            Some(e) => decay(e.penalty, e.updated_at, now, self.config.half_life),
            None => 0.0,
        }
    }

    /// Records a flap and returns `true` if the route just became
    /// suppressed.
    pub fn record_flap(
        &mut self,
        peer: NodeId,
        prefix: Prefix,
        kind: FlapKind,
        now: SimTime,
    ) -> bool {
        let add = match kind {
            FlapKind::Withdrawal => self.config.withdrawal_penalty,
            FlapKind::AttributeChange => self.config.attribute_change_penalty,
        };
        let entry = self.entries.entry((peer, prefix)).or_insert(Entry {
            penalty: 0.0,
            updated_at: now,
            suppressed: false,
        });
        let current = decay(entry.penalty, entry.updated_at, now, self.config.half_life);
        entry.penalty = (current + add).min(self.config.max_penalty);
        entry.updated_at = now;
        let was = entry.suppressed;
        if entry.penalty >= self.config.suppress_threshold {
            entry.suppressed = true;
        }
        entry.suppressed && !was
    }

    /// Whether `(peer, prefix)` is currently suppressed. Reading at a
    /// later time accounts for decay (a suppressed route whose penalty
    /// has fallen below the reuse threshold is reusable).
    pub fn is_suppressed(&self, peer: NodeId, prefix: Prefix, now: SimTime) -> bool {
        match self.entries.get(&(peer, prefix)) {
            Some(e) if e.suppressed => {
                decay(e.penalty, e.updated_at, now, self.config.half_life)
                    >= self.config.reuse_threshold
            }
            _ => false,
        }
    }

    /// Clears the suppressed flag if the penalty has decayed below the
    /// reuse threshold; returns `true` if the route became reusable.
    pub fn try_reuse(&mut self, peer: NodeId, prefix: Prefix, now: SimTime) -> bool {
        let config = self.config;
        if let Some(e) = self.entries.get_mut(&(peer, prefix)) {
            if e.suppressed
                && decay(e.penalty, e.updated_at, now, config.half_life) < config.reuse_threshold
            {
                e.suppressed = false;
                return true;
            }
        }
        false
    }

    /// The time at which a currently suppressed route decays to its
    /// reuse threshold, or `None` if it is not suppressed.
    pub fn reuse_time(&self, peer: NodeId, prefix: Prefix) -> Option<SimTime> {
        let e = self.entries.get(&(peer, prefix))?;
        if !e.suppressed {
            return None;
        }
        if e.penalty < self.config.reuse_threshold {
            return Some(e.updated_at);
        }
        let ratio = e.penalty / self.config.reuse_threshold;
        let dt = self.config.half_life.as_secs_f64() * ratio.log2();
        Some(e.updated_at + SimDuration::from_secs_f64(dt))
    }

    /// Drops all state for `peer` (session reset clears damping).
    pub fn clear_peer(&mut self, peer: NodeId) {
        self.entries.retain(|&(p, _), _| p != peer);
    }

    /// Exports the per-route state in ascending key order (checkpoint
    /// export).
    pub fn export_entries(&self) -> Vec<((NodeId, Prefix), DampingEntryState)> {
        self.entries
            .iter()
            .map(|(&k, e)| {
                (
                    k,
                    DampingEntryState {
                        penalty: e.penalty,
                        updated_at: e.updated_at,
                        suppressed: e.suppressed,
                    },
                )
            })
            .collect()
    }

    /// Rebuilds a table from exported entries (checkpoint restore).
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn from_entries(
        config: DampingConfig,
        entries: Vec<((NodeId, Prefix), DampingEntryState)>,
    ) -> DampingTable {
        config.validate();
        DampingTable {
            config,
            entries: entries
                .into_iter()
                .map(|(k, e)| {
                    (
                        k,
                        Entry {
                            penalty: e.penalty,
                            updated_at: e.updated_at,
                            suppressed: e.suppressed,
                        },
                    )
                })
                .collect(),
        }
    }
}

fn decay(penalty: f64, since: SimTime, now: SimTime, half_life: SimDuration) -> f64 {
    let dt = now.saturating_duration_since(since).as_secs_f64();
    penalty * 0.5f64.powf(dt / half_life.as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key() -> (NodeId, Prefix) {
        (NodeId::new(1), Prefix::new(0))
    }

    fn table() -> DampingTable {
        DampingTable::new(DampingConfig::default())
    }

    #[test]
    fn penalty_accumulates_and_decays() {
        let mut t = table();
        let (p, d) = key();
        t.record_flap(p, d, FlapKind::Withdrawal, SimTime::ZERO);
        assert_eq!(t.penalty(p, d, SimTime::ZERO), 1000.0);
        // One half-life later: 500.
        let later = SimTime::from_secs(15 * 60);
        assert!((t.penalty(p, d, later) - 500.0).abs() < 1e-6);
        // Two half-lives: 250.
        let later2 = SimTime::from_secs(30 * 60);
        assert!((t.penalty(p, d, later2) - 250.0).abs() < 1e-6);
    }

    #[test]
    fn suppression_at_threshold() {
        let mut t = table();
        let (p, d) = key();
        assert!(!t.record_flap(p, d, FlapKind::Withdrawal, SimTime::ZERO));
        let newly = t.record_flap(p, d, FlapKind::Withdrawal, SimTime::ZERO);
        assert!(newly, "second withdrawal crosses 2000");
        assert!(t.is_suppressed(p, d, SimTime::ZERO));
        // Recording more flaps doesn't report "newly suppressed" again.
        assert!(!t.record_flap(p, d, FlapKind::Withdrawal, SimTime::ZERO));
    }

    #[test]
    fn attribute_changes_penalize_less() {
        let mut t = table();
        let (p, d) = key();
        for _ in 0..3 {
            t.record_flap(p, d, FlapKind::AttributeChange, SimTime::ZERO);
        }
        assert_eq!(t.penalty(p, d, SimTime::ZERO), 1500.0);
        assert!(!t.is_suppressed(p, d, SimTime::ZERO));
    }

    #[test]
    fn penalty_is_capped() {
        let mut t = table();
        let (p, d) = key();
        for _ in 0..100 {
            t.record_flap(p, d, FlapKind::Withdrawal, SimTime::ZERO);
        }
        assert_eq!(t.penalty(p, d, SimTime::ZERO), 16_000.0);
    }

    #[test]
    fn reuse_after_decay() {
        let mut t = table();
        let (p, d) = key();
        t.record_flap(p, d, FlapKind::Withdrawal, SimTime::ZERO);
        t.record_flap(p, d, FlapKind::Withdrawal, SimTime::ZERO);
        assert!(t.is_suppressed(p, d, SimTime::ZERO));
        let reuse_at = t.reuse_time(p, d).expect("suppressed");
        // 2000 → 750 takes h * log2(2000/750) ≈ 1.415 half-lives.
        let expected = 15.0 * 60.0 * (2000.0f64 / 750.0).log2();
        assert!((reuse_at.as_secs_f64() - expected).abs() < 1.0);
        // Just before: still suppressed; just after: reusable.
        let before = reuse_at - SimDuration::from_secs(10);
        let after = reuse_at + SimDuration::from_secs(10);
        assert!(t.is_suppressed(p, d, before));
        assert!(!t.is_suppressed(p, d, after));
        assert!(!t.try_reuse(p, d, before));
        assert!(t.try_reuse(p, d, after));
        assert!(!t.is_suppressed(p, d, after));
    }

    #[test]
    fn unsuppressed_routes_have_no_reuse_time() {
        let mut t = table();
        let (p, d) = key();
        assert_eq!(t.reuse_time(p, d), None);
        t.record_flap(p, d, FlapKind::Withdrawal, SimTime::ZERO);
        assert_eq!(t.reuse_time(p, d), None);
    }

    #[test]
    fn clear_peer_wipes_state() {
        let mut t = table();
        let (p, d) = key();
        t.record_flap(p, d, FlapKind::Withdrawal, SimTime::ZERO);
        t.record_flap(p, d, FlapKind::Withdrawal, SimTime::ZERO);
        t.clear_peer(p);
        assert!(!t.is_suppressed(p, d, SimTime::ZERO));
        assert_eq!(t.penalty(p, d, SimTime::ZERO), 0.0);
    }

    #[test]
    fn flaps_spread_in_time_decay_between() {
        let mut t = table();
        let (p, d) = key();
        t.record_flap(p, d, FlapKind::Withdrawal, SimTime::ZERO);
        // A withdrawal one half-life later: 500 + 1000 = 1500 < 2000.
        let later = SimTime::from_secs(15 * 60);
        t.record_flap(p, d, FlapKind::Withdrawal, later);
        assert!(!t.is_suppressed(p, d, later));
        assert!((t.penalty(p, d, later) - 1500.0).abs() < 1e-6);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Whatever flap sequence arrives, the invariants hold:
            /// penalty stays within [0, max]; a suppressed route reads
            /// penalty ≥ reuse threshold at that instant; and with no
            /// flaps the penalty only decays.
            #[test]
            fn damping_invariants(
                flaps in proptest::collection::vec((0u64..3600, any::<bool>()), 1..60)
            ) {
                let mut table = DampingTable::new(DampingConfig::default());
                let (p, d) = (NodeId::new(1), Prefix::new(0));
                let mut times: Vec<(u64, bool)> = flaps;
                times.sort_by_key(|&(t, _)| t);
                let mut prev_penalty_at: Option<(SimTime, f64)> = None;
                for (secs, withdrawal) in times {
                    let now = SimTime::from_secs(secs);
                    // Between flaps, penalty only decays.
                    if let Some((t0, p0)) = prev_penalty_at {
                        if now >= t0 {
                            prop_assert!(table.penalty(p, d, now) <= p0 + 1e-9);
                        }
                    }
                    let kind = if withdrawal {
                        FlapKind::Withdrawal
                    } else {
                        FlapKind::AttributeChange
                    };
                    table.record_flap(p, d, kind, now);
                    let pen = table.penalty(p, d, now);
                    prop_assert!(pen >= 0.0);
                    prop_assert!(pen <= DampingConfig::default().max_penalty + 1e-9);
                    if table.is_suppressed(p, d, now) {
                        prop_assert!(
                            pen >= DampingConfig::default().reuse_threshold - 1e-9
                        );
                    }
                    prev_penalty_at = Some((now, pen));
                }
                // Far enough in the future, everything is reusable.
                let far = SimTime::from_secs(1_000_000);
                prop_assert!(table.penalty(p, d, far) < 1.0);
                prop_assert!(!table.is_suppressed(p, d, far));
            }

            /// The analytic reuse time agrees with is_suppressed: just
            /// before it the route is suppressed, just after it is not.
            #[test]
            fn reuse_time_is_the_boundary(extra_flaps in 1usize..8) {
                let mut table = DampingTable::new(DampingConfig::default());
                let (p, d) = (NodeId::new(1), Prefix::new(0));
                for _ in 0..(1 + extra_flaps) {
                    table.record_flap(p, d, FlapKind::Withdrawal, SimTime::ZERO);
                }
                prop_assume!(table.is_suppressed(p, d, SimTime::ZERO));
                let reuse = table.reuse_time(p, d).expect("suppressed");
                let eps = SimDuration::from_secs(5);
                prop_assert!(table.is_suppressed(p, d, reuse - eps));
                prop_assert!(!table.is_suppressed(p, d, reuse + eps));
            }
        }
    }

    #[test]
    #[should_panic(expected = "thresholds")]
    fn invalid_config_rejected() {
        let _ = DampingTable::new(DampingConfig {
            reuse_threshold: 5000.0,
            ..DampingConfig::default()
        });
    }
}
