//! Protocol configuration.
//!
//! Defaults follow the simulation settings of the ICDCS'04 study
//! (§4.1–§4.2): MRAI of 30 s with SSFNet-style jitter, per-message
//! processing delay uniform in `[0.1 s, 0.5 s]`, and a 2 ms link delay.

use bgpsim_netsim::time::SimDuration;

use crate::damping::DampingConfig;

/// Multiplicative jitter applied to each MRAI interval.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Jitter {
    /// Lower bound as a fraction of the base interval.
    pub lo: f64,
    /// Upper bound as a fraction of the base interval.
    pub hi: f64,
}

impl Jitter {
    /// No jitter: every interval is exactly the base value.
    pub const NONE: Jitter = Jitter { lo: 1.0, hi: 1.0 };

    /// SSFNet's default: uniform in `[0.75 · M, M]`.
    pub const SSFNET: Jitter = Jitter { lo: 0.75, hi: 1.0 };

    /// Validates the jitter bounds.
    ///
    /// # Panics
    ///
    /// Panics if the bounds are not `0 <= lo <= hi` and finite.
    pub fn validate(&self) {
        assert!(
            self.lo.is_finite() && self.hi.is_finite() && self.lo >= 0.0 && self.lo <= self.hi,
            "invalid jitter bounds [{}, {}]",
            self.lo,
            self.hi
        );
    }
}

/// Which convergence enhancements are active.
///
/// The four mechanisms compared in §5 of the paper. They compose freely
/// in the implementation; the paper (and our experiments) evaluate them
/// one at a time against standard BGP.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub struct Enhancements {
    /// Sender-side loop detection (Labovitz et al.): replace an
    /// announcement the receiver would discard (its own id is in the
    /// path) with an immediate withdrawal.
    pub ssld: bool,
    /// Withdrawal rate limiting: the MRAI timer also applies to
    /// withdrawals (adopted by the post-RFC1771 specification drafts).
    pub wrate: bool,
    /// The Assertion approach (Pei et al.): cross-check stored backup
    /// paths against each incoming update and drop obsolete ones.
    pub assertion: bool,
    /// Ghost Flushing (Bremler-Barr et al.): when the best path worsens
    /// and MRAI blocks the announcement, send an immediate withdrawal to
    /// flush the stale route.
    pub ghost_flushing: bool,
}

impl Enhancements {
    /// Standard BGP: everything off.
    pub fn standard() -> Self {
        Enhancements::default()
    }

    /// Only SSLD enabled.
    pub fn ssld() -> Self {
        Enhancements {
            ssld: true,
            ..Default::default()
        }
    }

    /// Only WRATE enabled.
    pub fn wrate() -> Self {
        Enhancements {
            wrate: true,
            ..Default::default()
        }
    }

    /// Only Assertion enabled.
    pub fn assertion() -> Self {
        Enhancements {
            assertion: true,
            ..Default::default()
        }
    }

    /// Only Ghost Flushing enabled.
    pub fn ghost_flushing() -> Self {
        Enhancements {
            ghost_flushing: true,
            ..Default::default()
        }
    }

    /// A short label for reports ("BGP", "SSLD", …).
    pub fn label(&self) -> &'static str {
        match (self.ssld, self.wrate, self.assertion, self.ghost_flushing) {
            (false, false, false, false) => "BGP",
            (true, false, false, false) => "SSLD",
            (false, true, false, false) => "WRATE",
            (false, false, true, false) => "Assertion",
            (false, false, false, true) => "GhostFlush",
            _ => "Combined",
        }
    }

    /// The five variants compared in the paper's §5, standard BGP first.
    pub fn paper_variants() -> [Enhancements; 5] {
        [
            Enhancements::standard(),
            Enhancements::ssld(),
            Enhancements::wrate(),
            Enhancements::assertion(),
            Enhancements::ghost_flushing(),
        ]
    }
}

/// Full per-router protocol configuration.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct BgpConfig {
    /// The Minimum Route Advertisement Interval base value (default
    /// 30 s), applied per `(peer, prefix)`.
    pub mrai: SimDuration,
    /// Jitter applied to each MRAI interval.
    pub mrai_jitter: Jitter,
    /// Active convergence enhancements.
    pub enhancements: Enhancements,
    /// Route flap damping (RFC 2439), disabled by default — an
    /// extension beyond the paper's mechanisms.
    pub damping: Option<DampingConfig>,
}

impl Default for BgpConfig {
    fn default() -> Self {
        BgpConfig {
            mrai: SimDuration::from_secs(30),
            mrai_jitter: Jitter::SSFNET,
            enhancements: Enhancements::standard(),
            damping: None,
        }
    }
}

impl BgpConfig {
    /// The paper's baseline configuration.
    pub fn paper_default() -> Self {
        BgpConfig::default()
    }

    /// Returns a copy with a different MRAI value.
    pub fn with_mrai(mut self, mrai: SimDuration) -> Self {
        self.mrai = mrai;
        self
    }

    /// Returns a copy with different jitter.
    pub fn with_jitter(mut self, jitter: Jitter) -> Self {
        self.mrai_jitter = jitter;
        self
    }

    /// Returns a copy with the given enhancements.
    pub fn with_enhancements(mut self, enh: Enhancements) -> Self {
        self.enhancements = enh;
        self
    }

    /// Returns a copy with route flap damping enabled.
    pub fn with_damping(mut self, damping: DampingConfig) -> Self {
        self.damping = Some(damping);
        self
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics if the jitter bounds are invalid.
    pub fn validate(&self) {
        self.mrai_jitter.validate();
        if let Some(d) = &self.damping {
            d.validate();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = BgpConfig::paper_default();
        assert_eq!(c.mrai, SimDuration::from_secs(30));
        assert_eq!(c.mrai_jitter, Jitter::SSFNET);
        assert_eq!(c.enhancements, Enhancements::standard());
        c.validate();
    }

    #[test]
    fn builder_style_updates() {
        let c = BgpConfig::default()
            .with_mrai(SimDuration::from_secs(5))
            .with_jitter(Jitter::NONE)
            .with_enhancements(Enhancements::ssld());
        assert_eq!(c.mrai, SimDuration::from_secs(5));
        assert_eq!(c.mrai_jitter, Jitter::NONE);
        assert!(c.enhancements.ssld);
    }

    #[test]
    fn labels() {
        assert_eq!(Enhancements::standard().label(), "BGP");
        assert_eq!(Enhancements::ssld().label(), "SSLD");
        assert_eq!(Enhancements::wrate().label(), "WRATE");
        assert_eq!(Enhancements::assertion().label(), "Assertion");
        assert_eq!(Enhancements::ghost_flushing().label(), "GhostFlush");
        let combined = Enhancements {
            ssld: true,
            wrate: true,
            ..Default::default()
        };
        assert_eq!(combined.label(), "Combined");
    }

    #[test]
    fn paper_variants_are_distinct() {
        let vs = Enhancements::paper_variants();
        for (i, a) in vs.iter().enumerate() {
            for b in &vs[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    #[should_panic(expected = "invalid jitter")]
    fn bad_jitter_rejected() {
        Jitter { lo: 1.5, hi: 1.0 }.validate();
    }
}
