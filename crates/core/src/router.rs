//! The BGP router state machine.
//!
//! [`Router`] implements the path-vector protocol of the ICDCS'04 study:
//! per-peer Adj-RIB-In, the decision process with path-based poison
//! reverse, per-`(peer, prefix)` MRAI timers (announcements only, per
//! RFC 1771), explicit withdrawals, and the four convergence
//! enhancements (SSLD, WRATE, Assertion, Ghost Flushing) as
//! configuration flags.
//!
//! The router is **simulator-agnostic**: each entry point takes the
//! current time and returns a [`RouterOutput`] describing messages to
//! send and timers to schedule. The host (crate `bgpsim-sim`) applies
//! link delays, models the serialized message-processing queue, and
//! calls back on timer expiry.

use std::collections::{BTreeMap, BTreeSet};

/// A router's last advertisement per `(peer, prefix)`, kept as a vector
/// sorted by key: at most `degree × prefix-count` entries, so binary
/// search beats a tree on this per-sync path.
#[derive(Debug, Default)]
struct AdjOut {
    entries: Vec<((NodeId, Prefix), AsPath)>,
}

impl AdjOut {
    fn position(&self, key: (NodeId, Prefix)) -> Result<usize, usize> {
        self.entries.binary_search_by_key(&key, |&(k, _)| k)
    }

    fn get(&self, key: (NodeId, Prefix)) -> Option<&AsPath> {
        self.position(key).ok().map(|i| &self.entries[i].1)
    }

    fn insert(&mut self, key: (NodeId, Prefix), path: AsPath) {
        match self.position(key) {
            Ok(i) => self.entries[i].1 = path,
            Err(i) => self.entries.insert(i, (key, path)),
        }
    }

    fn remove(&mut self, key: (NodeId, Prefix)) {
        if let Ok(i) = self.position(key) {
            self.entries.remove(i);
        }
    }
}

use bgpsim_netsim::rng::SimRng;
use bgpsim_netsim::time::SimTime;
use bgpsim_topology::NodeId;

use crate::aspath::AsPath;
use crate::config::BgpConfig;
use crate::damping::{DampingEntryState, DampingTable, FlapKind};
use crate::decision::{select_best_entry_where, RoutePolicy, ShortestPath};
use crate::message::BgpMessage;
use crate::mrai::MraiTable;
use crate::output::{FibEntry, LocRoute, MraiTimerRequest, ReuseTimerRequest, RouterOutput};
use crate::prefix::Prefix;
use crate::rib::RibIn;

/// Counters describing a router's protocol activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct RouterStats {
    /// Announcements sent.
    pub announcements_sent: u64,
    /// Withdrawals sent (including SSLD conversions and ghost flushes).
    pub withdrawals_sent: u64,
    /// Messages processed.
    pub messages_received: u64,
    /// Announcements converted to withdrawals by SSLD.
    pub ssld_conversions: u64,
    /// Immediate withdrawals emitted by Ghost Flushing.
    pub ghost_flushes: u64,
    /// Adj-RIB-In entries purged by the Assertion check.
    pub assertion_removals: u64,
    /// Decision-process runs that changed the selected route.
    pub route_changes: u64,
    /// Routes suppressed by flap damping (RFC 2439 extension).
    pub damping_suppressions: u64,
    /// Decision-process runs, whether or not the selection changed.
    pub decisions_run: u64,
}

impl RouterStats {
    /// Total messages sent.
    pub fn messages_sent(&self) -> u64 {
        self.announcements_sent + self.withdrawals_sent
    }
}

/// A full capture of a [`Router`]'s state for deterministic
/// checkpointing: every protocol table exported as a sorted vector of
/// plain data.
///
/// The route policy is **not** captured — it is stateless configuration
/// (e.g. `ShortestPath`), so [`Router::from_state`] takes it as an
/// argument, exactly like [`Router::with_policy`] does.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RouterState {
    /// This router's node id.
    pub id: NodeId,
    /// Active peers, ascending.
    pub peers: Vec<NodeId>,
    /// The protocol configuration.
    pub config: BgpConfig,
    /// Per-prefix Adj-RIB-In contents. Empty tables are included: their
    /// presence decides which prefixes later session events re-decide,
    /// so dropping them would skew decision counters after restore.
    pub ribs: Vec<(Prefix, Vec<(NodeId, AsPath)>)>,
    /// Locally originated prefixes.
    pub originated: Vec<Prefix>,
    /// Current selection per prefix.
    pub loc: Vec<(Prefix, LocRoute)>,
    /// Last advertisement sent per `(peer, prefix)`.
    pub adj_out: Vec<((NodeId, Prefix), AsPath)>,
    /// Pending MRAI expiry per `(peer, prefix)`.
    pub mrai: Vec<((NodeId, Prefix), SimTime)>,
    /// Flap-damping state per `(peer, prefix)`; empty when damping is
    /// disabled in `config`.
    pub damping: Vec<((NodeId, Prefix), DampingEntryState)>,
    /// Activity counters.
    pub stats: RouterStats,
}

/// A BGP speaker for one AS.
///
/// # Examples
///
/// Reproducing the 2-node loop setup of the paper's Figure 1: node 4
/// withdraws, and node 5 — still holding node 6's stale path — switches
/// to it.
///
/// ```
/// use bgpsim_core::prelude::*;
/// use bgpsim_netsim::rng::SimRng;
/// use bgpsim_netsim::time::SimTime;
/// use bgpsim_topology::NodeId;
///
/// let cfg = BgpConfig::default();
/// let mut rng = SimRng::new(1);
/// let n = NodeId::new;
/// let mut r5 = Router::new(n(5), [n(4), n(6)], cfg);
/// let p = Prefix::new(0);
/// let t = SimTime::ZERO;
///
/// // Node 5 learns the direct path from 4 and the longer one via 6.
/// r5.handle_message(n(4), &BgpMessage::announce(p, AsPath::from_ids([4, 0])), t, &mut rng);
/// r5.handle_message(n(6), &BgpMessage::announce(p, AsPath::from_ids([6, 4, 0])), t, &mut rng);
/// assert_eq!(r5.best(p).unwrap().path, AsPath::from_ids([5, 4, 0]));
///
/// // Link [4 0] fails: node 4 withdraws. Node 5 falls back to the
/// // (now obsolete) path through 6 — the seed of the transient loop.
/// let out = r5.handle_message(n(4), &BgpMessage::withdraw(p), SimTime::from_secs(1), &mut rng);
/// assert_eq!(r5.best(p).unwrap().path, AsPath::from_ids([5, 6, 4, 0]));
/// assert!(!out.fib_changes.is_empty());
/// ```
#[derive(Debug)]
pub struct Router<P: RoutePolicy = ShortestPath> {
    id: NodeId,
    /// Active peers, sorted ascending (membership tests and iteration
    /// happen per message, so a flat sorted vector wins).
    peers: Vec<NodeId>,
    config: BgpConfig,
    policy: P,
    ribs: BTreeMap<Prefix, RibIn>,
    originated: BTreeSet<Prefix>,
    /// Current selection per prefix.
    loc: BTreeMap<Prefix, LocRoute>,
    /// Last advertisement sent per (peer, prefix); absent = nothing
    /// advertised (peer believes we have no route).
    adj_out: AdjOut,
    mrai: MraiTable,
    damping: Option<DampingTable>,
    stats: RouterStats,
}

impl<P: RoutePolicy> Router<P> {
    /// Creates a router with an explicit policy.
    pub fn with_policy<I>(id: NodeId, peers: I, config: BgpConfig, policy: P) -> Self
    where
        I: IntoIterator<Item = NodeId>,
    {
        config.validate();
        let mut peers: Vec<NodeId> = peers.into_iter().collect();
        peers.sort_unstable();
        peers.dedup();
        assert!(!peers.contains(&id), "router {id} cannot peer with itself");
        Router {
            id,
            peers,
            config,
            policy,
            ribs: BTreeMap::new(),
            originated: BTreeSet::new(),
            loc: BTreeMap::new(),
            adj_out: AdjOut::default(),
            mrai: MraiTable::new(),
            damping: config.damping.map(DampingTable::new),
            stats: RouterStats::default(),
        }
    }

    /// This router's node id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The currently active peers.
    pub fn peers(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.peers.iter().copied()
    }

    /// The protocol configuration.
    pub fn config(&self) -> &BgpConfig {
        &self.config
    }

    /// Activity counters.
    pub fn stats(&self) -> RouterStats {
        self.stats
    }

    /// The currently selected route for `prefix`, if any.
    pub fn best(&self, prefix: Prefix) -> Option<&LocRoute> {
        self.loc.get(&prefix)
    }

    /// The Adj-RIB-In for `prefix` (empty table if never touched).
    pub fn rib_in(&self, prefix: Prefix) -> Option<&RibIn> {
        self.ribs.get(&prefix)
    }

    /// The last advertisement sent to `peer` for `prefix`.
    pub fn advertised_to(&self, peer: NodeId, prefix: Prefix) -> Option<&AsPath> {
        self.adj_out.get((peer, prefix))
    }

    /// Starts originating `prefix`: install a local route and advertise
    /// to all peers.
    pub fn originate(&mut self, prefix: Prefix, now: SimTime, rng: &mut SimRng) -> RouterOutput {
        self.originated.insert(prefix);
        let mut out = RouterOutput::empty();
        self.run_decision(prefix, now, rng, &mut out);
        out
    }

    /// Stops originating `prefix` — the `T_down` trigger: the
    /// destination becomes unreachable and the origin sends
    /// withdrawals.
    pub fn withdraw_origin(
        &mut self,
        prefix: Prefix,
        now: SimTime,
        rng: &mut SimRng,
    ) -> RouterOutput {
        self.originated.remove(&prefix);
        let mut out = RouterOutput::empty();
        self.run_decision(prefix, now, rng, &mut out);
        out
    }

    /// Processes a BGP message from `from` (already delayed and
    /// serialized by the host). Messages from unknown or inactive peers
    /// are ignored.
    pub fn handle_message(
        &mut self,
        from: NodeId,
        msg: &BgpMessage,
        now: SimTime,
        rng: &mut SimRng,
    ) -> RouterOutput {
        if !self.peers.contains(&from) {
            return RouterOutput::empty();
        }
        self.stats.messages_received += 1;
        let prefix = msg.prefix();
        let rib = self.ribs.entry(prefix).or_default();
        // Route flap damping (extension): penalize flaps before the
        // table is updated, so the previous state defines the flap.
        let mut reuse_timer: Option<ReuseTimerRequest> = None;
        if let Some(damping) = &mut self.damping {
            let flap = match (msg, rib.get(from)) {
                (BgpMessage::Withdraw { .. }, Some(_)) => Some(FlapKind::Withdrawal),
                (BgpMessage::Announce { path, .. }, Some(old)) if old != path => {
                    Some(FlapKind::AttributeChange)
                }
                _ => None,
            };
            if let Some(kind) = flap {
                if damping.record_flap(from, prefix, kind, now) {
                    self.stats.damping_suppressions += 1;
                    if let Some(at) = damping.reuse_time(from, prefix) {
                        reuse_timer = Some(ReuseTimerRequest {
                            peer: from,
                            prefix,
                            at: at.max(now),
                        });
                    }
                }
            }
        }
        match msg {
            BgpMessage::Announce { path, .. } => {
                rib.insert(from, path.clone());
                if self.config.enhancements.assertion {
                    // Assertion check (Pei et al.): any stored backup
                    // path that routes *through* `from` but disagrees
                    // with what `from` just announced is obsolete.
                    let removed = rib.remove_where(|peer, stored| {
                        peer != from
                            && stored
                                .suffix_from(from)
                                .is_some_and(|suffix| suffix != path.as_slice())
                    });
                    self.stats.assertion_removals += removed.len() as u64;
                }
            }
            BgpMessage::Withdraw { .. } => {
                rib.remove(from);
                if self.config.enhancements.assertion {
                    // `from` has no route at all now; every stored path
                    // through it is obsolete.
                    let removed =
                        rib.remove_where(|peer, stored| peer != from && stored.contains(from));
                    self.stats.assertion_removals += removed.len() as u64;
                }
            }
        }
        let mut out = RouterOutput::empty();
        if let Some(req) = reuse_timer {
            out.reuse_timers.push(req);
        }
        self.run_decision(prefix, now, rng, &mut out);
        out
    }

    /// Damping reuse callback for `(peer, prefix)`: if the penalty has
    /// decayed below the reuse threshold, the suppressed route returns
    /// to the decision process; if further flaps pushed the reuse time
    /// out, a new callback is requested.
    pub fn on_damping_reuse(
        &mut self,
        peer: NodeId,
        prefix: Prefix,
        now: SimTime,
        rng: &mut SimRng,
    ) -> RouterOutput {
        let mut out = RouterOutput::empty();
        let Some(damping) = &mut self.damping else {
            return out;
        };
        if damping.try_reuse(peer, prefix, now) {
            self.run_decision(prefix, now, rng, &mut out);
        } else if let Some(at) = damping.reuse_time(peer, prefix) {
            // Still suppressed (penalty grew since the timer was set).
            // Nudge the retry strictly into the future: at the exact
            // decay boundary, floating-point equality could otherwise
            // reschedule the check at `now` forever.
            let min_at = now + bgpsim_netsim::time::SimDuration::from_millis(1);
            out.reuse_timers.push(ReuseTimerRequest {
                peer,
                prefix,
                at: at.max(min_at),
            });
        }
        out
    }

    /// MRAI expiry callback for `(peer, prefix)`. The host must invoke
    /// this exactly at the instant given in the corresponding
    /// [`MraiTimerRequest`].
    pub fn on_mrai_expire(
        &mut self,
        peer: NodeId,
        prefix: Prefix,
        now: SimTime,
        rng: &mut SimRng,
    ) -> RouterOutput {
        // A restarted timer supersedes this expiry.
        if let Some(at) = self.mrai.expiry(peer, prefix) {
            if at > now {
                return RouterOutput::empty();
            }
        }
        self.mrai.clear(peer, prefix);
        if !self.peers.contains(&peer) {
            return RouterOutput::empty();
        }
        let mut out = RouterOutput::empty();
        self.sync_peer(peer, prefix, now, rng, &mut out);
        out
    }

    /// Handles loss of the session to `peer` (link failure): drop its
    /// routes and rerun the decision process everywhere.
    pub fn on_peer_down(&mut self, peer: NodeId, now: SimTime, rng: &mut SimRng) -> RouterOutput {
        match self.peers.binary_search(&peer) {
            Ok(i) => {
                self.peers.remove(i);
            }
            Err(_) => return RouterOutput::empty(),
        }
        self.mrai.clear_peer(peer);
        if let Some(damping) = &mut self.damping {
            damping.clear_peer(peer);
        }
        let prefixes: Vec<Prefix> = self.ribs.keys().copied().collect();
        let mut out = RouterOutput::empty();
        for prefix in prefixes {
            if let Some(rib) = self.ribs.get_mut(&prefix) {
                rib.remove(peer);
            }
            self.adj_out.remove((peer, prefix));
            self.run_decision(prefix, now, rng, &mut out);
        }
        out
    }

    /// Tears the session to `peer` down and immediately re-establishes
    /// it (a BGP session reset: the transport link stays up).
    ///
    /// The down half flushes the peer's routes and reruns the decision
    /// process; the up half re-advertises the post-reset Loc-RIB, as a
    /// real session restart would. Returns the merged output of both
    /// halves. A reset for an unknown peer is a no-op — unlike
    /// [`Router::on_peer_up`], it does not create a session.
    pub fn reset_peer(&mut self, peer: NodeId, now: SimTime, rng: &mut SimRng) -> RouterOutput {
        if self.peers.binary_search(&peer).is_err() {
            return RouterOutput::empty();
        }
        let mut out = self.on_peer_down(peer, now, rng);
        out.merge(self.on_peer_up(peer, now, rng));
        out
    }

    /// Handles a new (or restored) session to `peer`: advertise all
    /// current routes to it.
    pub fn on_peer_up(&mut self, peer: NodeId, now: SimTime, rng: &mut SimRng) -> RouterOutput {
        assert!(peer != self.id, "router {peer} cannot peer with itself");
        let mut out = RouterOutput::empty();
        match self.peers.binary_search(&peer) {
            Ok(_) => return out,
            Err(i) => self.peers.insert(i, peer),
        }
        let prefixes: Vec<Prefix> = self.loc.keys().copied().collect();
        for prefix in prefixes {
            self.sync_peer(peer, prefix, now, rng, &mut out);
        }
        out
    }

    /// Runs the decision process for `prefix`; on change, updates the
    /// FIB and synchronizes every peer.
    fn run_decision(
        &mut self,
        prefix: Prefix,
        now: SimTime,
        rng: &mut SimRng,
        out: &mut RouterOutput,
    ) {
        self.stats.decisions_run += 1;
        let cur = self.loc.get(&prefix);
        let new: Option<LocRoute> = if self.originated.contains(&prefix) {
            // A local route's path is always `(self)`, so matching FIB
            // entries imply an unchanged selection.
            if cur.is_some_and(|l| l.fib == FibEntry::Local) {
                return;
            }
            Some(LocRoute {
                fib: FibEntry::Local,
                path: AsPath::origin_only(self.id),
            })
        } else {
            let damping = &self.damping;
            let best = self.ribs.get(&prefix).and_then(|rib| {
                select_best_entry_where(rib, self.id, &self.policy, |peer| {
                    damping
                        .as_ref()
                        .is_none_or(|d| !d.is_suppressed(peer, prefix, now))
                })
            });
            match (best, cur) {
                (None, None) => return,
                // Same next hop, same learned path: the prepended local
                // path is identical too — skip without materializing it
                // (`cur.path` head is always `self.id`, so the suffix
                // comparison is exact).
                (Some((peer, path)), Some(l))
                    if l.fib == FibEntry::Via(peer)
                        && l.path.as_slice()[1..] == *path.as_slice() =>
                {
                    return;
                }
                (Some((peer, path)), _) => Some(LocRoute {
                    fib: FibEntry::Via(peer),
                    path: path.prepend(self.id),
                }),
                (None, Some(_)) => None,
            }
        };
        self.stats.route_changes += 1;
        match new {
            Some(route) => {
                out.fib_changes.push((prefix, Some(route.fib)));
                self.loc.insert(prefix, route);
            }
            None => {
                out.fib_changes.push((prefix, None));
                self.loc.remove(&prefix);
            }
        }
        // Index loop: `sync_peer_to` never changes the peer set, and
        // the indexed re-read avoids collecting the peers on every
        // route change. The selection is looked up once for all peers.
        out.sends.reserve(self.peers.len());
        let route = self.loc.get(&prefix).cloned();
        for i in 0..self.peers.len() {
            let peer = self.peers[i];
            self.sync_peer_to(peer, prefix, route.as_ref(), now, rng, out);
        }
    }

    /// Brings `peer`'s view of `prefix` in line with the current
    /// selection, respecting MRAI and the configured enhancements.
    fn sync_peer(
        &mut self,
        peer: NodeId,
        prefix: Prefix,
        now: SimTime,
        rng: &mut SimRng,
        out: &mut RouterOutput,
    ) {
        let route = self.loc.get(&prefix).cloned();
        self.sync_peer_to(peer, prefix, route.as_ref(), now, rng, out);
    }

    /// [`sync_peer`](Self::sync_peer) with the current selection passed
    /// in, so a decision run resolves it once for all peers. Paths are
    /// cloned only when a message actually goes out.
    fn sync_peer_to(
        &mut self,
        peer: NodeId,
        prefix: Prefix,
        route: Option<&LocRoute>,
        now: SimTime,
        rng: &mut SimRng,
        out: &mut RouterOutput,
    ) {
        let enh = self.config.enhancements;
        let mut desired: Option<&AsPath> = route
            .filter(|r| self.policy.export_allowed(r.fib.via(), peer))
            .map(|r| &r.path);
        let mut via_ssld = false;

        // SSLD: the receiver would discard a path containing itself, so
        // send the (MRAI-exempt) withdrawal instead of the (MRAI-gated)
        // poison-reverse announcement.
        if enh.ssld {
            if let Some(path) = desired {
                if path.contains(peer) {
                    desired = None;
                    via_ssld = true;
                }
            }
        }

        let current = self.adj_out.get((peer, prefix));
        let timer_running = self.mrai.is_running(peer, prefix, now);

        match desired {
            None => {
                if current.is_none() {
                    return; // peer already believes we have no route
                }
                if enh.wrate && timer_running {
                    // WRATE holds the withdrawal until the timer fires;
                    // `on_mrai_expire` re-syncs from current state.
                    return;
                }
                self.adj_out.remove((peer, prefix));
                out.sends.push((peer, BgpMessage::withdraw(prefix)));
                self.stats.withdrawals_sent += 1;
                if via_ssld {
                    self.stats.ssld_conversions += 1;
                }
                if enh.wrate {
                    self.start_mrai(peer, prefix, now, rng, out);
                }
            }
            Some(path) => {
                if current == Some(path) {
                    return; // already advertised
                }
                if timer_running {
                    if enh.ghost_flushing {
                        // Ghost Flushing: the route got worse and the
                        // announcement is stuck behind MRAI — flush the
                        // peer's stale knowledge with an immediate
                        // withdrawal.
                        if let Some(old) = current {
                            if path.len() > old.len() {
                                self.adj_out.remove((peer, prefix));
                                out.sends.push((peer, BgpMessage::withdraw(prefix)));
                                self.stats.withdrawals_sent += 1;
                                self.stats.ghost_flushes += 1;
                            }
                        }
                    }
                    // The announcement itself waits; expiry re-syncs.
                    return;
                }
                let path = path.clone();
                self.adj_out.insert((peer, prefix), path.clone());
                out.sends.push((peer, BgpMessage::announce(prefix, path)));
                self.stats.announcements_sent += 1;
                self.start_mrai(peer, prefix, now, rng, out);
            }
        }
    }

    /// Captures the full router state for checkpointing.
    pub fn snapshot(&self) -> RouterState {
        RouterState {
            id: self.id,
            peers: self.peers.clone(),
            config: self.config,
            ribs: self
                .ribs
                .iter()
                .map(|(&prefix, rib)| {
                    (
                        prefix,
                        rib.iter()
                            .map(|(peer, path)| (peer, path.clone()))
                            .collect(),
                    )
                })
                .collect(),
            originated: self.originated.iter().copied().collect(),
            loc: self
                .loc
                .iter()
                .map(|(&prefix, route)| (prefix, route.clone()))
                .collect(),
            adj_out: self.adj_out.entries.clone(),
            mrai: self.mrai.iter().collect(),
            damping: self
                .damping
                .as_ref()
                .map(|d| d.export_entries())
                .unwrap_or_default(),
            stats: self.stats,
        }
    }

    /// Rebuilds a router from a captured [`RouterState`] and its
    /// (stateless) route policy; the restored router processes every
    /// future input exactly as the original would have.
    pub fn from_state(state: RouterState, policy: P) -> Router<P> {
        state.config.validate();
        let mut adj_out = state.adj_out;
        adj_out.sort_by_key(|&(k, _)| k);
        Router {
            id: state.id,
            peers: state.peers,
            config: state.config,
            policy,
            ribs: state
                .ribs
                .into_iter()
                .map(|(prefix, entries)| (prefix, RibIn::from_entries(entries)))
                .collect(),
            originated: state.originated.into_iter().collect(),
            loc: state.loc.into_iter().collect(),
            adj_out: AdjOut { entries: adj_out },
            mrai: MraiTable::from_entries(state.mrai),
            damping: state
                .config
                .damping
                .map(|cfg| DampingTable::from_entries(cfg, state.damping)),
            stats: state.stats,
        }
    }

    fn start_mrai(
        &mut self,
        peer: NodeId,
        prefix: Prefix,
        now: SimTime,
        rng: &mut SimRng,
        out: &mut RouterOutput,
    ) {
        if self.config.mrai.is_zero() {
            return;
        }
        let j = self.config.mrai_jitter;
        let interval = rng.jittered(self.config.mrai, j.lo, j.hi);
        let at = now + interval;
        self.mrai.start(peer, prefix, at);
        out.timers.push(MraiTimerRequest { peer, prefix, at });
    }
}

impl Router<ShortestPath> {
    /// Creates a router with the paper's shortest-path policy.
    pub fn new<I>(id: NodeId, peers: I, config: BgpConfig) -> Self
    where
        I: IntoIterator<Item = NodeId>,
    {
        Router::with_policy(id, peers, config, ShortestPath)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Enhancements, Jitter};
    use bgpsim_netsim::time::SimDuration;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn p() -> Prefix {
        Prefix::new(0)
    }

    /// Deterministic config: no jitter, 30 s MRAI.
    fn cfg() -> BgpConfig {
        BgpConfig::default().with_jitter(Jitter::NONE)
    }

    fn cfg_enh(enh: Enhancements) -> BgpConfig {
        cfg().with_enhancements(enh)
    }

    fn rng() -> SimRng {
        SimRng::new(7)
    }

    fn announce(path: &[u32]) -> BgpMessage {
        BgpMessage::announce(p(), AsPath::from_ids(path.iter().copied()))
    }

    #[test]
    fn origin_advertises_to_all_peers() {
        let mut r = Router::new(n(0), [n(1), n(2)], cfg());
        let out = r.originate(p(), SimTime::ZERO, &mut rng());
        assert_eq!(out.sends.len(), 2);
        for (_, msg) in &out.sends {
            assert_eq!(msg.path(), Some(&AsPath::from_ids([0])));
        }
        assert_eq!(out.fib_changes, vec![(p(), Some(FibEntry::Local))]);
        assert_eq!(out.timers.len(), 2, "MRAI timers start on announce");
        assert_eq!(r.best(p()).unwrap().fib, FibEntry::Local);
    }

    #[test]
    fn learns_and_propagates_best_path() {
        let mut r = Router::new(n(5), [n(4), n(6)], cfg());
        let mut rg = rng();
        let out = r.handle_message(n(4), &announce(&[4, 0]), SimTime::ZERO, &mut rg);
        assert_eq!(r.best(p()).unwrap().path, AsPath::from_ids([5, 4, 0]));
        assert_eq!(r.best(p()).unwrap().fib, FibEntry::Via(n(4)));
        // Advertises (5 4 0) to both peers — including back to 4
        // (path-based poison reverse information).
        assert_eq!(out.sends.len(), 2);
        let to_4 = out.sends.iter().find(|(to, _)| *to == n(4)).unwrap();
        assert_eq!(to_4.1.path(), Some(&AsPath::from_ids([5, 4, 0])));
    }

    #[test]
    fn poison_reverse_discards_looped_paths() {
        let mut r = Router::new(n(4), [n(5), n(6)], cfg());
        let mut rg = rng();
        r.handle_message(n(6), &announce(&[6, 4, 0]), SimTime::ZERO, &mut rg);
        assert_eq!(r.best(p()), None, "path containing self is unusable");
    }

    #[test]
    fn withdrawal_falls_back_to_stale_path() {
        // The Figure 1 transition: this is how the 2-node loop seeds.
        let mut r = Router::new(n(5), [n(4), n(6)], cfg());
        let mut rg = rng();
        r.handle_message(n(4), &announce(&[4, 0]), SimTime::ZERO, &mut rg);
        r.handle_message(n(6), &announce(&[6, 4, 0]), SimTime::ZERO, &mut rg);
        let out = r.handle_message(
            n(4),
            &BgpMessage::withdraw(p()),
            SimTime::from_secs(1),
            &mut rg,
        );
        let best = r.best(p()).unwrap();
        assert_eq!(best.path, AsPath::from_ids([5, 6, 4, 0]));
        assert_eq!(best.fib, FibEntry::Via(n(6)));
        assert_eq!(out.fib_changes, vec![(p(), Some(FibEntry::Via(n(6))))]);
    }

    #[test]
    fn no_route_sends_withdrawals_immediately_despite_mrai() {
        let mut r = Router::new(n(5), [n(4)], cfg());
        let mut rg = rng();
        // Learn and advertise: MRAI timer now running toward peer 4.
        r.handle_message(n(4), &announce(&[4, 0]), SimTime::ZERO, &mut rg);
        // Withdrawal arrives 1 s later — our own withdrawal to peers
        // must go out immediately (RFC 1771: MRAI gates announcements
        // only).
        let out = r.handle_message(
            n(4),
            &BgpMessage::withdraw(p()),
            SimTime::from_secs(1),
            &mut rg,
        );
        assert_eq!(out.sends.len(), 1);
        assert!(out.sends[0].1.is_withdraw());
    }

    #[test]
    fn mrai_delays_second_announcement() {
        let mut r = Router::new(n(5), [n(4), n(6)], cfg());
        let mut rg = rng();
        r.handle_message(n(4), &announce(&[4, 9, 0]), SimTime::ZERO, &mut rg);
        // One second later node 6 offers a *shorter* path (6 0):
        // decision changes, but the announcement to each peer is gated
        // by the running MRAI timers.
        let out = r.handle_message(n(6), &announce(&[6, 0]), SimTime::from_secs(1), &mut rg);
        assert_eq!(
            r.best(p()).unwrap().path,
            AsPath::from_ids([5, 6, 0]),
            "decision itself is immediate"
        );
        assert!(
            out.sends.is_empty(),
            "announcements must wait for MRAI expiry"
        );
        // At expiry the pending change goes out.
        let out = r.on_mrai_expire(n(4), p(), SimTime::from_secs(30), &mut rg);
        assert_eq!(out.sends.len(), 1);
        assert_eq!(out.sends[0].1.path(), Some(&AsPath::from_ids([5, 6, 0])));
        assert_eq!(out.timers.len(), 1, "timer restarts after send");
    }

    #[test]
    fn mrai_expiry_with_no_change_is_silent() {
        let mut r = Router::new(n(5), [n(4)], cfg());
        let mut rg = rng();
        r.handle_message(n(4), &announce(&[4, 0]), SimTime::ZERO, &mut rg);
        let out = r.on_mrai_expire(n(4), p(), SimTime::from_secs(30), &mut rg);
        assert!(out.is_empty());
    }

    #[test]
    fn stale_mrai_expiry_is_ignored_after_restart() {
        let mut r = Router::new(n(5), [n(4), n(6)], cfg());
        let mut rg = rng();
        r.handle_message(n(4), &announce(&[4, 9, 0]), SimTime::ZERO, &mut rg);
        // Change arrives during the first interval…
        r.handle_message(n(6), &announce(&[6, 0]), SimTime::from_secs(1), &mut rg);
        // …expiry at t=30 sends and restarts the timer to t=60.
        let out = r.on_mrai_expire(n(4), p(), SimTime::from_secs(30), &mut rg);
        assert_eq!(out.sends.len(), 1);
        // A stale duplicate expiry callback (e.g. the host delivered an
        // old event) must be a no-op while the new timer runs.
        let out2 = r.on_mrai_expire(n(4), p(), SimTime::from_secs(31), &mut rg);
        assert!(out2.is_empty());
    }

    #[test]
    fn no_resend_of_identical_route() {
        let mut r = Router::new(n(5), [n(4)], cfg());
        let mut rg = rng();
        let out1 = r.handle_message(n(4), &announce(&[4, 0]), SimTime::ZERO, &mut rg);
        assert_eq!(out1.sends.len(), 1);
        // The same announcement again: nothing changes, nothing sent.
        let out2 = r.handle_message(n(4), &announce(&[4, 0]), SimTime::from_secs(40), &mut rg);
        assert!(out2.sends.is_empty());
        assert!(out2.fib_changes.is_empty());
    }

    #[test]
    fn peer_down_drops_routes_and_finds_alternative() {
        let mut r = Router::new(n(6), [n(3), n(5)], cfg());
        let mut rg = rng();
        r.handle_message(n(5), &announce(&[5, 4, 0]), SimTime::ZERO, &mut rg);
        r.handle_message(n(3), &announce(&[3, 2, 1, 0]), SimTime::ZERO, &mut rg);
        assert_eq!(r.best(p()).unwrap().fib, FibEntry::Via(n(5)));
        let out = r.on_peer_down(n(5), SimTime::from_secs(1), &mut rg);
        assert_eq!(r.best(p()).unwrap().fib, FibEntry::Via(n(3)));
        assert_eq!(r.best(p()).unwrap().path, AsPath::from_ids([6, 3, 2, 1, 0]));
        assert!(out.fib_changes.contains(&(p(), Some(FibEntry::Via(n(3))))));
        // No message goes to the dead peer.
        assert!(out.sends.iter().all(|(to, _)| *to != n(5)));
    }

    #[test]
    fn peer_down_twice_is_noop() {
        let mut r = Router::new(n(6), [n(5)], cfg());
        let mut rg = rng();
        r.handle_message(n(5), &announce(&[5, 0]), SimTime::ZERO, &mut rg);
        let _ = r.on_peer_down(n(5), SimTime::from_secs(1), &mut rg);
        let out = r.on_peer_down(n(5), SimTime::from_secs(2), &mut rg);
        assert!(out.is_empty());
    }

    #[test]
    fn messages_from_unknown_peers_ignored() {
        let mut r = Router::new(n(6), [n(5)], cfg());
        let mut rg = rng();
        let out = r.handle_message(n(9), &announce(&[9, 0]), SimTime::ZERO, &mut rg);
        assert!(out.is_empty());
        assert_eq!(r.best(p()), None);
    }

    #[test]
    fn reset_peer_flushes_then_readvertises() {
        let mut r = Router::new(n(6), [n(3), n(5)], cfg());
        let mut rg = rng();
        r.handle_message(n(5), &announce(&[5, 4, 0]), SimTime::ZERO, &mut rg);
        r.handle_message(n(3), &announce(&[3, 2, 1, 0]), SimTime::ZERO, &mut rg);
        assert_eq!(r.best(p()).unwrap().fib, FibEntry::Via(n(5)));
        let out = r.reset_peer(n(5), SimTime::from_secs(1), &mut rg);
        // The down half discarded 5's route; the best is now via 3.
        assert_eq!(r.best(p()).unwrap().fib, FibEntry::Via(n(3)));
        assert!(out.fib_changes.contains(&(p(), Some(FibEntry::Via(n(3))))));
        // The up half re-established the session and re-advertised the
        // post-reset Loc-RIB to the reset peer.
        assert!(r.peers().any(|q| q == n(5)));
        let to_5 = out.sends.iter().find(|(to, _)| *to == n(5)).unwrap();
        assert_eq!(to_5.1.path(), Some(&AsPath::from_ids([6, 3, 2, 1, 0])));
    }

    #[test]
    fn reset_unknown_peer_is_noop() {
        let mut r = Router::new(n(6), [n(5)], cfg());
        let mut rg = rng();
        r.handle_message(n(5), &announce(&[5, 0]), SimTime::ZERO, &mut rg);
        let out = r.reset_peer(n(9), SimTime::from_secs(1), &mut rg);
        assert!(out.is_empty());
        assert!(!r.peers().any(|q| q == n(9)), "reset must not create peers");
    }

    #[test]
    fn peer_up_advertises_current_routes() {
        let mut r = Router::new(n(5), [n(4)], cfg());
        let mut rg = rng();
        r.handle_message(n(4), &announce(&[4, 0]), SimTime::ZERO, &mut rg);
        let out = r.on_peer_up(n(7), SimTime::from_secs(1), &mut rg);
        assert_eq!(out.sends.len(), 1);
        assert_eq!(out.sends[0].0, n(7));
        assert_eq!(out.sends[0].1.path(), Some(&AsPath::from_ids([5, 4, 0])));
    }

    #[test]
    fn withdraw_origin_floods_withdrawals() {
        let mut r = Router::new(n(0), [n(1), n(2), n(3)], cfg());
        let mut rg = rng();
        r.originate(p(), SimTime::ZERO, &mut rg);
        let out = r.withdraw_origin(p(), SimTime::from_secs(100), &mut rg);
        assert_eq!(out.sends.len(), 3);
        assert!(out.sends.iter().all(|(_, m)| m.is_withdraw()));
        assert_eq!(out.fib_changes, vec![(p(), None)]);
        assert_eq!(r.best(p()), None);
    }

    // ---------- Enhancement: SSLD ----------

    #[test]
    fn ssld_converts_looped_announcement_to_withdrawal() {
        // Figure 1(b) with SSLD: node 5's new path (5 6 4 0) contains
        // node 6, so instead of announcing it to 6, node 5 sends an
        // immediate withdrawal.
        let mut r = Router::new(n(5), [n(4), n(6)], cfg_enh(Enhancements::ssld()));
        let mut rg = rng();
        r.handle_message(n(4), &announce(&[4, 0]), SimTime::ZERO, &mut rg);
        r.handle_message(n(6), &announce(&[6, 4, 0]), SimTime::ZERO, &mut rg);
        let out = r.handle_message(
            n(4),
            &BgpMessage::withdraw(p()),
            SimTime::from_secs(1),
            &mut rg,
        );
        // New best is (5 6 4 0); to node 6 that becomes a withdrawal.
        let to_6: Vec<_> = out.sends.iter().filter(|(to, _)| *to == n(6)).collect();
        assert_eq!(to_6.len(), 1);
        assert!(to_6[0].1.is_withdraw());
        assert_eq!(r.stats().ssld_conversions, 1);
        // Nothing was ever advertised to node 4 (the very first route
        // (5 4 0) already contained node 4, so SSLD suppressed it), so
        // no withdrawal is owed to node 4 either.
        let to_4: Vec<_> = out.sends.iter().filter(|(to, _)| *to == n(4)).collect();
        assert!(to_4.is_empty());
    }

    #[test]
    fn ssld_withdrawal_bypasses_running_mrai() {
        let mut r = Router::new(n(5), [n(4), n(6)], cfg_enh(Enhancements::ssld()));
        let mut rg = rng();
        r.handle_message(n(4), &announce(&[4, 0]), SimTime::ZERO, &mut rg);
        r.handle_message(n(6), &announce(&[6, 4, 0]), SimTime::ZERO, &mut rg);
        // MRAI timers to both peers are running (started at t=0).
        // Withdrawal from 4 at t=1: SSLD withdrawal to 6 must go NOW.
        let out = r.handle_message(
            n(4),
            &BgpMessage::withdraw(p()),
            SimTime::from_secs(1),
            &mut rg,
        );
        assert!(out
            .sends
            .iter()
            .any(|(to, m)| *to == n(6) && m.is_withdraw()));
    }

    #[test]
    fn ssld_suppresses_when_nothing_advertised() {
        let mut r = Router::new(n(5), [n(6)], cfg_enh(Enhancements::ssld()));
        let mut rg = rng();
        // First route learned already contains peer 6: nothing was ever
        // advertised to 6, so SSLD sends nothing at all.
        let out = r.handle_message(n(6), &announce(&[6, 4, 0]), SimTime::ZERO, &mut rg);
        assert!(out.sends.is_empty());
    }

    // ---------- Enhancement: WRATE ----------

    #[test]
    fn wrate_delays_withdrawal_until_expiry() {
        let mut r = Router::new(n(5), [n(4), n(6)], cfg_enh(Enhancements::wrate()));
        let mut rg = rng();
        r.handle_message(n(4), &announce(&[4, 0]), SimTime::ZERO, &mut rg);
        // Lose the route at t=1 while the MRAI timer (started at t=0)
        // still runs: under WRATE the withdrawal is held back.
        let out = r.handle_message(
            n(4),
            &BgpMessage::withdraw(p()),
            SimTime::from_secs(1),
            &mut rg,
        );
        assert!(out.sends.is_empty(), "WRATE gates withdrawals too");
        // Expiry releases it.
        let out = r.on_mrai_expire(n(6), p(), SimTime::from_secs(30), &mut rg);
        assert_eq!(out.sends.len(), 1);
        assert!(out.sends[0].1.is_withdraw());
        assert_eq!(out.timers.len(), 1, "WRATE restarts the timer on withdraw");
    }

    #[test]
    fn wrate_sends_withdrawal_when_timer_idle() {
        let mut r = Router::new(n(5), [n(4)], cfg_enh(Enhancements::wrate()));
        let mut rg = rng();
        r.handle_message(n(4), &announce(&[4, 0]), SimTime::ZERO, &mut rg);
        // After the timer has long expired, a withdrawal flows freely.
        let out = r.handle_message(
            n(4),
            &BgpMessage::withdraw(p()),
            SimTime::from_secs(60),
            &mut rg,
        );
        assert_eq!(out.sends.len(), 1);
        assert!(out.sends[0].1.is_withdraw());
    }

    // ---------- Enhancement: Assertion ----------

    #[test]
    fn assertion_purges_paths_through_withdrawing_peer() {
        // Paper §5: "when node 5 receives a withdrawal message from
        // node 4, it will also remove the backup path (5 6 4 0) since
        // the path goes through node 4."
        let mut r = Router::new(n(5), [n(4), n(6)], cfg_enh(Enhancements::assertion()));
        let mut rg = rng();
        r.handle_message(n(4), &announce(&[4, 0]), SimTime::ZERO, &mut rg);
        r.handle_message(n(6), &announce(&[6, 4, 0]), SimTime::ZERO, &mut rg);
        let out = r.handle_message(
            n(4),
            &BgpMessage::withdraw(p()),
            SimTime::from_secs(1),
            &mut rg,
        );
        assert_eq!(r.best(p()), None, "obsolete backup must not be used");
        assert_eq!(r.stats().assertion_removals, 1);
        // And we tell everyone we have no route.
        assert!(out.sends.iter().any(|(_, m)| m.is_withdraw()));
    }

    #[test]
    fn assertion_purges_disagreeing_backups_on_announce() {
        let mut r = Router::new(n(5), [n(4), n(6)], cfg_enh(Enhancements::assertion()));
        let mut rg = rng();
        r.handle_message(n(6), &announce(&[6, 4, 0]), SimTime::ZERO, &mut rg);
        // Node 4 announces a *different* path than the (4 0) subpath
        // stored inside 6's route: 6's route is obsolete.
        r.handle_message(n(4), &announce(&[4, 7, 0]), SimTime::from_secs(1), &mut rg);
        assert_eq!(r.rib_in(p()).unwrap().get(n(6)), None);
        assert_eq!(r.stats().assertion_removals, 1);
        assert_eq!(r.best(p()).unwrap().path, AsPath::from_ids([5, 4, 7, 0]));
    }

    #[test]
    fn assertion_keeps_agreeing_backups() {
        let mut r = Router::new(n(5), [n(4), n(6)], cfg_enh(Enhancements::assertion()));
        let mut rg = rng();
        r.handle_message(n(6), &announce(&[6, 4, 0]), SimTime::ZERO, &mut rg);
        // Node 4 announces exactly the subpath that 6's route embeds:
        // consistent, keep it.
        r.handle_message(n(4), &announce(&[4, 0]), SimTime::from_secs(1), &mut rg);
        assert!(r.rib_in(p()).unwrap().get(n(6)).is_some());
        assert_eq!(r.stats().assertion_removals, 0);
    }

    #[test]
    fn assertion_ignores_paths_not_through_peer() {
        let mut r = Router::new(n(5), [n(3), n(4)], cfg_enh(Enhancements::assertion()));
        let mut rg = rng();
        r.handle_message(n(3), &announce(&[3, 2, 0]), SimTime::ZERO, &mut rg);
        r.handle_message(
            n(4),
            &BgpMessage::withdraw(p()),
            SimTime::from_secs(1),
            &mut rg,
        );
        assert!(r.rib_in(p()).unwrap().get(n(3)).is_some());
        assert_eq!(r.stats().assertion_removals, 0);
    }

    // ---------- Enhancement: Ghost Flushing ----------

    #[test]
    fn ghost_flushing_withdraws_when_path_worsens_under_mrai() {
        let mut r = Router::new(n(5), [n(4), n(6)], cfg_enh(Enhancements::ghost_flushing()));
        let mut rg = rng();
        r.handle_message(n(4), &announce(&[4, 0]), SimTime::ZERO, &mut rg);
        r.handle_message(n(6), &announce(&[6, 9, 8, 0]), SimTime::ZERO, &mut rg);
        // Lose the short path at t=1: the new best (5 6 9 8 0) is
        // longer than the advertised (5 4 0) and MRAI is running —
        // ghost-flush both peers with immediate withdrawals.
        let out = r.handle_message(
            n(4),
            &BgpMessage::withdraw(p()),
            SimTime::from_secs(1),
            &mut rg,
        );
        let withdrawals: Vec<_> = out.sends.iter().filter(|(_, m)| m.is_withdraw()).collect();
        assert_eq!(withdrawals.len(), 2);
        assert_eq!(r.stats().ghost_flushes, 2);
        // The better-path announcement still waits for the timer; at
        // expiry it goes out (adj-out was flushed to "nothing").
        let out = r.on_mrai_expire(n(6), p(), SimTime::from_secs(30), &mut rg);
        assert_eq!(out.sends.len(), 1);
        assert_eq!(
            out.sends[0].1.path(),
            Some(&AsPath::from_ids([5, 6, 9, 8, 0]))
        );
    }

    #[test]
    fn ghost_flushing_silent_when_path_improves() {
        let mut r = Router::new(n(5), [n(4), n(6)], cfg_enh(Enhancements::ghost_flushing()));
        let mut rg = rng();
        r.handle_message(n(4), &announce(&[4, 9, 0]), SimTime::ZERO, &mut rg);
        // A better (shorter) path arrives during MRAI: no flushing —
        // the stale-but-valid longer route at the peers is harmless.
        let out = r.handle_message(n(6), &announce(&[6, 0]), SimTime::from_secs(1), &mut rg);
        assert!(out.sends.is_empty());
        assert_eq!(r.stats().ghost_flushes, 0);
    }

    #[test]
    fn ghost_flushing_flushes_once_per_degradation() {
        let mut r = Router::new(
            n(5),
            [n(4), n(6), n(7)],
            cfg_enh(Enhancements::ghost_flushing()),
        );
        let mut rg = rng();
        r.handle_message(n(4), &announce(&[4, 0]), SimTime::ZERO, &mut rg);
        r.handle_message(n(6), &announce(&[6, 9, 0]), SimTime::ZERO, &mut rg);
        r.handle_message(n(7), &announce(&[7, 9, 8, 0]), SimTime::ZERO, &mut rg);
        let before = r.stats().withdrawals_sent;
        r.handle_message(
            n(4),
            &BgpMessage::withdraw(p()),
            SimTime::from_secs(1),
            &mut rg,
        );
        let flushed = r.stats().withdrawals_sent - before;
        assert_eq!(flushed, 3, "one flush per peer");
        // Degrading again (6 withdraws, fall to path via 7): adj-out is
        // already flushed, so no second flush for the same peers.
        let before = r.stats().ghost_flushes;
        r.handle_message(
            n(6),
            &BgpMessage::withdraw(p()),
            SimTime::from_secs(2),
            &mut rg,
        );
        assert_eq!(r.stats().ghost_flushes, before);
    }

    // ---------- misc ----------

    #[test]
    fn zero_mrai_never_starts_timers() {
        let mut r = Router::new(n(5), [n(4)], cfg().with_mrai(SimDuration::ZERO));
        let mut rg = rng();
        let out = r.handle_message(n(4), &announce(&[4, 0]), SimTime::ZERO, &mut rg);
        assert_eq!(out.sends.len(), 1);
        assert!(out.timers.is_empty());
        // Immediate subsequent change also flows immediately.
        let out = r.handle_message(
            n(4),
            &announce(&[4, 9, 0]),
            SimTime::from_millis(1),
            &mut rg,
        );
        assert_eq!(out.sends.len(), 1);
    }

    #[test]
    #[should_panic(expected = "cannot peer with itself")]
    fn self_peering_rejected() {
        let _ = Router::new(n(1), [n(1)], cfg());
    }

    #[test]
    fn snapshot_restore_is_behavior_preserving() {
        // Drive a router mid-convergence (MRAI timers running, multiple
        // RIB entries, adj-out populated), snapshot it, and check the
        // restored router produces identical outputs for an identical
        // tail of inputs.
        let mut r = Router::new(n(5), [n(3), n(4), n(6)], BgpConfig::default());
        let mut rg = SimRng::new(11);
        r.handle_message(n(4), &announce(&[4, 0]), SimTime::ZERO, &mut rg);
        r.handle_message(n(6), &announce(&[6, 4, 0]), SimTime::ZERO, &mut rg);
        r.handle_message(
            n(3),
            &announce(&[3, 2, 0]),
            SimTime::from_millis(500),
            &mut rg,
        );

        let state = r.snapshot();
        let mut restored = Router::from_state(state.clone(), ShortestPath);
        assert_eq!(restored.snapshot(), state, "snapshot must round-trip");
        assert_eq!(restored.stats(), r.stats());
        assert_eq!(restored.best(p()), r.best(p()));

        let mut rg2 = rg.clone();
        let tail = |r: &mut Router, rg: &mut SimRng| {
            vec![
                r.handle_message(n(4), &BgpMessage::withdraw(p()), SimTime::from_secs(1), rg),
                r.on_mrai_expire(n(6), p(), SimTime::from_secs(30), rg),
                r.on_peer_down(n(3), SimTime::from_secs(31), rg),
            ]
        };
        let a = tail(&mut r, &mut rg);
        let b = tail(&mut restored, &mut rg2);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.sends, y.sends);
            assert_eq!(x.timers, y.timers);
            assert_eq!(x.fib_changes, y.fib_changes);
        }
        assert_eq!(r.stats(), restored.stats());
        assert_eq!(r.snapshot(), restored.snapshot());
    }

    #[test]
    fn snapshot_restore_preserves_damping_state() {
        let cfg = BgpConfig::default().with_damping(crate::damping::DampingConfig::default());
        let mut r = Router::new(n(5), [n(4)], cfg);
        let mut rg = rng();
        // Repeated withdrawal flaps suppress the route from peer 4
        // (two would decay to just under the 2000 threshold).
        for s in 0..3u64 {
            r.handle_message(n(4), &announce(&[4, 0]), SimTime::from_secs(2 * s), &mut rg);
            r.handle_message(
                n(4),
                &BgpMessage::withdraw(p()),
                SimTime::from_secs(2 * s + 1),
                &mut rg,
            );
        }
        assert!(r.stats().damping_suppressions > 0, "setup must suppress");
        let state = r.snapshot();
        assert!(!state.damping.is_empty());
        let mut restored = Router::from_state(state, ShortestPath);
        let mut rg2 = rg.clone();
        let now = SimTime::from_secs(10);
        let a = r.handle_message(n(4), &announce(&[4, 0]), now, &mut rg);
        let b = restored.handle_message(n(4), &announce(&[4, 0]), now, &mut rg2);
        assert_eq!(a.sends, b.sends);
        assert_eq!(a.reuse_timers, b.reuse_timers);
        assert_eq!(r.snapshot(), restored.snapshot());
    }

    #[test]
    fn stats_accumulate() {
        let mut r = Router::new(n(5), [n(4)], cfg());
        let mut rg = rng();
        r.handle_message(n(4), &announce(&[4, 0]), SimTime::ZERO, &mut rg);
        r.handle_message(
            n(4),
            &BgpMessage::withdraw(p()),
            SimTime::from_secs(1),
            &mut rg,
        );
        let s = r.stats();
        assert_eq!(s.messages_received, 2);
        assert_eq!(s.announcements_sent, 1);
        assert_eq!(s.withdrawals_sent, 1);
        assert_eq!(s.messages_sent(), 2);
        assert_eq!(s.route_changes, 2);
    }
}
