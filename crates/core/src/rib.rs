//! Routing information bases.
//!
//! Each router keeps, per prefix, an **Adj-RIB-In**: the most recent
//! path advertised by each neighbor. BGP advertises a route once and
//! stays silent until it changes, so this table is the router's entire
//! knowledge of its neighbors' routes — including knowledge that may be
//! *stale*, which is exactly how the transient loops of the study form
//! (§3.3: "a node can pick a backup path … even when the validity of
//! that path has been obsoleted by the latest topology change").

use bgpsim_topology::NodeId;

use crate::aspath::AsPath;

/// Per-prefix Adj-RIB-In: latest advertised path per neighbor.
///
/// Neighbor iteration is in ascending id order (deterministic), which
/// implements the paper's "smaller node ID wins ties" policy for free.
///
/// A router has at most `degree` neighbors, so the table is a vector
/// kept sorted by peer id: binary-search point ops, cache-friendly
/// candidate scans, and no per-entry allocation — this table sits on
/// the per-message hot path.
///
/// # Examples
///
/// ```
/// use bgpsim_core::rib::RibIn;
/// use bgpsim_core::AsPath;
/// use bgpsim_topology::NodeId;
///
/// let mut rib = RibIn::new();
/// rib.insert(NodeId::new(4), AsPath::from_ids([4, 0]));
/// assert_eq!(rib.get(NodeId::new(4)), Some(&AsPath::from_ids([4, 0])));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RibIn {
    /// Sorted by peer id.
    entries: Vec<(NodeId, AsPath)>,
}

impl RibIn {
    /// Creates an empty table.
    pub fn new() -> Self {
        RibIn::default()
    }

    /// Records `path` as the latest advertisement from `peer`,
    /// returning the previous one.
    pub fn insert(&mut self, peer: NodeId, path: AsPath) -> Option<AsPath> {
        match self.entries.binary_search_by_key(&peer, |&(p, _)| p) {
            Ok(i) => Some(std::mem::replace(&mut self.entries[i].1, path)),
            Err(i) => {
                self.entries.insert(i, (peer, path));
                None
            }
        }
    }

    /// Removes `peer`'s advertisement (withdrawal or session loss).
    pub fn remove(&mut self, peer: NodeId) -> Option<AsPath> {
        match self.entries.binary_search_by_key(&peer, |&(p, _)| p) {
            Ok(i) => Some(self.entries.remove(i).1),
            Err(_) => None,
        }
    }

    /// The latest advertisement from `peer`, if any.
    pub fn get(&self, peer: NodeId) -> Option<&AsPath> {
        match self.entries.binary_search_by_key(&peer, |&(p, _)| p) {
            Ok(i) => Some(&self.entries[i].1),
            Err(_) => None,
        }
    }

    /// Number of neighbors with a stored route.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if no neighbor has advertised a route.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over `(peer, path)` pairs in ascending peer order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &AsPath)> + '_ {
        self.entries.iter().map(|(p, path)| (*p, path))
    }

    /// Iterates over the *usable* candidates for `myself`: stored paths
    /// that do not already contain the local node. This is path-based
    /// poison reverse — the receiver-side loop check that lets a node
    /// discard arbitrarily long loops involving itself.
    pub fn candidates(&self, myself: NodeId) -> impl Iterator<Item = (NodeId, &AsPath)> + '_ {
        self.iter().filter(move |(_, path)| !path.contains(myself))
    }

    /// Rebuilds a table from `(peer, path)` entries (checkpoint
    /// restore); later duplicates of a peer are dropped.
    pub fn from_entries(mut entries: Vec<(NodeId, AsPath)>) -> RibIn {
        entries.sort_by_key(|&(p, _)| p);
        entries.dedup_by_key(|e| e.0);
        RibIn { entries }
    }

    /// Removes entries for which `predicate` returns `true`, returning
    /// the removed `(peer, path)` pairs. Used by the Assertion
    /// enhancement to purge obsolete backups.
    pub fn remove_where<F>(&mut self, mut predicate: F) -> Vec<(NodeId, AsPath)>
    where
        F: FnMut(NodeId, &AsPath) -> bool,
    {
        let mut removed = Vec::new();
        let mut i = 0;
        while i < self.entries.len() {
            if predicate(self.entries[i].0, &self.entries[i].1) {
                removed.push(self.entries.remove(i));
            } else {
                i += 1;
            }
        }
        removed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn insert_replaces_previous() {
        let mut rib = RibIn::new();
        assert_eq!(rib.insert(n(4), AsPath::from_ids([4, 0])), None);
        let old = rib.insert(n(4), AsPath::from_ids([4, 1, 0]));
        assert_eq!(old, Some(AsPath::from_ids([4, 0])));
        assert_eq!(rib.len(), 1);
    }

    #[test]
    fn remove_returns_entry() {
        let mut rib = RibIn::new();
        rib.insert(n(4), AsPath::from_ids([4, 0]));
        assert_eq!(rib.remove(n(4)), Some(AsPath::from_ids([4, 0])));
        assert_eq!(rib.remove(n(4)), None);
        assert!(rib.is_empty());
    }

    #[test]
    fn candidates_apply_poison_reverse() {
        // Node 5's view in paper Figure 1(a): direct path via 4 and the
        // poison-reverse path via 6 that contains node 5 itself... we
        // use node 4's view: paths from 5 and 6 both contain 4.
        let mut rib = RibIn::new();
        rib.insert(n(5), AsPath::from_ids([5, 4, 0]));
        rib.insert(n(6), AsPath::from_ids([6, 4, 0]));
        let usable: Vec<_> = rib.candidates(n(4)).collect();
        assert!(usable.is_empty(), "both paths contain node 4");
        let usable5: Vec<_> = rib.candidates(n(9)).map(|(p, _)| p).collect();
        assert_eq!(usable5, vec![n(5), n(6)]);
    }

    #[test]
    fn iteration_is_sorted_by_peer() {
        let mut rib = RibIn::new();
        rib.insert(n(6), AsPath::from_ids([6, 0]));
        rib.insert(n(3), AsPath::from_ids([3, 0]));
        rib.insert(n(5), AsPath::from_ids([5, 0]));
        let peers: Vec<_> = rib.iter().map(|(p, _)| p).collect();
        assert_eq!(peers, vec![n(3), n(5), n(6)]);
    }

    #[test]
    fn remove_where_purges_matching() {
        let mut rib = RibIn::new();
        rib.insert(n(3), AsPath::from_ids([3, 2, 1, 0]));
        rib.insert(n(5), AsPath::from_ids([5, 4, 0]));
        rib.insert(n(6), AsPath::from_ids([6, 4, 0]));
        // Purge everything routed through node 4 (e.g. node 4 withdrew).
        let removed = rib.remove_where(|_, path| path.contains(n(4)));
        assert_eq!(removed.len(), 2);
        assert_eq!(rib.len(), 1);
        assert!(rib.get(n(3)).is_some());
    }
}
