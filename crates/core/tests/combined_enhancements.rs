//! Semantics of enhancement *combinations* — the paper studies them
//! one at a time; these tests pin down how the implementation composes
//! them, so future refactors keep the interactions deliberate.

use bgpsim_core::prelude::*;
use bgpsim_netsim::rng::SimRng;
use bgpsim_netsim::time::SimTime;
use bgpsim_topology::NodeId;

fn n(i: u32) -> NodeId {
    NodeId::new(i)
}

fn p() -> Prefix {
    Prefix::new(0)
}

fn cfg(enh: Enhancements) -> BgpConfig {
    BgpConfig::default()
        .with_jitter(Jitter::NONE)
        .with_enhancements(enh)
}

fn announce(path: &[u32]) -> BgpMessage {
    BgpMessage::announce(p(), AsPath::from_ids(path.iter().copied()))
}

/// SSLD + WRATE: the SSLD conversion produces a withdrawal, and WRATE
/// gates it behind the running MRAI timer (the draft-spec reading:
/// *all* withdrawals are rate-limited).
#[test]
fn ssld_conversion_is_gated_by_wrate() {
    let enh = Enhancements {
        ssld: true,
        wrate: true,
        ..Default::default()
    };
    let mut r = Router::new(n(5), [n(4), n(6)], cfg(enh));
    let mut rng = SimRng::new(1);
    r.handle_message(n(4), &announce(&[4, 0]), SimTime::ZERO, &mut rng);
    r.handle_message(n(6), &announce(&[6, 4, 0]), SimTime::ZERO, &mut rng);
    // Timer toward 6 is running (announcement at t=0). The withdrawal
    // from 4 flips the best path to (5 6 4 0); SSLD wants to withdraw
    // toward 6, but WRATE holds it.
    let out = r.handle_message(
        n(4),
        &BgpMessage::withdraw(p()),
        SimTime::from_secs(1),
        &mut rng,
    );
    assert!(
        out.sends.iter().all(|(to, _)| *to != n(6)),
        "WRATE must gate the SSLD withdrawal: {:?}",
        out.sends
    );
    // At expiry the (still looped) route resolves to a withdrawal.
    let out = r.on_mrai_expire(n(6), p(), SimTime::from_secs(30), &mut rng);
    assert_eq!(out.sends.len(), 1);
    assert!(out.sends[0].1.is_withdraw());
    assert_eq!(r.stats().ssld_conversions, 1);
}

/// Assertion + Ghost Flushing: assertion purges the stale backup, so
/// there is nothing worse to fall back to — the node withdraws
/// directly and ghost flushing never needs to fire.
#[test]
fn assertion_preempts_ghost_flushing() {
    let enh = Enhancements {
        assertion: true,
        ghost_flushing: true,
        ..Default::default()
    };
    let mut r = Router::new(n(5), [n(4), n(6)], cfg(enh));
    let mut rng = SimRng::new(2);
    r.handle_message(n(4), &announce(&[4, 0]), SimTime::ZERO, &mut rng);
    r.handle_message(n(6), &announce(&[6, 4, 0]), SimTime::ZERO, &mut rng);
    let out = r.handle_message(
        n(4),
        &BgpMessage::withdraw(p()),
        SimTime::from_secs(1),
        &mut rng,
    );
    assert_eq!(r.best(p()), None, "assertion purged the stale backup");
    assert_eq!(r.stats().assertion_removals, 1);
    assert_eq!(r.stats().ghost_flushes, 0, "nothing left to flush");
    // The withdrawals to peers go out immediately (not ghost flushes —
    // ordinary no-route withdrawals).
    assert!(out.sends.iter().any(|(_, m)| m.is_withdraw()));
}

/// All four enhancements at once: the router still converges to the
/// correct final state on a message sequence that exercises every
/// mechanism.
#[test]
fn all_four_together_stay_correct() {
    let enh = Enhancements {
        ssld: true,
        wrate: true,
        assertion: true,
        ghost_flushing: true,
    };
    let mut r = Router::new(n(5), [n(3), n(4), n(6)], cfg(enh));
    let mut rng = SimRng::new(3);
    let mut t = SimTime::ZERO;
    let mut step = || {
        t += bgpsim_netsim::time::SimDuration::from_secs(1);
        t
    };
    r.handle_message(n(4), &announce(&[4, 0]), step(), &mut rng);
    r.handle_message(n(6), &announce(&[6, 4, 0]), step(), &mut rng);
    r.handle_message(n(3), &announce(&[3, 2, 1, 0]), step(), &mut rng);
    assert_eq!(r.best(p()).unwrap().fib, FibEntry::Via(n(4)));
    // Withdrawal from 4: assertion purges (6 4 0); best falls to the
    // long stable path via 3.
    r.handle_message(n(4), &BgpMessage::withdraw(p()), step(), &mut rng);
    assert_eq!(r.best(p()).unwrap().path, AsPath::from_ids([5, 3, 2, 1, 0]));
    // 6 re-announces a fresh (valid) path through 3's side; shorter
    // path wins again.
    r.handle_message(n(6), &announce(&[6, 1, 0]), step(), &mut rng);
    assert_eq!(r.best(p()).unwrap().path, AsPath::from_ids([5, 6, 1, 0]));
    // Selected routes never contain the router itself.
    assert!(r.best(p()).unwrap().path.is_simple());
}

/// Ghost Flushing + WRATE: the flush withdrawal is exempted from
/// WRATE in our composition? No — our implementation routes ghost
/// flushes through the same immediate-send path (they exist precisely
/// to bypass the MRAI delay), so they fire even with WRATE on. Pin
/// that choice.
#[test]
fn ghost_flush_fires_despite_wrate() {
    let enh = Enhancements {
        wrate: true,
        ghost_flushing: true,
        ..Default::default()
    };
    let mut r = Router::new(n(5), [n(4), n(6)], cfg(enh));
    let mut rng = SimRng::new(4);
    r.handle_message(n(4), &announce(&[4, 0]), SimTime::ZERO, &mut rng);
    r.handle_message(n(6), &announce(&[6, 9, 8, 0]), SimTime::ZERO, &mut rng);
    let out = r.handle_message(
        n(4),
        &BgpMessage::withdraw(p()),
        SimTime::from_secs(1),
        &mut rng,
    );
    assert!(
        out.sends.iter().any(|(_, m)| m.is_withdraw()),
        "ghost flush must bypass WRATE's gating"
    );
    assert!(r.stats().ghost_flushes > 0);
}
