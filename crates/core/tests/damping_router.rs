//! Router-level behavior of route flap damping (RFC 2439 extension):
//! suppression hides flapping routes from the decision process, reuse
//! timers bring them back, and stable routes are never penalized.

use bgpsim_core::damping::DampingConfig;
use bgpsim_core::prelude::*;
use bgpsim_netsim::rng::SimRng;
use bgpsim_netsim::time::{SimDuration, SimTime};
use bgpsim_topology::NodeId;

fn n(i: u32) -> NodeId {
    NodeId::new(i)
}

fn p() -> Prefix {
    Prefix::new(0)
}

fn damped_config() -> BgpConfig {
    BgpConfig::default()
        .with_jitter(Jitter::NONE)
        .with_damping(DampingConfig::default())
}

fn announce(path: &[u32]) -> BgpMessage {
    BgpMessage::announce(p(), AsPath::from_ids(path.iter().copied()))
}

/// Two withdrawal flaps suppress the route; the router then ignores a
/// fresh announcement from the flapping peer and prefers a stable
/// (longer) alternative.
#[test]
fn flapping_route_is_suppressed() {
    let mut r = Router::new(n(9), [n(1), n(2)], damped_config());
    let mut rng = SimRng::new(1);
    let mut t = SimTime::ZERO;
    let mut step = || {
        t += SimDuration::from_secs(1);
        t
    };

    // Stable long path via 2; flapping short path via 1.
    r.handle_message(n(2), &announce(&[2, 3, 4, 0]), step(), &mut rng);
    r.handle_message(n(1), &announce(&[1, 0]), step(), &mut rng);
    assert_eq!(r.best(p()).unwrap().fib, FibEntry::Via(n(1)));

    // Flap 1: withdraw + re-announce.
    r.handle_message(n(1), &BgpMessage::withdraw(p()), step(), &mut rng);
    r.handle_message(n(1), &announce(&[1, 0]), step(), &mut rng);
    assert_eq!(
        r.best(p()).unwrap().fib,
        FibEntry::Via(n(1)),
        "one flap (penalty 1000) does not suppress"
    );

    // Flap 2: decay leaves the penalty a hair under 2000 — still up.
    r.handle_message(n(1), &BgpMessage::withdraw(p()), step(), &mut rng);
    assert_eq!(r.stats().damping_suppressions, 0);
    r.handle_message(n(1), &announce(&[1, 0]), step(), &mut rng);

    // Flap 3: well past the suppress threshold.
    let out = r.handle_message(n(1), &BgpMessage::withdraw(p()), step(), &mut rng);
    assert_eq!(r.stats().damping_suppressions, 1);
    assert_eq!(
        out.reuse_timers.len(),
        1,
        "suppression schedules a reuse check"
    );
    // Re-announcement arrives but the route stays hidden.
    r.handle_message(n(1), &announce(&[1, 0]), step(), &mut rng);
    assert_eq!(
        r.best(p()).unwrap().fib,
        FibEntry::Via(n(2)),
        "suppressed route must not be selected"
    );
}

/// After the reuse timer fires (penalty decayed), the suppressed route
/// returns to service.
#[test]
fn reuse_restores_suppressed_route() {
    let mut r = Router::new(n(9), [n(1), n(2)], damped_config());
    let mut rng = SimRng::new(2);
    r.handle_message(
        n(2),
        &announce(&[2, 3, 4, 0]),
        SimTime::from_secs(1),
        &mut rng,
    );
    r.handle_message(n(1), &announce(&[1, 0]), SimTime::from_secs(2), &mut rng);
    r.handle_message(
        n(1),
        &BgpMessage::withdraw(p()),
        SimTime::from_secs(3),
        &mut rng,
    );
    r.handle_message(n(1), &announce(&[1, 0]), SimTime::from_secs(4), &mut rng);
    r.handle_message(
        n(1),
        &BgpMessage::withdraw(p()),
        SimTime::from_secs(5),
        &mut rng,
    );
    r.handle_message(n(1), &announce(&[1, 0]), SimTime::from_secs(6), &mut rng);
    let out = r.handle_message(
        n(1),
        &BgpMessage::withdraw(p()),
        SimTime::from_secs(7),
        &mut rng,
    );
    let reuse = out.reuse_timers[0];
    // Final state of the flapper: announced again, but suppressed.
    r.handle_message(n(1), &announce(&[1, 0]), SimTime::from_secs(8), &mut rng);
    assert_eq!(r.best(p()).unwrap().fib, FibEntry::Via(n(2)));

    // Reuse fires (≈ 15 min × log2(2000/750) later): route comes back.
    let out = r.on_damping_reuse(n(1), p(), reuse.at, &mut rng);
    assert!(!out.fib_changes.is_empty(), "reuse re-runs the decision");
    assert_eq!(r.best(p()).unwrap().fib, FibEntry::Via(n(1)));
}

/// A reuse check that fires while the penalty is still above the
/// threshold (more flaps happened) reschedules itself.
#[test]
fn early_reuse_check_reschedules() {
    let mut r = Router::new(n(9), [n(1)], damped_config());
    let mut rng = SimRng::new(3);
    r.handle_message(n(1), &announce(&[1, 0]), SimTime::from_secs(1), &mut rng);
    r.handle_message(
        n(1),
        &BgpMessage::withdraw(p()),
        SimTime::from_secs(2),
        &mut rng,
    );
    r.handle_message(n(1), &announce(&[1, 0]), SimTime::from_secs(3), &mut rng);
    r.handle_message(
        n(1),
        &BgpMessage::withdraw(p()),
        SimTime::from_secs(4),
        &mut rng,
    );
    r.handle_message(
        n(1),
        &announce(&[1, 0]),
        SimTime::from_millis(4500),
        &mut rng,
    );
    let out = r.handle_message(
        n(1),
        &BgpMessage::withdraw(p()),
        SimTime::from_millis(4800),
        &mut rng,
    );
    let first_reuse = out.reuse_timers[0].at;
    // More flaps push the penalty (and thus the reuse time) up.
    for s in 5..9 {
        r.handle_message(n(1), &announce(&[1, 0]), SimTime::from_secs(s), &mut rng);
        r.handle_message(
            n(1),
            &BgpMessage::withdraw(p()),
            SimTime::from_secs(s) + SimDuration::from_millis(500),
            &mut rng,
        );
    }
    let out = r.on_damping_reuse(n(1), p(), first_reuse, &mut rng);
    assert_eq!(out.reuse_timers.len(), 1, "must reschedule");
    assert!(out.reuse_timers[0].at > first_reuse);
}

/// Stable routes never accumulate penalty: identical re-announcements
/// are not flaps.
#[test]
fn stable_routes_are_not_penalized() {
    let mut r = Router::new(n(9), [n(1)], damped_config());
    let mut rng = SimRng::new(4);
    for s in 1..20 {
        r.handle_message(n(1), &announce(&[1, 0]), SimTime::from_secs(s), &mut rng);
    }
    assert_eq!(r.stats().damping_suppressions, 0);
    assert_eq!(r.best(p()).unwrap().fib, FibEntry::Via(n(1)));
}

/// Attribute changes (different path) accumulate penalty more slowly
/// than withdrawals, and session loss clears damping state.
#[test]
fn attribute_changes_and_peer_reset() {
    let mut r = Router::new(n(9), [n(1)], damped_config());
    let mut rng = SimRng::new(5);
    // Three path changes: 500 × 3 = 1500 < 2000 → no suppression.
    r.handle_message(n(1), &announce(&[1, 0]), SimTime::from_secs(1), &mut rng);
    r.handle_message(n(1), &announce(&[1, 5, 0]), SimTime::from_secs(2), &mut rng);
    r.handle_message(n(1), &announce(&[1, 6, 0]), SimTime::from_secs(3), &mut rng);
    r.handle_message(n(1), &announce(&[1, 7, 0]), SimTime::from_secs(4), &mut rng);
    assert_eq!(r.stats().damping_suppressions, 0);
    // One more change would cross the threshold, but the session
    // resets first (clears penalties), so a change after recovery is
    // penalty-free.
    r.on_peer_down(n(1), SimTime::from_secs(5), &mut rng);
    r.on_peer_up(n(1), SimTime::from_secs(6), &mut rng);
    r.handle_message(n(1), &announce(&[1, 8, 0]), SimTime::from_secs(7), &mut rng);
    r.handle_message(n(1), &announce(&[1, 5, 0]), SimTime::from_secs(8), &mut rng);
    assert_eq!(r.stats().damping_suppressions, 0);
    assert!(r.best(p()).is_some());
}

/// Without damping configured, nothing is ever suppressed and
/// `on_damping_reuse` is a no-op.
#[test]
fn damping_disabled_by_default() {
    let mut r = Router::new(n(9), [n(1)], BgpConfig::default().with_jitter(Jitter::NONE));
    let mut rng = SimRng::new(6);
    for s in 1..10 {
        r.handle_message(
            n(1),
            &announce(&[1, 0]),
            SimTime::from_secs(2 * s),
            &mut rng,
        );
        r.handle_message(
            n(1),
            &BgpMessage::withdraw(p()),
            SimTime::from_secs(2 * s + 1),
            &mut rng,
        );
    }
    assert_eq!(r.stats().damping_suppressions, 0);
    let out = r.on_damping_reuse(n(1), p(), SimTime::from_secs(100), &mut rng);
    assert!(out.is_empty());
}
