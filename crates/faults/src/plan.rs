//! The fault-plan DSL and its deterministic expansion.

use std::fmt::Write as _;

use bgpsim_core::Prefix;
use bgpsim_netsim::rng::SimRng;
use bgpsim_netsim::time::SimDuration;
use bgpsim_topology::NodeId;

use crate::error::FaultError;

/// What happens when a fault fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Both directions of the link `[a, b]` go down.
    LinkDown { a: NodeId, b: NodeId },
    /// Both directions of the link `[a, b]` come back up.
    LinkUp { a: NodeId, b: NodeId },
    /// The BGP session between `a` and `b` is torn down and immediately
    /// re-established; the underlying link stays up.
    SessionReset { a: NodeId, b: NodeId },
    /// `origin` withdraws `prefix` (the paper's `T_down` trigger).
    Withdraw { origin: NodeId, prefix: Prefix },
}

impl FaultKind {
    /// Short label used in fingerprints and trace events.
    fn describe(&self, out: &mut String) {
        match *self {
            FaultKind::LinkDown { a, b } => {
                let _ = write!(out, "down:{}-{}", a.as_u32(), b.as_u32());
            }
            FaultKind::LinkUp { a, b } => {
                let _ = write!(out, "up:{}-{}", a.as_u32(), b.as_u32());
            }
            FaultKind::SessionReset { a, b } => {
                let _ = write!(out, "reset:{}-{}", a.as_u32(), b.as_u32());
            }
            FaultKind::Withdraw { origin, prefix } => {
                let _ = write!(out, "withdraw:{}:{}", origin.as_u32(), prefix.as_u32());
            }
        }
    }
}

/// One scheduled fault: `kind` fires at offset `at` from the plan's
/// anchor time (the simulator chooses the anchor when installing the
/// plan, mirroring the clean-failure harness beat).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Offset from the plan anchor.
    pub at: SimDuration,
    /// What fires.
    pub kind: FaultKind,
}

/// A periodic down/up train on one link.
///
/// Cycle `i` takes the link down at `start + i * period` (plus jitter)
/// and brings it back up half a period later (plus jitter), so the
/// link spends roughly half of each period down. Jitter is a fraction
/// of the period, drawn per edge from a child generator forked off the
/// run seed and this train's identity — adding a second train never
/// shifts the first one's schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlapTrain {
    /// One endpoint of the flapping link.
    pub a: NodeId,
    /// The other endpoint.
    pub b: NodeId,
    /// Offset of the first down event from the plan anchor.
    pub start: SimDuration,
    /// Full down+up cycle length.
    pub period: SimDuration,
    /// Number of down/up cycles.
    pub count: u32,
    /// Jitter fraction in `[0, 0.5]`; each edge shifts later by up to
    /// `jitter * period`. Zero means no random draws at all.
    pub jitter: f64,
}

impl FlapTrain {
    /// A train with the default profile (see [`FlapProfile`]) on the
    /// given link.
    pub fn new(a: NodeId, b: NodeId) -> Self {
        FlapProfile::default().train(a, b)
    }

    /// Sets the offset of the first down event.
    pub fn starting_at(mut self, start: SimDuration) -> Self {
        self.start = start;
        self
    }

    /// Sets the cycle period.
    pub fn with_period(mut self, period: SimDuration) -> Self {
        self.period = period;
        self
    }

    /// Sets the number of cycles.
    pub fn with_count(mut self, count: u32) -> Self {
        self.count = count;
        self
    }

    /// Sets the jitter fraction.
    pub fn with_jitter(mut self, jitter: f64) -> Self {
        self.jitter = jitter;
        self
    }

    /// Expands this train into down/up events, drawing jitter from
    /// `rng` (two draws per cycle when jitter is non-zero, none
    /// otherwise).
    fn expand_into(&self, rng: &mut SimRng, out: &mut Vec<FaultEvent>) {
        let half = self.period / 2;
        let max_shift = self.period.mul_f64(self.jitter);
        for i in 0..u64::from(self.count) {
            let mut down_at = self.start + self.period * i;
            let mut up_at = down_at + half;
            if !max_shift.is_zero() {
                down_at += rng.uniform_duration(SimDuration::ZERO, max_shift);
                up_at += rng.uniform_duration(SimDuration::ZERO, max_shift);
            }
            out.push(FaultEvent {
                at: down_at,
                kind: FaultKind::LinkDown {
                    a: self.a,
                    b: self.b,
                },
            });
            out.push(FaultEvent {
                at: up_at.max(down_at),
                kind: FaultKind::LinkUp {
                    a: self.a,
                    b: self.b,
                },
            });
        }
    }
}

/// Independent per-message loss on one directed link pair.
///
/// The probability applies to both directions of `[a, b]`; each
/// direction draws from its own child generator so delivery decisions
/// on one direction never shift the other's sequence.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkLoss {
    /// One endpoint.
    pub a: NodeId,
    /// The other endpoint.
    pub b: NodeId,
    /// Per-message drop probability in `[0, 1]`.
    pub probability: f64,
}

/// Scenario-level flap parameterization: how the failure link should
/// flap in an [`EventKind::Flap`]-style experiment.
///
/// This is the coarse knob exposed by sweep binaries; it compiles into
/// a full [`FaultPlan`] for a concrete link via [`FlapProfile::plan_for`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlapProfile {
    /// Full down+up cycle length.
    pub period: SimDuration,
    /// Number of down/up cycles.
    pub count: u32,
    /// Jitter fraction in `[0, 0.5]`.
    pub jitter: f64,
    /// Per-message loss probability applied to the flapping link.
    pub loss: f64,
}

impl Default for FlapProfile {
    fn default() -> Self {
        FlapProfile {
            period: SimDuration::from_secs(10),
            count: 3,
            jitter: 0.0,
            loss: 0.0,
        }
    }
}

impl FlapProfile {
    /// Builds a flap train with this profile on the given link,
    /// starting at the plan anchor.
    pub fn train(&self, a: NodeId, b: NodeId) -> FlapTrain {
        FlapTrain {
            a,
            b,
            start: SimDuration::ZERO,
            period: self.period,
            count: self.count,
            jitter: self.jitter,
        }
    }

    /// Compiles this profile into a plan flapping the link `[a, b]`.
    pub fn plan_for(&self, a: NodeId, b: NodeId) -> FaultPlan {
        let mut plan = FaultPlan::new().flap(self.train(a, b));
        if self.loss > 0.0 {
            plan = plan.loss(a, b, self.loss);
        }
        plan
    }

    /// Stable fragment for scenario fingerprints.
    pub fn fingerprint(&self) -> String {
        format!(
            "period={}|count={}|jitter={:x}|loss={:x}",
            self.period.as_nanos(),
            self.count,
            self.jitter.to_bits(),
            self.loss.to_bits()
        )
    }
}

/// A declarative description of the churn a run should experience.
///
/// A plan is pure data: it holds explicitly scheduled events, flap
/// trains (expanded with seeded jitter at install time), and per-link
/// loss probabilities. Offsets are relative to an anchor the simulator
/// picks when installing the plan, so the same plan applies to any
/// scenario.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// Explicitly scheduled faults (offsets from the anchor).
    pub events: Vec<FaultEvent>,
    /// Flap trains to expand.
    pub flaps: Vec<FlapTrain>,
    /// Per-link message-loss entries.
    pub loss: Vec<LinkLoss>,
}

impl FaultPlan {
    /// An empty plan (invalid until something is added).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Adds an explicit event.
    pub fn event(mut self, at: SimDuration, kind: FaultKind) -> Self {
        self.events.push(FaultEvent { at, kind });
        self
    }

    /// Adds a link-down event.
    pub fn link_down(self, at: SimDuration, a: NodeId, b: NodeId) -> Self {
        self.event(at, FaultKind::LinkDown { a, b })
    }

    /// Adds a link-up event.
    pub fn link_up(self, at: SimDuration, a: NodeId, b: NodeId) -> Self {
        self.event(at, FaultKind::LinkUp { a, b })
    }

    /// Adds a session-reset event.
    pub fn session_reset(self, at: SimDuration, a: NodeId, b: NodeId) -> Self {
        self.event(at, FaultKind::SessionReset { a, b })
    }

    /// Adds a prefix-withdrawal event.
    pub fn withdraw(self, at: SimDuration, origin: NodeId, prefix: Prefix) -> Self {
        self.event(at, FaultKind::Withdraw { origin, prefix })
    }

    /// Adds a flap train.
    pub fn flap(mut self, train: FlapTrain) -> Self {
        self.flaps.push(train);
        self
    }

    /// Adds a per-link loss entry.
    pub fn loss(mut self, a: NodeId, b: NodeId, probability: f64) -> Self {
        self.loss.push(LinkLoss { a, b, probability });
        self
    }

    /// Checks the plan for structural problems.
    ///
    /// Offsets need no range check here — they are relative, so "in
    /// the past" only becomes meaningful against the anchor at install
    /// time (see [`FaultError::EventInPast`]).
    pub fn validate(&self) -> Result<(), FaultError> {
        if self.events.is_empty() && self.flaps.is_empty() && self.loss.is_empty() {
            return Err(FaultError::EmptyPlan);
        }
        for ev in &self.events {
            if let FaultKind::LinkDown { a, b }
            | FaultKind::LinkUp { a, b }
            | FaultKind::SessionReset { a, b } = ev.kind
            {
                if a == b {
                    return Err(FaultError::SelfLoop { node: a });
                }
            }
        }
        for train in &self.flaps {
            if train.a == train.b {
                return Err(FaultError::SelfLoop { node: train.a });
            }
            if train.period.is_zero() {
                return Err(FaultError::ZeroPeriod {
                    a: train.a,
                    b: train.b,
                });
            }
            if train.count == 0 {
                return Err(FaultError::ZeroCount {
                    a: train.a,
                    b: train.b,
                });
            }
            if !train.jitter.is_finite() || !(0.0..=0.5).contains(&train.jitter) {
                return Err(FaultError::InvalidJitter {
                    a: train.a,
                    b: train.b,
                    jitter: train.jitter,
                });
            }
        }
        for l in &self.loss {
            if l.a == l.b {
                return Err(FaultError::SelfLoop { node: l.a });
            }
            if !l.probability.is_finite() || !(0.0..=1.0).contains(&l.probability) {
                return Err(FaultError::InvalidProbability {
                    a: l.a,
                    b: l.b,
                    probability: l.probability,
                });
            }
        }
        Ok(())
    }

    /// Expands the plan into a flat, time-sorted event list under the
    /// given run seed.
    ///
    /// Each flap train draws jitter from its own child generator
    /// (forked off `seed` and the train's link + index), so trains are
    /// independent and the expansion is a pure function of
    /// `(seed, plan)`. The sort is stable: same-offset events keep
    /// plan order.
    pub fn expand(&self, seed: u64) -> Vec<FaultEvent> {
        let root = SimRng::new(seed);
        let mut out = self.events.clone();
        for (k, train) in self.flaps.iter().enumerate() {
            let mut rng = root.fork(flap_stream(k as u64, train.a, train.b));
            train.expand_into(&mut rng, &mut out);
        }
        out.sort_by_key(|ev| ev.at);
        out
    }

    /// Stable textual identity for cache fingerprints.
    ///
    /// Floats are rendered via `to_bits` so the fragment is exact, and
    /// every component is versioned under the leading `faults/v1` tag.
    pub fn fingerprint(&self) -> String {
        let mut s = String::from("faults/v1|ev=");
        for (i, ev) in self.events.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "{}@", ev.at.as_nanos());
            ev.kind.describe(&mut s);
        }
        s.push_str("|flap=");
        for (i, t) in self.flaps.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{}-{}:s{}:p{}:c{}:j{:x}",
                t.a.as_u32(),
                t.b.as_u32(),
                t.start.as_nanos(),
                t.period.as_nanos(),
                t.count,
                t.jitter.to_bits()
            );
        }
        s.push_str("|loss=");
        for (i, l) in self.loss.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{}-{}:{:x}",
                l.a.as_u32(),
                l.b.as_u32(),
                l.probability.to_bits()
            );
        }
        s
    }

    /// Derives the per-direction loss stream tag for the directed link
    /// `from -> to`; the simulator forks the run RNG with this tag so
    /// loss draws on one link never shift any other random sequence.
    pub fn loss_stream(from: NodeId, to: NodeId) -> u64 {
        0x1055_0000_0000_0000u64
            ^ (u64::from(from.as_u32()) << 32)
            ^ u64::from(to.as_u32()).rotate_left(17)
    }
}

/// Stream tag for flap train `k` on link `[a, b]`.
fn flap_stream(k: u64, a: NodeId, b: NodeId) -> u64 {
    0xF1A9_0000_0000_0000u64 ^ (k << 40) ^ (u64::from(a.as_u32()) << 20) ^ u64::from(b.as_u32())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn empty_plan_is_invalid() {
        assert_eq!(FaultPlan::new().validate(), Err(FaultError::EmptyPlan));
    }

    #[test]
    fn self_loop_is_rejected() {
        let plan = FaultPlan::new().link_down(SimDuration::ZERO, n(3), n(3));
        assert_eq!(plan.validate(), Err(FaultError::SelfLoop { node: n(3) }));
    }

    #[test]
    fn bad_probability_is_rejected() {
        let plan = FaultPlan::new().loss(n(0), n(1), 1.5);
        assert!(matches!(
            plan.validate(),
            Err(FaultError::InvalidProbability { .. })
        ));
        let nan = FaultPlan::new().loss(n(0), n(1), f64::NAN);
        assert!(matches!(
            nan.validate(),
            Err(FaultError::InvalidProbability { .. })
        ));
    }

    #[test]
    fn bad_flap_trains_are_rejected() {
        let zero_period =
            FaultPlan::new().flap(FlapTrain::new(n(0), n(1)).with_period(SimDuration::ZERO));
        assert!(matches!(
            zero_period.validate(),
            Err(FaultError::ZeroPeriod { .. })
        ));
        let zero_count = FaultPlan::new().flap(FlapTrain::new(n(0), n(1)).with_count(0));
        assert!(matches!(
            zero_count.validate(),
            Err(FaultError::ZeroCount { .. })
        ));
        let wild_jitter = FaultPlan::new().flap(FlapTrain::new(n(0), n(1)).with_jitter(0.9));
        assert!(matches!(
            wild_jitter.validate(),
            Err(FaultError::InvalidJitter { .. })
        ));
    }

    #[test]
    fn expansion_is_deterministic_and_sorted() {
        let plan = FaultPlan::new()
            .flap(
                FlapTrain::new(n(0), n(1))
                    .with_period(SimDuration::from_secs(4))
                    .with_count(3)
                    .with_jitter(0.25),
            )
            .flap(
                FlapTrain::new(n(2), n(3))
                    .with_period(SimDuration::from_secs(6))
                    .with_count(2)
                    .with_jitter(0.25),
            )
            .session_reset(SimDuration::from_secs(1), n(4), n(5));
        plan.validate().unwrap();
        let a = plan.expand(99);
        let b = plan.expand(99);
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0].at <= w[1].at));
        // 3 + 2 cycles of down+up, plus the explicit reset.
        assert_eq!(a.len(), 11);
        // A different seed moves the jittered edges.
        assert_ne!(a, plan.expand(100));
    }

    #[test]
    fn zero_jitter_expansion_is_seed_independent() {
        let plan = FaultPlan::new().flap(
            FlapTrain::new(n(0), n(1))
                .with_period(SimDuration::from_secs(2))
                .with_count(2),
        );
        assert_eq!(plan.expand(1), plan.expand(2));
        let ev = plan.expand(1);
        assert_eq!(ev[0].at, SimDuration::ZERO);
        assert_eq!(ev[1].at, SimDuration::from_secs(1));
        assert_eq!(ev[2].at, SimDuration::from_secs(2));
        assert_eq!(ev[3].at, SimDuration::from_secs(3));
    }

    #[test]
    fn sibling_trains_do_not_perturb_each_other() {
        let solo = FaultPlan::new().flap(
            FlapTrain::new(n(0), n(1))
                .with_period(SimDuration::from_secs(4))
                .with_jitter(0.25),
        );
        let paired = solo.clone().flap(
            FlapTrain::new(n(2), n(3))
                .with_period(SimDuration::from_secs(4))
                .with_jitter(0.25),
        );
        let solo_events = solo.expand(7);
        let paired_first: Vec<_> = paired
            .expand(7)
            .into_iter()
            .filter(|ev| {
                matches!(
                    ev.kind,
                    FaultKind::LinkDown { a, .. } | FaultKind::LinkUp { a, .. } if a == n(0)
                )
            })
            .collect();
        assert_eq!(solo_events, paired_first);
    }

    #[test]
    fn fingerprint_is_stable_and_distinguishes_plans() {
        let plan = FaultPlan::new()
            .link_down(SimDuration::from_secs(1), n(0), n(5))
            .loss(n(0), n(5), 0.125);
        assert_eq!(plan.fingerprint(), plan.clone().fingerprint());
        let other = FaultPlan::new()
            .link_down(SimDuration::from_secs(1), n(0), n(5))
            .loss(n(0), n(5), 0.25);
        assert_ne!(plan.fingerprint(), other.fingerprint());
    }

    #[test]
    fn flap_profile_compiles_to_plan() {
        let profile = FlapProfile {
            period: SimDuration::from_secs(2),
            count: 4,
            jitter: 0.1,
            loss: 0.05,
        };
        let plan = profile.plan_for(n(1), n(2));
        plan.validate().unwrap();
        assert_eq!(plan.flaps.len(), 1);
        assert_eq!(plan.loss.len(), 1);
        assert_eq!(plan.expand(3).len(), 8);
        let lossless = FlapProfile::default().plan_for(n(1), n(2));
        assert!(lossless.loss.is_empty());
    }
}
