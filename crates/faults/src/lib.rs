//! Deterministic, seeded fault injection for BGP simulations.
//!
//! The paper's experiments trigger exactly one clean event per run
//! (`T_down`, `T_long`). Real BGP churn is messier: links flap in
//! trains, sessions reset without the link going down, and messages
//! are lost. This crate describes such workloads as data — a
//! [`FaultPlan`] — that the simulator expands into ordinary scheduled
//! events, so a churn run stays exactly as replayable as a clean one.
//!
//! Determinism contract: all randomness used while expanding a plan
//! (flap-train jitter) is drawn from child generators forked off the
//! run seed per train, and per-link message loss uses a child
//! generator forked per directed link. Expanding the same plan under
//! the same seed therefore yields bit-identical schedules regardless
//! of worker count or sibling fault activity.
//!
//! # Examples
//!
//! ```
//! use bgpsim_faults::{FaultPlan, FlapTrain};
//! use bgpsim_netsim::time::SimDuration;
//! use bgpsim_topology::NodeId;
//!
//! let plan = FaultPlan::new()
//!     .link_down(SimDuration::ZERO, NodeId::new(0), NodeId::new(5))
//!     .flap(FlapTrain::new(NodeId::new(1), NodeId::new(2)))
//!     .loss(NodeId::new(3), NodeId::new(4), 0.05);
//! plan.validate().unwrap();
//! let events = plan.expand(42);
//! assert_eq!(events, plan.expand(42));
//! ```

mod error;
mod plan;

pub use error::FaultError;
pub use plan::{FaultEvent, FaultKind, FaultPlan, FlapProfile, FlapTrain, LinkLoss};

/// Convenient glob import for fault-injection users.
pub mod prelude {
    pub use crate::{FaultEvent, FaultKind, FaultPlan, FlapProfile, FlapTrain, LinkLoss};
}
