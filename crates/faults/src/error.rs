//! Typed errors for fault-plan validation and installation.

use std::fmt;

use bgpsim_netsim::time::SimTime;
use bgpsim_topology::NodeId;

/// Why a [`FaultPlan`](crate::FaultPlan) was rejected.
///
/// Validation failures are reported before anything is scheduled, so a
/// bad plan never perturbs engine state (and never trips the engine's
/// `cannot schedule into the past` panic).
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum FaultError {
    /// The plan contains no events, flap trains, or loss entries.
    EmptyPlan,
    /// A link fault names the same node on both ends.
    SelfLoop { node: NodeId },
    /// A loss probability is outside `[0, 1]` or not finite.
    InvalidProbability {
        a: NodeId,
        b: NodeId,
        probability: f64,
    },
    /// A flap-train jitter fraction is outside `[0, 0.5]` or not finite.
    InvalidJitter { a: NodeId, b: NodeId, jitter: f64 },
    /// A flap train has a zero period.
    ZeroPeriod { a: NodeId, b: NodeId },
    /// A flap train has a zero cycle count.
    ZeroCount { a: NodeId, b: NodeId },
    /// An expanded event would land before the simulator's current time.
    EventInPast { at: SimTime, now: SimTime },
    /// A fault names a link that does not exist in the topology.
    UnknownLink { a: NodeId, b: NodeId },
}

impl fmt::Display for FaultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultError::EmptyPlan => {
                write!(f, "fault plan is empty (no events, flap trains, or loss)")
            }
            FaultError::SelfLoop { node } => {
                write!(f, "fault plan names a self-loop link at {node}")
            }
            FaultError::InvalidProbability { a, b, probability } => {
                write!(
                    f,
                    "loss probability {probability} on link [{a} {b}] is outside [0, 1]"
                )
            }
            FaultError::InvalidJitter { a, b, jitter } => {
                write!(
                    f,
                    "flap jitter {jitter} on link [{a} {b}] is outside [0, 0.5]"
                )
            }
            FaultError::ZeroPeriod { a, b } => {
                write!(f, "flap train on link [{a} {b}] has a zero period")
            }
            FaultError::ZeroCount { a, b } => {
                write!(f, "flap train on link [{a} {b}] has a zero cycle count")
            }
            FaultError::EventInPast { at, now } => {
                write!(f, "fault event at {at} is in the past (now {now})")
            }
            FaultError::UnknownLink { a, b } => {
                write!(f, "fault plan names unknown link [{a} {b}]")
            }
        }
    }
}

impl std::error::Error for FaultError {}
