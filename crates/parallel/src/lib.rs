//! # bgpsim-parallel
//!
//! Synchronization primitives for the sharded (conservative-parallel)
//! simulation engine. The actual sharded event loop lives in
//! `bgpsim-sim`'s `sharded` module, which needs access to simulation
//! internals; this crate holds the pieces that are pure coordination —
//! a reusable spin barrier, the window-decision encoding the barrier
//! leader publishes through an atomic, and the per-run synchronization
//! statistics surfaced as the `shard_summary` trace event.
//!
//! ## The window protocol, in one paragraph
//!
//! Each of `K` workers owns a partition of the AS graph and runs its
//! own discrete-event engine. Rounds are synchronous: every worker
//! publishes its *earliest output time* (EOT — a lower bound on when
//! anything it still holds could affect another shard), a barrier is
//! crossed, the leader takes the minimum as the window end `W`, a
//! second barrier publishes the decision, every worker executes all
//! its events with `t < W` and deposits cross-shard messages into
//! mailboxes, and a third barrier makes the deposits visible. Because
//! the minimum link delay is strictly positive, `W` always lies
//! strictly beyond the global minimum pending event time, so every
//! round makes progress and no message ever arrives in a shard's past.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::redundant_clone)]

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;

/// Iterations of busy-spinning before a waiting thread starts yielding
/// its time slice. Small: on machines with fewer cores than shards
/// (including the single-core CI container) yielding quickly is what
/// lets the other workers reach the barrier at all.
const SPIN_LIMIT: u32 = 64;

/// A reusable sense-reversing barrier for a fixed party count.
///
/// Unlike `std::sync::Barrier`, waiting is spin-then-yield (no futex
/// round-trip on the fast path — window rounds are microseconds) and
/// the barrier tracks the total wall-clock its parties spent blocked,
/// which the sharded engine reports in the `shard_summary` trace
/// event.
#[derive(Debug)]
pub struct SpinBarrier {
    parties: usize,
    arrived: AtomicUsize,
    generation: AtomicUsize,
    wait_ns: AtomicU64,
}

impl SpinBarrier {
    /// Creates a barrier for `parties` threads.
    ///
    /// # Panics
    ///
    /// Panics if `parties` is zero.
    pub fn new(parties: usize) -> Self {
        assert!(parties > 0, "a barrier needs at least one party");
        SpinBarrier {
            parties,
            arrived: AtomicUsize::new(0),
            generation: AtomicUsize::new(0),
            wait_ns: AtomicU64::new(0),
        }
    }

    /// Blocks until all parties have called `wait`. Returns `true` on
    /// exactly one thread per crossing (the last arriver), which lets
    /// callers run leader-only work between two crossings.
    pub fn wait(&self) -> bool {
        let gen = self.generation.load(Ordering::Acquire);
        let pos = self.arrived.fetch_add(1, Ordering::AcqRel) + 1;
        if pos == self.parties {
            // Reset the arrival count before releasing the generation:
            // a released thread may immediately re-enter wait() for the
            // next crossing.
            self.arrived.store(0, Ordering::Release);
            self.generation
                .store(gen.wrapping_add(1), Ordering::Release);
            return true;
        }
        let start = Instant::now();
        let mut spins = 0u32;
        while self.generation.load(Ordering::Acquire) == gen {
            if spins < SPIN_LIMIT {
                spins += 1;
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
        self.wait_ns
            .fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
        false
    }

    /// Total wall-clock nanoseconds parties have spent blocked in
    /// [`wait`](Self::wait) so far, summed over threads.
    pub fn total_wait_ns(&self) -> u64 {
        self.wait_ns.load(Ordering::Relaxed)
    }
}

/// The barrier leader's per-round verdict, encoded into one `u64` so
/// it can be published through a single atomic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WindowDecision {
    /// Execute all events strictly before this time (nanoseconds).
    Advance(u64),
    /// Every shard is idle and no messages are in flight: the run is
    /// complete.
    Done,
    /// A budget, deadline, or cancellation tripped: stop at the
    /// current window boundary and merge the partial state.
    Abort,
}

const DONE_SENTINEL: u64 = u64::MAX;
const ABORT_SENTINEL: u64 = u64::MAX - 1;

impl WindowDecision {
    /// Encodes the decision for an `AtomicU64`. `Advance` times at or
    /// above the sentinel range are unrepresentable — they would be
    /// ~584 years of simulated time.
    pub fn encode(self) -> u64 {
        match self {
            WindowDecision::Advance(w) => {
                assert!(w < ABORT_SENTINEL, "window end collides with sentinels");
                w
            }
            WindowDecision::Done => DONE_SENTINEL,
            WindowDecision::Abort => ABORT_SENTINEL,
        }
    }

    /// Decodes a value produced by [`encode`](Self::encode).
    pub fn decode(raw: u64) -> Self {
        match raw {
            DONE_SENTINEL => WindowDecision::Done,
            ABORT_SENTINEL => WindowDecision::Abort,
            w => WindowDecision::Advance(w),
        }
    }
}

/// The minimum of a slice of per-shard EOTs (`u64::MAX` = idle shard).
/// Returns [`WindowDecision::Done`] when every shard is idle.
pub fn window_from_eots(eots: &[u64]) -> WindowDecision {
    match eots.iter().copied().min() {
        None | Some(u64::MAX) => WindowDecision::Done,
        Some(w) => WindowDecision::Advance(w),
    }
}

/// Synchronization statistics of one sharded run, reported via the
/// `shard_summary` trace event and the run counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShardRunStats {
    /// Number of shards the run executed on.
    pub shards: u32,
    /// Events dispatched by each shard (sums to the run's event
    /// count).
    pub per_shard_events: Vec<u64>,
    /// Conservative windows executed (barrier rounds).
    pub sync_rounds: u64,
    /// Rounds in which a shard had nothing to send (null messages),
    /// summed over shards.
    pub null_msgs: u64,
    /// Wall-clock spent blocked at window barriers, microseconds,
    /// summed over shards.
    pub barrier_wait_us: u64,
    /// High-water mark of any single shard's event queue.
    pub queue_hiwater: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;

    #[test]
    fn barrier_synchronizes_and_elects_one_leader_per_crossing() {
        const PARTIES: usize = 4;
        const ROUNDS: usize = 50;
        let barrier = Arc::new(SpinBarrier::new(PARTIES));
        let leaders = Arc::new(AtomicU64::new(0));
        let phase_sum = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::new();
        for _ in 0..PARTIES {
            let barrier = Arc::clone(&barrier);
            let leaders = Arc::clone(&leaders);
            let phase_sum = Arc::clone(&phase_sum);
            handles.push(std::thread::spawn(move || {
                for round in 0..ROUNDS {
                    phase_sum.fetch_add(round as u64, Ordering::Relaxed);
                    if barrier.wait() {
                        leaders.fetch_add(1, Ordering::Relaxed);
                        // Between the two crossings the leader sees all
                        // parties' contributions for this round.
                        let expect: u64 = (0..=round as u64).map(|r| r * PARTIES as u64).sum();
                        assert_eq!(phase_sum.load(Ordering::Relaxed), expect);
                    }
                    if barrier.wait() {
                        leaders.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // Two crossings per round; each elects exactly one leader.
        assert_eq!(leaders.load(Ordering::Relaxed), 2 * ROUNDS as u64);
    }

    #[test]
    fn single_party_barrier_never_blocks() {
        let b = SpinBarrier::new(1);
        for _ in 0..10 {
            assert!(b.wait(), "sole party is always the leader");
        }
        assert_eq!(b.total_wait_ns(), 0);
    }

    #[test]
    fn decision_encoding_round_trips() {
        for d in [
            WindowDecision::Advance(0),
            WindowDecision::Advance(123_456_789),
            WindowDecision::Done,
            WindowDecision::Abort,
        ] {
            assert_eq!(WindowDecision::decode(d.encode()), d);
        }
    }

    #[test]
    fn window_is_min_eot_and_all_idle_means_done() {
        assert_eq!(
            window_from_eots(&[5, 3, u64::MAX]),
            WindowDecision::Advance(3)
        );
        assert_eq!(
            window_from_eots(&[u64::MAX, u64::MAX]),
            WindowDecision::Done
        );
        assert_eq!(window_from_eots(&[]), WindowDecision::Done);
    }
}
