//! Serial message-processing model.
//!
//! The ICDCS'04 study (following SSFNet) models a router's CPU as a
//! single server: messages are processed one at a time, each taking a
//! randomly drawn service time (uniform in `[0.1 s, 0.5 s]` in the
//! paper). This serialization matters for the results — e.g. Ghost
//! Flushing loses its edge on large cliques precisely because the flood
//! of flushing withdrawals queues up behind the useful updates
//! (paper §5, footnote 5).
//!
//! [`Processor`] tracks the busy-until time of such a server and computes
//! completion times for arriving work items.

use crate::time::{SimDuration, SimTime};

/// Statistics about a processor's workload.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct ProcessorStats {
    /// Work items admitted.
    pub admitted: u64,
    /// Total service time accumulated.
    pub total_service: SimDuration,
    /// Total time items spent waiting for the server (queueing delay).
    pub total_wait: SimDuration,
    /// Maximum queueing delay seen by any single item.
    pub max_wait: SimDuration,
}

/// A full capture of a [`Processor`]'s state for deterministic
/// checkpointing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct ProcessorSnapshot {
    /// The time at which all admitted work completes.
    pub busy_until: SimTime,
    /// Workload statistics.
    pub stats: ProcessorStats,
}

/// A single-server FIFO work queue with busy-until semantics.
///
/// Rather than materializing a queue of items, the processor only tracks
/// the time at which the server frees up; an item arriving at `a` with
/// service time `s` starts at `max(a, busy_until)` and completes at
/// `start + s`. This is exact for FIFO single-server queues and costs
/// `O(1)` per item.
///
/// # Examples
///
/// ```
/// use bgpsim_netsim::process::Processor;
/// use bgpsim_netsim::time::{SimDuration, SimTime};
///
/// let mut cpu = Processor::new();
/// // Two messages arrive at t=0; each takes 100 ms to process.
/// let d = SimDuration::from_millis(100);
/// assert_eq!(cpu.admit(SimTime::ZERO, d), SimTime::from_millis(100));
/// assert_eq!(cpu.admit(SimTime::ZERO, d), SimTime::from_millis(200));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Processor {
    busy_until: SimTime,
    stats: ProcessorStats,
}

impl Processor {
    /// Creates an idle processor.
    pub fn new() -> Self {
        Processor::default()
    }

    /// The time at which all admitted work completes.
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }

    /// Returns `true` if the server would be idle at `t`.
    pub fn is_idle_at(&self, t: SimTime) -> bool {
        t >= self.busy_until
    }

    /// Workload statistics.
    pub fn stats(&self) -> ProcessorStats {
        self.stats
    }

    /// Admits a work item arriving at `arrival` with the given `service`
    /// time and returns its completion time.
    ///
    /// Items must be admitted in nondecreasing arrival order (FIFO); this
    /// is asserted in debug builds.
    pub fn admit(&mut self, arrival: SimTime, service: SimDuration) -> SimTime {
        let start = arrival.max(self.busy_until);
        let wait = start - arrival;
        let done = start + service;
        self.busy_until = done;
        self.stats.admitted += 1;
        self.stats.total_service += service;
        self.stats.total_wait += wait;
        self.stats.max_wait = self.stats.max_wait.max(wait);
        done
    }

    /// Resets the processor to idle and clears statistics.
    pub fn reset(&mut self) {
        *self = Processor::default();
    }

    /// Captures the full processor state for checkpointing.
    pub fn snapshot(&self) -> ProcessorSnapshot {
        ProcessorSnapshot {
            busy_until: self.busy_until,
            stats: self.stats,
        }
    }

    /// Rebuilds a processor from a captured [`ProcessorSnapshot`].
    pub fn from_snapshot(snap: ProcessorSnapshot) -> Processor {
        Processor {
            busy_until: snap.busy_until,
            stats: snap.stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_server_starts_immediately() {
        let mut p = Processor::new();
        let done = p.admit(SimTime::from_secs(5), SimDuration::from_millis(300));
        assert_eq!(done, SimTime::from_millis(5300));
    }

    #[test]
    fn back_to_back_items_serialize() {
        let mut p = Processor::new();
        let d = SimDuration::from_millis(100);
        let t0 = SimTime::ZERO;
        assert_eq!(p.admit(t0, d), SimTime::from_millis(100));
        assert_eq!(p.admit(t0, d), SimTime::from_millis(200));
        assert_eq!(p.admit(t0, d), SimTime::from_millis(300));
    }

    #[test]
    fn gap_lets_server_drain() {
        let mut p = Processor::new();
        let d = SimDuration::from_millis(100);
        p.admit(SimTime::ZERO, d);
        // Arrives after the first item finished: no queueing.
        let done = p.admit(SimTime::from_secs(1), d);
        assert_eq!(done, SimTime::from_millis(1100));
        assert_eq!(p.stats().total_wait, SimDuration::ZERO);
    }

    #[test]
    fn wait_statistics() {
        let mut p = Processor::new();
        let d = SimDuration::from_millis(200);
        p.admit(SimTime::ZERO, d); // no wait
        p.admit(SimTime::ZERO, d); // waits 200ms
        p.admit(SimTime::ZERO, d); // waits 400ms
        let s = p.stats();
        assert_eq!(s.admitted, 3);
        assert_eq!(s.total_service, SimDuration::from_millis(600));
        assert_eq!(s.total_wait, SimDuration::from_millis(600));
        assert_eq!(s.max_wait, SimDuration::from_millis(400));
    }

    #[test]
    fn is_idle_at_tracks_busy_until() {
        let mut p = Processor::new();
        assert!(p.is_idle_at(SimTime::ZERO));
        p.admit(SimTime::ZERO, SimDuration::from_secs(1));
        assert!(!p.is_idle_at(SimTime::from_millis(500)));
        assert!(p.is_idle_at(SimTime::from_secs(1)));
    }

    #[test]
    fn reset_clears_state() {
        let mut p = Processor::new();
        p.admit(SimTime::ZERO, SimDuration::from_secs(10));
        p.reset();
        assert!(p.is_idle_at(SimTime::ZERO));
        assert_eq!(p.stats(), ProcessorStats::default());
    }

    #[test]
    fn snapshot_round_trip_preserves_queueing() {
        let mut p = Processor::new();
        p.admit(SimTime::ZERO, SimDuration::from_millis(300));
        let mut restored = Processor::from_snapshot(p.snapshot());
        let d = SimDuration::from_millis(100);
        assert_eq!(
            p.admit(SimTime::from_millis(50), d),
            restored.admit(SimTime::from_millis(50), d)
        );
        assert_eq!(p.stats(), restored.stats());
    }

    #[test]
    fn completion_times_are_monotone_for_fifo_arrivals() {
        // Completion order must match arrival order: the invariant the
        // network layer relies on to keep per-peer message order.
        let mut p = Processor::new();
        let mut last = SimTime::ZERO;
        let arrivals = [0u64, 50, 50, 120, 400, 401, 2000];
        for &ms in &arrivals {
            let done = p.admit(SimTime::from_millis(ms), SimDuration::from_millis(100));
            assert!(done > last);
            last = done;
        }
    }
}
