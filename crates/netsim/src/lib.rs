//! # bgpsim-netsim
//!
//! A small, deterministic discrete-event simulation engine — the
//! substrate on which the `bgpsim` BGP routing study runs. It plays the
//! role SSFNet played in the original ICDCS 2004 paper *"A Study of BGP
//! Path Vector Route Looping Behavior"* (Pei, Zhao, Massey, Zhang).
//!
//! Design goals, in order:
//!
//! 1. **Determinism** — integer-nanosecond clock, total event order
//!    `(time, schedule sequence)`, and a single seeded RNG
//!    ([`rng::SimRng`]) so every run is exactly reproducible.
//! 2. **Fidelity to the study's model** — serialized per-node message
//!    processing ([`process::Processor`]) and reliable in-order links
//!    with propagation delay ([`link::Link`]).
//! 3. **Simplicity** — the engine is generic over the event type and has
//!    no knowledge of BGP; higher layers define their own event enums.
//!
//! ## Example
//!
//! ```
//! use bgpsim_netsim::prelude::*;
//!
//! #[derive(Debug)]
//! enum Ev { Ping, Pong }
//!
//! let mut engine: Engine<Ev> = Engine::new();
//! engine.schedule_at(SimTime::from_millis(10), Ev::Ping);
//! let mut pongs = 0;
//! engine.run(|eng, ev| match ev {
//!     Ev::Ping => {
//!         eng.schedule_after(SimDuration::from_millis(5), Ev::Pong);
//!     }
//!     Ev::Pong => pongs += 1,
//! });
//! assert_eq!(pongs, 1);
//! assert_eq!(engine.now(), SimTime::from_millis(15));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod link;
pub mod process;
pub mod queue;
pub mod rng;
pub mod time;

/// Convenient glob-import of the most used engine types.
pub mod prelude {
    pub use crate::engine::{Engine, EngineSnapshot, EngineStats, StopReason};
    pub use crate::link::{Link, LinkSnapshot};
    pub use crate::process::{Processor, ProcessorSnapshot};
    pub use crate::queue::EventId;
    pub use crate::rng::{SimRng, SimRngState};
    pub use crate::time::{SimDuration, SimTime};
}

#[cfg(test)]
mod integration_tests {
    use crate::prelude::*;

    /// A tiny M/D/1-style pipeline: messages arrive over a link into a
    /// serial processor; completion order and times must be exact.
    #[test]
    fn link_into_processor_pipeline() {
        #[derive(Debug)]
        enum Ev {
            Arrive(u32),
            Done(u32),
        }

        let mut engine: Engine<Ev> = Engine::new();
        let mut link = Link::new(SimDuration::from_millis(2));
        let mut cpu = Processor::new();

        // Three messages sent at t = 0, 1ms, 2ms.
        for (i, ms) in [0u64, 1, 2].into_iter().enumerate() {
            let arr = link.transmit(SimTime::from_millis(ms)).unwrap();
            engine.schedule_at(arr, Ev::Arrive(i as u32));
        }

        let mut completions = Vec::new();
        engine.run(|eng, ev| match ev {
            Ev::Arrive(i) => {
                let done = cpu.admit(eng.now(), SimDuration::from_millis(100));
                eng.schedule_at(done, Ev::Done(i));
            }
            Ev::Done(i) => completions.push((eng.now(), i)),
        });

        assert_eq!(
            completions,
            vec![
                (SimTime::from_millis(102), 0),
                (SimTime::from_millis(202), 1),
                (SimTime::from_millis(302), 2),
            ]
        );
    }

    /// Two engines driven by the same seed must evolve identically.
    #[test]
    fn seeded_runs_are_identical() {
        fn run(seed: u64) -> Vec<(SimTime, u64)> {
            let mut engine: Engine<u64> = Engine::new();
            let mut rng = SimRng::new(seed);
            engine.schedule_at(SimTime::ZERO, 0);
            let mut log = Vec::new();
            engine.run(|eng, n| {
                log.push((eng.now(), n));
                if n < 50 {
                    let d = rng.uniform_duration(
                        SimDuration::from_millis(100),
                        SimDuration::from_millis(500),
                    );
                    eng.schedule_after(d, n + 1);
                }
            });
            log
        }
        assert_eq!(run(99), run(99));
        assert_ne!(run(99), run(100));
    }
}
