//! Deterministic pending-event queue.
//!
//! Events are ordered by `(time, sequence)`: ties on time are broken by
//! scheduling order, so two events scheduled for the same instant are
//! delivered in the order they were scheduled. This makes every run with
//! the same seed bit-for-bit reproducible.
//!
//! Cancellation is lazy: [`EventQueue::cancel`] records the id and the
//! entry is discarded when it reaches the head of the heap, which keeps
//! both operations `O(log n)`.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};

use crate::time::SimTime;

/// Identifier for a scheduled event, usable to cancel it later.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(u64);

impl EventId {
    /// Returns the raw id value.
    pub fn as_u64(self) -> u64 {
        self.0
    }
}

#[derive(Debug)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest
        // (time, seq) at the top.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A priority queue of future events ordered by `(time, insertion seq)`.
///
/// # Examples
///
/// ```
/// use bgpsim_netsim::queue::EventQueue;
/// use bgpsim_netsim::time::SimTime;
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_secs(2), "later");
/// q.schedule(SimTime::from_secs(1), "sooner");
/// let (t, _, ev) = q.pop().unwrap();
/// assert_eq!((t, ev), (SimTime::from_secs(1), "sooner"));
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    cancelled: HashSet<u64>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            cancelled: HashSet::new(),
            next_seq: 0,
        }
    }

    /// Schedules `payload` for delivery at `time` and returns an id that
    /// can be passed to [`cancel`](Self::cancel).
    pub fn schedule(&mut self, time: SimTime, payload: E) -> EventId {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, payload });
        EventId(seq)
    }

    /// Cancels a previously scheduled event. Returns `true` if the event
    /// had not yet been delivered or cancelled.
    ///
    /// Cancelling an id that was never issued is a no-op returning `false`
    /// only if the id is in the future sequence space; callers should only
    /// pass ids obtained from [`schedule`](Self::schedule).
    pub fn cancel(&mut self, id: EventId) -> bool {
        if id.0 >= self.next_seq {
            return false;
        }
        self.cancelled.insert(id.0)
    }

    /// Removes and returns the earliest pending event, skipping cancelled
    /// entries.
    pub fn pop(&mut self) -> Option<(SimTime, EventId, E)> {
        while let Some(entry) = self.heap.pop() {
            if self.cancelled.remove(&entry.seq) {
                continue;
            }
            return Some((entry.time, EventId(entry.seq), entry.payload));
        }
        None
    }

    /// Returns the delivery time of the earliest live event without
    /// removing it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        // Drop cancelled entries from the head so the answer is live.
        while let Some(entry) = self.heap.peek() {
            if self.cancelled.contains(&entry.seq) {
                let seq = entry.seq;
                self.heap.pop();
                self.cancelled.remove(&seq);
            } else {
                return Some(entry.time);
            }
        }
        None
    }

    /// Number of entries in the heap, *including* not-yet-skipped
    /// cancelled entries.
    pub fn raw_len(&self) -> usize {
        self.heap.len()
    }

    /// Number of live (non-cancelled) pending events.
    pub fn len(&self) -> usize {
        self.heap.len() - self.cancelled.len()
    }

    /// Returns `true` if no live events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Discards all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
        self.cancelled.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(3), 'c');
        q.schedule(SimTime::from_secs(1), 'a');
        q.schedule(SimTime::from_secs(2), 'b');
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, _, e)| e)).collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
    }

    #[test]
    fn ties_break_by_schedule_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..10 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, _, e)| e)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn cancel_removes_event() {
        let mut q = EventQueue::new();
        let id = q.schedule(SimTime::from_secs(1), "dead");
        q.schedule(SimTime::from_secs(2), "alive");
        assert!(q.cancel(id));
        assert_eq!(q.len(), 1);
        let (_, _, ev) = q.pop().unwrap();
        assert_eq!(ev, "alive");
        assert!(q.pop().is_none());
    }

    #[test]
    fn double_cancel_is_false() {
        let mut q = EventQueue::new();
        let id = q.schedule(SimTime::from_secs(1), ());
        assert!(q.cancel(id));
        assert!(!q.cancel(id));
    }

    #[test]
    fn cancel_unissued_id_is_false() {
        let mut q = EventQueue::<()>::new();
        assert!(!q.cancel(EventId(42)));
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut q = EventQueue::new();
        let id = q.schedule(SimTime::from_secs(1), 1);
        q.schedule(SimTime::from_secs(5), 2);
        q.cancel(id);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(5)));
    }

    #[test]
    fn empty_queue_behaviour() {
        let mut q = EventQueue::<u8>::new();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn clear_discards_everything() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(1), 1);
        let id = q.schedule(SimTime::from_secs(2), 2);
        q.cancel(id);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    proptest! {
        /// The queue must agree with a reference model: a stable sort of
        /// the scheduled (time, seq) pairs.
        #[test]
        fn matches_stable_sort_model(times in proptest::collection::vec(0u64..100, 1..200)) {
            let mut q = EventQueue::new();
            let mut model: Vec<(u64, usize)> = Vec::new();
            for (i, &t) in times.iter().enumerate() {
                q.schedule(SimTime::from_nanos(t), i);
                model.push((t, i));
            }
            model.sort_by_key(|&(t, _)| t); // stable sort keeps insertion order on ties
            let got: Vec<(u64, usize)> =
                std::iter::from_fn(|| q.pop().map(|(t, _, e)| (t.as_nanos(), e))).collect();
            prop_assert_eq!(got, model);
        }

        /// Cancelling an arbitrary subset never delivers a cancelled event
        /// and delivers everything else in model order.
        #[test]
        fn cancellation_model(
            times in proptest::collection::vec(0u64..50, 1..100),
            cancel_mask in proptest::collection::vec(any::<bool>(), 1..100),
        ) {
            let mut q = EventQueue::new();
            let mut ids = Vec::new();
            for (i, &t) in times.iter().enumerate() {
                ids.push(q.schedule(SimTime::from_nanos(t), i));
            }
            let mut expected: Vec<(u64, usize)> = Vec::new();
            for (i, &t) in times.iter().enumerate() {
                let dead = cancel_mask.get(i).copied().unwrap_or(false);
                if dead {
                    q.cancel(ids[i]);
                } else {
                    expected.push((t, i));
                }
            }
            expected.sort_by_key(|&(t, _)| t);
            let got: Vec<(u64, usize)> =
                std::iter::from_fn(|| q.pop().map(|(t, _, e)| (t.as_nanos(), e))).collect();
            prop_assert_eq!(got, expected);
        }
    }
}
