//! Deterministic pending-event queue.
//!
//! Events are ordered by `(time, order)`: ties on time are broken by an
//! explicit *order* tag. [`EventQueue::schedule`] uses the local
//! sequence number as the tag, so two events scheduled for the same
//! instant are delivered in the order they were scheduled — the classic
//! serial behavior. [`EventQueue::schedule_ordered`] lets the caller
//! supply the tag instead; the sharded simulation uses this to give
//! every event a *shard-independent* key, so K per-shard queues pop
//! their slices of the event stream in exactly the order one global
//! queue would have. This makes every run with the same seed
//! bit-for-bit reproducible, serial or sharded.
//!
//! Cancellation is lazy: the queue keeps one *live* bit per issued
//! sequence number — set on schedule, cleared on delivery or
//! cancellation. [`EventQueue::cancel`] just clears the bit; the heap
//! entry is discarded when it reaches the head. All three operations
//! stay `O(log n)` with O(1) bookkeeping and no hashing on the hot
//! path, and no record can outlive its event: cancelling an
//! already-delivered id is a no-op, and the live set is empty whenever
//! the queue is drained. When cancelled entries come to dominate the
//! heap it is compacted in place (see `maybe_compact`), which bounds
//! the raw heap size — and therefore the traced `max_queue_depth` — by
//! twice the live count.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

use crate::time::SimTime;

/// Identifier for a scheduled event, usable to cancel it later.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(u64);

impl EventId {
    /// Returns the raw id value.
    pub fn as_u64(self) -> u64 {
        self.0
    }

    /// Rebuilds an id from its [`as_u64`](Self::as_u64) value.
    ///
    /// Exists for checkpoint restore, where ids captured alongside a
    /// queue snapshot must stay valid against the restored queue
    /// (sequence numbers are preserved verbatim). A fabricated id is
    /// harmless: cancelling it is a no-op unless it names a live event.
    pub const fn from_raw(raw: u64) -> EventId {
        EventId(raw)
    }
}

/// A heap key: the event's delivery time, its total-order tag, and its
/// local sequence number. Payloads live outside the heap (see
/// `EventQueue::payloads`), so sift operations move 24-byte `Copy` keys
/// instead of full events. Delivery order is `(time, order)`; `seq`
/// only locates the payload and live bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Key {
    time: SimTime,
    order: u64,
    seq: u64,
}

impl PartialOrd for Key {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Key {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest
        // (time, order) at the top. `seq` breaks any remaining tie so
        // keys have a total order even if a caller reuses order tags.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.order.cmp(&self.order))
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// One live bit per issued sequence number. Sequence numbers are dense
/// (0, 1, 2, …), so a plain bit vector gives O(1) set/clear/test with
/// no hashing; memory is one bit per event ever scheduled on this
/// queue, which for simulation-sized runs is trivial.
#[derive(Debug, Default)]
struct LiveBits {
    words: Vec<u64>,
    count: usize,
}

impl LiveBits {
    /// Marks `seq` live. Sequence numbers must arrive in order.
    fn insert(&mut self, seq: u64) {
        let word = (seq >> 6) as usize;
        if word == self.words.len() {
            self.words.push(0);
        }
        self.words[word] |= 1 << (seq & 63);
        self.count += 1;
    }

    /// Clears `seq`; returns whether it was live.
    fn remove(&mut self, seq: u64) -> bool {
        match self.words.get_mut((seq >> 6) as usize) {
            Some(w) if *w & (1 << (seq & 63)) != 0 => {
                *w &= !(1 << (seq & 63));
                self.count -= 1;
                true
            }
            _ => false,
        }
    }

    fn contains(&self, seq: u64) -> bool {
        self.words
            .get((seq >> 6) as usize)
            .is_some_and(|w| w & (1 << (seq & 63)) != 0)
    }

    fn clear(&mut self) {
        self.words.clear();
        self.count = 0;
    }

    /// Marks `seq` live in a pre-sized bit vector. The restore path
    /// uses this instead of [`insert`](Self::insert) because snapshot
    /// sequence numbers are sparse (delivered and cancelled seqs are
    /// gone), so the dense in-order growth assumption does not hold.
    fn set(&mut self, seq: u64) {
        self.words[(seq >> 6) as usize] |= 1 << (seq & 63);
        self.count += 1;
    }
}

/// Below this heap size compaction is never worth the rebuild cost.
const COMPACT_MIN_HEAP: usize = 64;

/// A priority queue of future events ordered by `(time, insertion seq)`.
///
/// # Examples
///
/// ```
/// use bgpsim_netsim::queue::EventQueue;
/// use bgpsim_netsim::time::SimTime;
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_secs(2), "later");
/// q.schedule(SimTime::from_secs(1), "sooner");
/// let (t, _, ev) = q.pop().unwrap();
/// assert_eq!((t, ev), (SimTime::from_secs(1), "sooner"));
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Key>,
    /// Live = scheduled and neither delivered nor cancelled. Invariant:
    /// every live seq has exactly one heap entry, so
    /// `heap.len() >= live.count` always holds.
    live: LiveBits,
    /// Payload for issued sequence number `s` sits at
    /// `payloads[s - base_seq]`; the slot becomes `None` when the event
    /// is delivered or cancelled, and the window's front advances past
    /// freed slots. Memory is bounded by the seq span between the
    /// oldest unfreed event and the newest issued one.
    payloads: VecDeque<Option<E>>,
    base_seq: u64,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            live: LiveBits::default(),
            payloads: VecDeque::new(),
            base_seq: 0,
            next_seq: 0,
        }
    }

    /// Schedules `payload` for delivery at `time` and returns an id that
    /// can be passed to [`cancel`](Self::cancel). The order tag is the
    /// local sequence number, so same-instant events deliver in
    /// scheduling order.
    pub fn schedule(&mut self, time: SimTime, payload: E) -> EventId {
        let seq = self.next_seq;
        self.schedule_ordered(time, seq, payload)
    }

    /// Schedules `payload` at `time` under an explicit total-order tag.
    ///
    /// Same-instant events deliver in ascending `order`; the sharded
    /// engine assigns tags from a shard-independent rule so K partial
    /// queues agree with the one global queue on delivery order.
    pub fn schedule_ordered(&mut self, time: SimTime, order: u64, payload: E) -> EventId {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.live.insert(seq);
        self.payloads.push_back(Some(payload));
        self.heap.push(Key { time, order, seq });
        EventId(seq)
    }

    /// Returns `true` if the event with this id is still pending
    /// (scheduled and neither delivered nor cancelled). O(1).
    pub fn is_live(&self, id: EventId) -> bool {
        id.0 < self.next_seq && self.live.contains(id.0)
    }

    /// Frees the payload slot for `seq` (which must be occupied) and
    /// advances the window past freed slots.
    fn take_payload(&mut self, seq: u64) -> E {
        let payload = self.payloads[(seq - self.base_seq) as usize]
            .take()
            .expect("live seq without payload");
        while matches!(self.payloads.front(), Some(None)) {
            self.payloads.pop_front();
            self.base_seq += 1;
        }
        payload
    }

    /// Cancels a previously scheduled event. Returns `true` if the event
    /// had not yet been delivered or cancelled.
    ///
    /// Cancelling an id that was already delivered, already cancelled,
    /// or never issued is a no-op returning `false`.
    pub fn cancel(&mut self, id: EventId) -> bool {
        let hit = self.live.remove(id.0);
        if hit {
            drop(self.take_payload(id.0));
            self.maybe_compact();
        }
        hit
    }

    /// Rebuilds the heap without dead entries once they outnumber live
    /// ones (and the heap is big enough for the `O(n)` rebuild to pay
    /// for itself). Heap order is fully determined by `(time, seq)`, so
    /// compaction never changes delivery order.
    fn maybe_compact(&mut self) {
        if self.heap.len() >= COMPACT_MIN_HEAP && self.heap.len() > 2 * self.live.count {
            let live = &self.live;
            let keys: Vec<Key> = self
                .heap
                .drain()
                .filter(|key| live.contains(key.seq))
                .collect();
            self.heap = BinaryHeap::from(keys);
        }
    }

    /// Removes and returns the earliest pending event, skipping cancelled
    /// entries.
    pub fn pop(&mut self) -> Option<(SimTime, EventId, E)> {
        self.pop_keyed()
            .map(|(time, _, id, payload)| (time, id, payload))
    }

    /// Like [`pop`](Self::pop), but also returns the event's order tag —
    /// the sharded merge needs the full `(time, order)` key of every
    /// dispatch.
    pub fn pop_keyed(&mut self) -> Option<(SimTime, u64, EventId, E)> {
        while let Some(key) = self.heap.pop() {
            if self.live.remove(key.seq) {
                let payload = self.take_payload(key.seq);
                return Some((key.time, key.order, EventId(key.seq), payload));
            }
            // Not live: cancelled earlier; discard the dead key.
        }
        debug_assert!(self.live.count == 0, "live id with no heap entry");
        debug_assert!(self.payloads.is_empty(), "payload with no heap entry");
        None
    }

    /// Returns the delivery time of the earliest live event without
    /// removing it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        // Drop cancelled keys from the head so the answer is live.
        while let Some(key) = self.heap.peek() {
            if self.live.contains(key.seq) {
                return Some(key.time);
            }
            self.heap.pop();
        }
        None
    }

    /// Number of entries in the heap, *including* not-yet-skipped
    /// cancelled entries.
    pub fn raw_len(&self) -> usize {
        self.heap.len()
    }

    /// Number of live (non-cancelled) pending events.
    pub fn len(&self) -> usize {
        self.live.count
    }

    /// Returns `true` if no live events are pending.
    pub fn is_empty(&self) -> bool {
        self.live.count == 0
    }

    /// Discards all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
        self.live.clear();
        self.payloads.clear();
        self.base_seq = self.next_seq;
    }

    /// The live pending entries as `(time, order, seq, payload)` in
    /// delivery order, plus the next sequence number to issue —
    /// everything a checkpoint needs to rebuild this queue exactly.
    pub(crate) fn snapshot_entries(&self) -> (u64, Vec<(SimTime, u64, u64, E)>)
    where
        E: Clone,
    {
        let mut entries: Vec<(SimTime, u64, u64, E)> = self
            .heap
            .iter()
            .filter(|key| self.live.contains(key.seq))
            .map(|key| {
                let payload = self.payloads[(key.seq - self.base_seq) as usize]
                    .as_ref()
                    .expect("live seq without payload")
                    .clone();
                (key.time, key.order, key.seq, payload)
            })
            .collect();
        entries.sort_by_key(|&(time, order, seq, _)| (time, order, seq));
        (self.next_seq, entries)
    }

    /// Rebuilds a queue from captured entries, preserving the original
    /// sequence numbers — so ids captured alongside the snapshot (e.g.
    /// pending MRAI [`EventId`]s) stay valid, same-instant delivery
    /// order is unchanged, and events scheduled after restore continue
    /// the original sequence.
    ///
    /// # Panics
    ///
    /// Panics if an entry's seq is `>= next_seq` or duplicated.
    pub(crate) fn restore_entries(next_seq: u64, entries: Vec<(SimTime, u64, u64, E)>) -> Self {
        let base_seq = entries
            .iter()
            .map(|&(_, _, seq, _)| seq)
            .min()
            .unwrap_or(next_seq);
        let mut payloads: VecDeque<Option<E>> = (base_seq..next_seq).map(|_| None).collect();
        let mut live = LiveBits {
            words: vec![0; (next_seq as usize).div_ceil(64)],
            count: 0,
        };
        let mut heap = BinaryHeap::with_capacity(entries.len());
        for (time, order, seq, payload) in entries {
            assert!(seq < next_seq, "snapshot seq {seq} >= next_seq {next_seq}");
            let slot = &mut payloads[(seq - base_seq) as usize];
            assert!(slot.is_none(), "duplicate seq {seq} in snapshot");
            *slot = Some(payload);
            live.set(seq);
            heap.push(Key { time, order, seq });
        }
        EventQueue {
            heap,
            live,
            payloads,
            base_seq,
            next_seq,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// True when no live bookkeeping remains (every issued id was
    /// delivered or cancelled).
    fn bookkeeping_is_empty<E>(q: &EventQueue<E>) -> bool {
        q.live.count == 0
            && q.live.words.iter().all(|&w| w == 0)
            && q.payloads.is_empty()
            && q.base_seq == q.next_seq
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(3), 'c');
        q.schedule(SimTime::from_secs(1), 'a');
        q.schedule(SimTime::from_secs(2), 'b');
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, _, e)| e)).collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
    }

    #[test]
    fn ties_break_by_schedule_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..10 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, _, e)| e)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn cancel_removes_event() {
        let mut q = EventQueue::new();
        let id = q.schedule(SimTime::from_secs(1), "dead");
        q.schedule(SimTime::from_secs(2), "alive");
        assert!(q.cancel(id));
        assert_eq!(q.len(), 1);
        let (_, _, ev) = q.pop().unwrap();
        assert_eq!(ev, "alive");
        assert!(q.pop().is_none());
    }

    #[test]
    fn double_cancel_is_false() {
        let mut q = EventQueue::new();
        let id = q.schedule(SimTime::from_secs(1), ());
        assert!(q.cancel(id));
        assert!(!q.cancel(id));
    }

    #[test]
    fn cancel_unissued_id_is_false() {
        let mut q = EventQueue::<()>::new();
        assert!(!q.cancel(EventId(42)));
    }

    #[test]
    fn cancel_after_delivery_is_false_and_leaks_nothing() {
        // Regression test for the cancel-set leak: cancelling an id whose
        // event was already delivered used to park the id in the lazy
        // bookkeeping set forever. With live-id tracking it is a no-op.
        let mut q = EventQueue::new();
        let id = q.schedule(SimTime::from_secs(1), "gone");
        assert!(q.pop().is_some());
        assert!(!q.cancel(id));
        assert!(
            bookkeeping_is_empty(&q),
            "no bookkeeping may outlive the event"
        );
        assert_eq!(q.raw_len(), 0);
    }

    #[test]
    fn bookkeeping_empty_after_draining() {
        // Regression test: after draining the queue — with cancellations
        // interleaved before, during, and after delivery — the live set
        // must be empty.
        let mut q = EventQueue::new();
        let mut ids = Vec::new();
        for i in 0..100u64 {
            ids.push(q.schedule(SimTime::from_nanos(i % 7), i));
        }
        for id in ids.iter().step_by(3) {
            assert!(q.cancel(*id));
        }
        let mut delivered = Vec::new();
        while let Some((_, _, ev)) = q.pop() {
            delivered.push(ev);
        }
        assert_eq!(delivered.len(), 100 - 34);
        // Cancel everything again, delivered or not: all no-ops now.
        for id in &ids {
            assert!(!q.cancel(*id));
        }
        assert!(bookkeeping_is_empty(&q));
        assert_eq!(q.raw_len(), 0);
        assert!(q.is_empty());
    }

    #[test]
    fn compaction_bounds_raw_len_and_preserves_order() {
        let mut q = EventQueue::new();
        let mut ids = Vec::new();
        for i in 0..200u64 {
            ids.push(q.schedule(SimTime::from_nanos(1000 - i), i));
        }
        // Cancel 150 of 200: dead entries dominate, compaction must kick in.
        for id in ids.iter().take(150) {
            q.cancel(*id);
        }
        assert_eq!(q.len(), 50);
        assert!(
            q.raw_len() <= 2 * q.len(),
            "raw heap {} not bounded by 2x live {}",
            q.raw_len(),
            q.len()
        );
        let got: Vec<u64> = std::iter::from_fn(|| q.pop().map(|(_, _, e)| e)).collect();
        let expected: Vec<u64> = (150..200).rev().collect();
        assert_eq!(got, expected, "compaction must not change delivery order");
    }

    #[test]
    fn small_queues_skip_compaction() {
        let mut q = EventQueue::new();
        let ids: Vec<_> = (0..10u64)
            .map(|i| q.schedule(SimTime::from_nanos(i), i))
            .collect();
        for id in ids.iter().take(9) {
            q.cancel(*id);
        }
        // Below COMPACT_MIN_HEAP the dead entries stay until popped.
        assert_eq!(q.raw_len(), 10);
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().map(|(_, _, e)| e), Some(9));
        assert_eq!(q.raw_len(), 0);
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut q = EventQueue::new();
        let id = q.schedule(SimTime::from_secs(1), 1);
        q.schedule(SimTime::from_secs(5), 2);
        q.cancel(id);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(5)));
    }

    #[test]
    fn empty_queue_behaviour() {
        let mut q = EventQueue::<u8>::new();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn clear_discards_everything() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(1), 1);
        let id = q.schedule(SimTime::from_secs(2), 2);
        q.cancel(id);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn explicit_order_tags_override_schedule_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        q.schedule_ordered(t, 30, 'c');
        q.schedule_ordered(t, 10, 'a');
        q.schedule_ordered(t, 20, 'b');
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, _, e)| e)).collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
    }

    #[test]
    fn pop_keyed_returns_the_order_tag() {
        let mut q = EventQueue::new();
        q.schedule_ordered(SimTime::from_secs(1), 77, "x");
        let (t, order, _, ev) = q.pop_keyed().unwrap();
        assert_eq!((t, order, ev), (SimTime::from_secs(1), 77, "x"));
    }

    #[test]
    fn is_live_tracks_lifecycle() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_secs(1), 1);
        let b = q.schedule(SimTime::from_secs(2), 2);
        assert!(q.is_live(a) && q.is_live(b));
        q.cancel(a);
        assert!(!q.is_live(a));
        q.pop();
        assert!(!q.is_live(b));
        assert!(!q.is_live(EventId(99)), "unissued ids are not live");
    }

    #[test]
    fn partitioned_queues_agree_with_one_global_queue() {
        // The sharded-engine invariant in miniature: the same keyed
        // events spread over two queues pop, merged by (time, order),
        // in exactly the global queue's order.
        let events: Vec<(u64, u64, u32)> = vec![
            (5, 3, 0),
            (5, 1, 1),
            (2, 9, 2),
            (5, 2, 3),
            (2, 4, 4),
            (7, 0, 5),
        ];
        let mut global = EventQueue::new();
        let mut parts = [EventQueue::new(), EventQueue::new()];
        for &(t, order, val) in &events {
            global.schedule_ordered(SimTime::from_secs(t), order, val);
            parts[(val % 2) as usize].schedule_ordered(SimTime::from_secs(t), order, val);
        }
        let serial: Vec<u32> = std::iter::from_fn(|| global.pop().map(|(_, _, e)| e)).collect();
        let mut merged: Vec<(u64, u64, u32)> = Vec::new();
        for q in parts.iter_mut() {
            while let Some((t, order, _, e)) = q.pop_keyed() {
                merged.push((t.as_nanos(), order, e));
            }
        }
        merged.sort_by_key(|&(t, order, _)| (t, order));
        let sharded: Vec<u32> = merged.into_iter().map(|(_, _, e)| e).collect();
        assert_eq!(serial, sharded);
    }

    proptest! {
        /// The queue must agree with a reference model: a stable sort of
        /// the scheduled (time, seq) pairs.
        #[test]
        fn matches_stable_sort_model(times in proptest::collection::vec(0u64..100, 1..200)) {
            let mut q = EventQueue::new();
            let mut model: Vec<(u64, usize)> = Vec::new();
            for (i, &t) in times.iter().enumerate() {
                q.schedule(SimTime::from_nanos(t), i);
                model.push((t, i));
            }
            model.sort_by_key(|&(t, _)| t); // stable sort keeps insertion order on ties
            let got: Vec<(u64, usize)> =
                std::iter::from_fn(|| q.pop().map(|(t, _, e)| (t.as_nanos(), e))).collect();
            prop_assert_eq!(got, model);
        }

        /// Cancelling an arbitrary subset never delivers a cancelled event
        /// and delivers everything else in model order; afterwards the
        /// bookkeeping is empty regardless of the cancel pattern.
        #[test]
        fn cancellation_model(
            times in proptest::collection::vec(0u64..50, 1..100),
            cancel_mask in proptest::collection::vec(any::<bool>(), 1..100),
        ) {
            let mut q = EventQueue::new();
            let mut ids = Vec::new();
            for (i, &t) in times.iter().enumerate() {
                ids.push(q.schedule(SimTime::from_nanos(t), i));
            }
            let mut expected: Vec<(u64, usize)> = Vec::new();
            for (i, &t) in times.iter().enumerate() {
                let dead = cancel_mask.get(i).copied().unwrap_or(false);
                if dead {
                    q.cancel(ids[i]);
                } else {
                    expected.push((t, i));
                }
            }
            expected.sort_by_key(|&(t, _)| t);
            let got: Vec<(u64, usize)> =
                std::iter::from_fn(|| q.pop().map(|(t, _, e)| (t.as_nanos(), e))).collect();
            prop_assert_eq!(got, expected);
            prop_assert!(bookkeeping_is_empty(&q));
            prop_assert_eq!(q.raw_len(), 0);
        }
    }
}
