//! Seedable randomness for simulations.
//!
//! Every random draw in a run flows through a [`SimRng`], seeded from a
//! single `u64`, so any run can be replayed exactly. Helper methods cover
//! the two distributions the BGP study needs: uniform durations (message
//! processing delay) and multiplicative jitter (the MRAI timer).

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::time::SimDuration;

/// A deterministic random number generator for simulation use.
///
/// # Examples
///
/// ```
/// use bgpsim_netsim::rng::SimRng;
/// use bgpsim_netsim::time::SimDuration;
///
/// let mut a = SimRng::new(7);
/// let mut b = SimRng::new(7);
/// let lo = SimDuration::from_millis(100);
/// let hi = SimDuration::from_millis(500);
/// assert_eq!(a.uniform_duration(lo, hi), b.uniform_duration(lo, hi));
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: StdRng,
    seed: u64,
}

/// The full serializable state of a [`SimRng`], for deterministic
/// checkpointing.
///
/// Two pieces are needed to reproduce a generator exactly: the fork
/// `seed` (which [`SimRng::fork`] mixes, independent of how many draws
/// were made) and the raw xoshiro words advanced by every draw.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct SimRngState {
    /// The seed the generator was created from (drives future forks).
    pub seed: u64,
    /// The mid-stream generator state (drives future draws).
    pub state: [u64; 4],
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        SimRng {
            inner: StdRng::seed_from_u64(seed),
            seed,
        }
    }

    /// Returns the seed this generator was created from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Captures the full mid-stream state for checkpointing.
    pub fn capture(&self) -> SimRngState {
        SimRngState {
            seed: self.seed,
            state: self.inner.state(),
        }
    }

    /// Rebuilds a generator from a captured state: future draws *and*
    /// future forks continue exactly as the original would have.
    pub fn restore(state: SimRngState) -> SimRng {
        SimRng {
            inner: StdRng::from_state(state.state),
            seed: state.seed,
        }
    }

    /// Derives an independent generator for a named sub-stream.
    ///
    /// Forked streams let different subsystems (e.g. traffic phases vs.
    /// message delays) draw randomness without perturbing each other's
    /// sequences when one subsystem changes how much it draws.
    pub fn fork(&self, stream: u64) -> SimRng {
        // SplitMix64-style mix of (seed, stream) into a fresh seed.
        let mut z = self
            .seed
            .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(stream.wrapping_add(1)));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        SimRng::new(z)
    }

    /// Draws a duration uniformly from `[lo, hi]` (inclusive).
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn uniform_duration(&mut self, lo: SimDuration, hi: SimDuration) -> SimDuration {
        assert!(lo <= hi, "uniform_duration requires lo <= hi ({lo} > {hi})");
        if lo == hi {
            return lo;
        }
        SimDuration::from_nanos(self.inner.random_range(lo.as_nanos()..=hi.as_nanos()))
    }

    /// Draws a jittered value of `base`: uniform in
    /// `[base * lo_frac, base * hi_frac]`.
    ///
    /// BGP implementations jitter the MRAI timer to avoid synchronized
    /// update bursts; SSFNet draws from `[0.75 * M, M]`.
    ///
    /// # Panics
    ///
    /// Panics if the fractions are not finite, negative, or out of order.
    pub fn jittered(&mut self, base: SimDuration, lo_frac: f64, hi_frac: f64) -> SimDuration {
        assert!(
            lo_frac.is_finite() && hi_frac.is_finite() && lo_frac >= 0.0 && lo_frac <= hi_frac,
            "jittered requires 0 <= lo_frac <= hi_frac, got [{lo_frac}, {hi_frac}]"
        );
        self.uniform_duration(base.mul_f64(lo_frac), base.mul_f64(hi_frac))
    }

    /// Draws a `u64` uniformly from `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn index(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "index requires a non-empty range");
        self.inner.random_range(0..bound)
    }

    /// Draws a uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        self.inner.random()
    }

    /// Picks a uniformly random element of `items`, or `None` if empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            Some(&items[self.index(items.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.index(1000), b.index(1000));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let av: Vec<usize> = (0..32).map(|_| a.index(1 << 30)).collect();
        let bv: Vec<usize> = (0..32).map(|_| b.index(1 << 30)).collect();
        assert_ne!(av, bv);
    }

    #[test]
    fn uniform_duration_in_bounds() {
        let mut rng = SimRng::new(9);
        let lo = SimDuration::from_millis(100);
        let hi = SimDuration::from_millis(500);
        for _ in 0..1000 {
            let d = rng.uniform_duration(lo, hi);
            assert!(d >= lo && d <= hi, "{d} outside [{lo}, {hi}]");
        }
    }

    #[test]
    fn uniform_duration_degenerate() {
        let mut rng = SimRng::new(9);
        let d = SimDuration::from_secs(3);
        assert_eq!(rng.uniform_duration(d, d), d);
    }

    #[test]
    #[should_panic(expected = "lo <= hi")]
    fn uniform_duration_rejects_inverted() {
        let mut rng = SimRng::new(9);
        let _ = rng.uniform_duration(SimDuration::from_secs(2), SimDuration::from_secs(1));
    }

    #[test]
    fn jittered_in_bounds() {
        let mut rng = SimRng::new(11);
        let base = SimDuration::from_secs(30);
        for _ in 0..1000 {
            let d = rng.jittered(base, 0.75, 1.0);
            assert!(d >= base.mul_f64(0.75) && d <= base);
        }
    }

    #[test]
    fn jittered_none_is_exact() {
        let mut rng = SimRng::new(11);
        let base = SimDuration::from_secs(30);
        assert_eq!(rng.jittered(base, 1.0, 1.0), base);
    }

    #[test]
    fn fork_streams_are_independent_and_deterministic() {
        let root = SimRng::new(5);
        let mut s1 = root.fork(1);
        let mut s1_again = root.fork(1);
        let mut s2 = root.fork(2);
        let a: Vec<usize> = (0..16).map(|_| s1.index(1 << 20)).collect();
        let b: Vec<usize> = (0..16).map(|_| s1_again.index(1 << 20)).collect();
        let c: Vec<usize> = (0..16).map(|_| s2.index(1 << 20)).collect();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn capture_restore_preserves_draws_and_forks() {
        let mut original = SimRng::new(42);
        for _ in 0..13 {
            original.index(1 << 20); // advance mid-stream
        }
        let mut restored = SimRng::restore(original.capture());
        // Future draws continue the exact sequence...
        let a: Vec<usize> = (0..16).map(|_| original.index(1 << 20)).collect();
        let b: Vec<usize> = (0..16).map(|_| restored.index(1 << 20)).collect();
        assert_eq!(a, b);
        // ...and future forks derive the same sub-streams.
        let mut fa = original.fork(9);
        let mut fb = restored.fork(9);
        assert_eq!(fa.index(1000), fb.index(1000));
    }

    #[test]
    fn choose_behaviour() {
        let mut rng = SimRng::new(3);
        let empty: [u8; 0] = [];
        assert_eq!(rng.choose(&empty), None);
        let items = [10, 20, 30];
        for _ in 0..50 {
            assert!(items.contains(rng.choose(&items).unwrap()));
        }
    }

    #[test]
    fn unit_f64_in_range() {
        let mut rng = SimRng::new(4);
        for _ in 0..1000 {
            let x = rng.unit_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn uniform_duration_covers_range_roughly() {
        // Sanity check the distribution is not degenerate: mean of
        // U[100ms, 500ms] should be near 300ms.
        let mut rng = SimRng::new(77);
        let lo = SimDuration::from_millis(100);
        let hi = SimDuration::from_millis(500);
        let n = 10_000u64;
        let total: SimDuration = (0..n).map(|_| rng.uniform_duration(lo, hi)).sum();
        let mean_ms = (total / n).as_millis();
        assert!((280..=320).contains(&mean_ms), "mean {mean_ms}ms");
    }
}
