//! The discrete-event simulation engine.
//!
//! [`Engine`] owns the simulation clock and the pending-event queue and
//! advances time by delivering events in `(time, schedule-order)` order.
//! It is generic over the event payload type `E`; the network layer on
//! top defines its own event enum and drives the engine with
//! [`Engine::pop`] or [`Engine::run`].

use crate::queue::{EventId, EventQueue};
use crate::time::{SimDuration, SimTime};

/// Statistics about engine execution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct EngineStats {
    /// Events delivered so far.
    pub delivered: u64,
    /// Events scheduled so far (including later-cancelled ones).
    pub scheduled: u64,
    /// Events cancelled before delivery.
    pub cancelled: u64,
    /// High-water mark of the pending-event queue depth.
    pub max_pending: u64,
}

/// Rejected schedule request: the target time is before the engine's
/// current clock.
///
/// Returned by [`Engine::try_schedule_at`]; [`Engine::schedule_at`]
/// panics with this error's message instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PastEventError {
    /// The requested delivery time.
    pub at: SimTime,
    /// The engine clock when the request was made.
    pub now: SimTime,
}

impl std::fmt::Display for PastEventError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "cannot schedule into the past: {} < now {}",
            self.at, self.now
        )
    }
}

impl std::error::Error for PastEventError {}

/// Why an [`Engine::run`] loop stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// No pending events remain: the simulation is quiescent.
    Quiescent,
    /// The time horizon passed to [`Engine::run_until`] was reached.
    Horizon,
    /// The event budget passed to [`Engine::run_capped`] was exhausted.
    Budget,
    /// The handler requested a stop via [`Engine::request_stop`].
    Requested,
}

/// A full capture of an [`Engine`]'s state for deterministic
/// checkpointing: the clock, the statistics, and every live pending
/// event with its original `(time, order, seq)` ordering key.
///
/// Sequence numbers are preserved verbatim so that [`EventId`]s held
/// outside the engine (e.g. pending MRAI timers) stay valid against the
/// restored engine, same-instant delivery order is unchanged, and
/// events scheduled after restore continue the original sequence.
#[derive(Debug, Clone)]
pub struct EngineSnapshot<E> {
    /// The simulation clock at capture time.
    pub now: SimTime,
    /// Execution statistics at capture time.
    pub stats: EngineStats,
    /// The next sequence number the queue would issue.
    pub next_seq: u64,
    /// Live pending events as `(time, order, seq, payload)` in delivery
    /// order.
    pub events: Vec<(SimTime, u64, u64, E)>,
}

// Manual impls: the vendored serde derive does not support generics.
impl<E: serde::Serialize> serde::Serialize for EngineSnapshot<E> {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("now".to_string(), serde::Serialize::to_value(&self.now)),
            ("stats".to_string(), serde::Serialize::to_value(&self.stats)),
            (
                "next_seq".to_string(),
                serde::Serialize::to_value(&self.next_seq),
            ),
            (
                "events".to_string(),
                serde::Serialize::to_value(&self.events),
            ),
        ])
    }
}

impl<E: serde::Deserialize> serde::Deserialize for EngineSnapshot<E> {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        Ok(EngineSnapshot {
            now: serde::Deserialize::from_value(serde::value::field(v, "now")?)?,
            stats: serde::Deserialize::from_value(serde::value::field(v, "stats")?)?,
            next_seq: serde::Deserialize::from_value(serde::value::field(v, "next_seq")?)?,
            events: serde::Deserialize::from_value(serde::value::field(v, "events")?)?,
        })
    }
}

/// A deterministic discrete-event simulator core.
///
/// # Examples
///
/// ```
/// use bgpsim_netsim::engine::Engine;
/// use bgpsim_netsim::time::{SimDuration, SimTime};
///
/// let mut engine: Engine<&str> = Engine::new();
/// engine.schedule_at(SimTime::from_secs(1), "hello");
/// engine.schedule_after(SimDuration::from_secs(2), "world");
/// let mut seen = Vec::new();
/// engine.run(|eng, ev| seen.push((eng.now(), ev)));
/// assert_eq!(seen.len(), 2);
/// assert_eq!(engine.now(), SimTime::from_secs(2));
/// ```
#[derive(Debug)]
pub struct Engine<E> {
    queue: EventQueue<E>,
    now: SimTime,
    stats: EngineStats,
    stop_requested: bool,
}

impl<E> Default for Engine<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Engine<E> {
    /// Creates an engine with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        Engine {
            queue: EventQueue::new(),
            now: SimTime::ZERO,
            stats: EngineStats::default(),
            stop_requested: false,
        }
    }

    /// The current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Execution statistics so far.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// Number of live pending events.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Returns `true` if no events are pending.
    pub fn is_quiescent(&self) -> bool {
        self.queue.is_empty()
    }

    /// Delivery time of the next pending event, if any.
    pub fn next_event_time(&mut self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    /// Schedules `payload` for delivery at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current time: scheduling into
    /// the past would violate causality. Callers that want to reject a
    /// bad timestamp gracefully (e.g. fault-plan installation) should
    /// use [`Engine::try_schedule_at`] instead.
    pub fn schedule_at(&mut self, at: SimTime, payload: E) -> EventId {
        match self.try_schedule_at(at, payload) {
            Ok(id) => id,
            Err(e) => panic!("{e}"),
        }
    }

    /// Schedules `payload` at absolute time `at`, returning a typed
    /// error instead of panicking when `at` is already in the past.
    ///
    /// On `Err` the engine is untouched: nothing is enqueued and no
    /// statistics change.
    pub fn try_schedule_at(&mut self, at: SimTime, payload: E) -> Result<EventId, PastEventError> {
        if at < self.now {
            return Err(PastEventError { at, now: self.now });
        }
        self.stats.scheduled += 1;
        let id = self.queue.schedule(at, payload);
        self.stats.max_pending = self.stats.max_pending.max(self.queue.len() as u64);
        Ok(id)
    }

    /// Schedules `payload` at absolute time `at` under an explicit
    /// total-order tag (see [`EventQueue::schedule_ordered`]): ties on
    /// `at` deliver in ascending `order` instead of local scheduling
    /// order. The sharded engine derives the tag from a
    /// shard-independent rule so per-shard queues agree with the global
    /// order.
    ///
    /// # Errors
    ///
    /// Returns [`PastEventError`] when `at` is before the current time;
    /// the engine is untouched.
    pub fn try_schedule_at_ordered(
        &mut self,
        at: SimTime,
        order: u64,
        payload: E,
    ) -> Result<EventId, PastEventError> {
        if at < self.now {
            return Err(PastEventError { at, now: self.now });
        }
        self.stats.scheduled += 1;
        let id = self.queue.schedule_ordered(at, order, payload);
        self.stats.max_pending = self.stats.max_pending.max(self.queue.len() as u64);
        Ok(id)
    }

    /// Panicking form of [`try_schedule_at_ordered`]
    /// (Self::try_schedule_at_ordered); see [`schedule_at`]
    /// (Self::schedule_at) for the rationale.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current time.
    pub fn schedule_at_ordered(&mut self, at: SimTime, order: u64, payload: E) -> EventId {
        match self.try_schedule_at_ordered(at, order, payload) {
            Ok(id) => id,
            Err(e) => panic!("{e}"),
        }
    }

    /// Returns `true` if `id` names a still-pending event. O(1).
    pub fn is_live(&self, id: EventId) -> bool {
        self.queue.is_live(id)
    }

    /// Schedules `payload` for delivery `delay` after the current time.
    pub fn schedule_after(&mut self, delay: SimDuration, payload: E) -> EventId {
        let at = self.now + delay;
        self.stats.scheduled += 1;
        let id = self.queue.schedule(at, payload);
        self.stats.max_pending = self.stats.max_pending.max(self.queue.len() as u64);
        id
    }

    /// Schedules `payload` for immediate delivery (at the current time,
    /// after all events already scheduled for this instant).
    pub fn schedule_now(&mut self, payload: E) -> EventId {
        self.schedule_after(SimDuration::ZERO, payload)
    }

    /// Cancels a pending event. Returns `true` if it had not yet fired.
    pub fn cancel(&mut self, id: EventId) -> bool {
        let hit = self.queue.cancel(id);
        if hit {
            self.stats.cancelled += 1;
        }
        hit
    }

    /// Asks the currently running [`run`](Self::run) loop to stop after
    /// the current event.
    pub fn request_stop(&mut self) {
        self.stop_requested = true;
    }

    /// Removes and returns the next event, advancing the clock to its
    /// delivery time.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.pop_keyed().map(|(time, _, payload)| (time, payload))
    }

    /// Like [`pop`](Self::pop), but also returns the event's order tag —
    /// the full `(time, order)` key the sharded merge sorts on.
    pub fn pop_keyed(&mut self) -> Option<(SimTime, u64, E)> {
        let (time, order, _, payload) = self.queue.pop_keyed()?;
        debug_assert!(time >= self.now, "event queue returned a past event");
        self.now = time;
        self.stats.delivered += 1;
        Some((time, order, payload))
    }

    /// Like [`pop`](Self::pop), but only delivers events scheduled at
    /// or before `horizon`; returns `None` (without advancing the
    /// clock) if the next event lies beyond it. Drive a bounded stretch
    /// of simulation with this, then [`advance_to`](Self::advance_to)
    /// the horizon.
    pub fn pop_until(&mut self, horizon: SimTime) -> Option<(SimTime, E)> {
        match self.next_event_time() {
            Some(t) if t <= horizon => self.pop(),
            _ => None,
        }
    }

    /// Like [`pop_until`](Self::pop_until), but with the full
    /// `(time, order)` key.
    pub fn pop_until_keyed(&mut self, horizon: SimTime) -> Option<(SimTime, u64, E)> {
        match self.next_event_time() {
            Some(t) if t <= horizon => self.pop_keyed(),
            _ => None,
        }
    }

    /// Like [`pop_until_keyed`](Self::pop_until_keyed) with a *strict*
    /// horizon: only events with `time < horizon` are delivered. This
    /// is the conservative-window pop — events at exactly the window
    /// edge belong to the next window.
    pub fn pop_before_keyed(&mut self, horizon: SimTime) -> Option<(SimTime, u64, E)> {
        match self.next_event_time() {
            Some(t) if t < horizon => self.pop_keyed(),
            _ => None,
        }
    }

    /// Moves the clock forward to `at` without delivering anything.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past or would skip over a pending
    /// event.
    pub fn advance_to(&mut self, at: SimTime) {
        assert!(at >= self.now, "cannot move the clock backwards");
        if let Some(t) = self.next_event_time() {
            assert!(
                at <= t,
                "advancing to {at} would skip the pending event at {t}"
            );
        }
        self.now = at;
    }

    /// Runs until quiescent, calling `handler` for each event. The handler
    /// may schedule further events and may call
    /// [`request_stop`](Self::request_stop).
    pub fn run<F>(&mut self, mut handler: F) -> StopReason
    where
        F: FnMut(&mut Engine<E>, E),
    {
        self.stop_requested = false;
        loop {
            if self.stop_requested {
                return StopReason::Requested;
            }
            match self.pop() {
                Some((_, payload)) => handler(self, payload),
                None => return StopReason::Quiescent,
            }
        }
    }

    /// Runs until quiescent or until the clock would pass `horizon`.
    /// Events scheduled exactly at `horizon` are delivered. On return the
    /// clock is at most `horizon`.
    pub fn run_until<F>(&mut self, horizon: SimTime, mut handler: F) -> StopReason
    where
        F: FnMut(&mut Engine<E>, E),
    {
        self.stop_requested = false;
        loop {
            if self.stop_requested {
                return StopReason::Requested;
            }
            match self.next_event_time() {
                None => return StopReason::Quiescent,
                Some(t) if t > horizon => {
                    self.now = horizon;
                    return StopReason::Horizon;
                }
                Some(_) => {
                    let (_, payload) = self.pop().expect("peeked event vanished");
                    handler(self, payload);
                }
            }
        }
    }

    /// Runs until quiescent or until `budget` events have been delivered.
    /// A budget guards against runaway event loops (e.g. a protocol bug
    /// that keeps generating messages forever).
    pub fn run_capped<F>(&mut self, budget: u64, mut handler: F) -> StopReason
    where
        F: FnMut(&mut Engine<E>, E),
    {
        self.stop_requested = false;
        let mut remaining = budget;
        loop {
            if self.stop_requested {
                return StopReason::Requested;
            }
            if remaining == 0 {
                return StopReason::Budget;
            }
            match self.pop() {
                Some((_, payload)) => {
                    remaining -= 1;
                    handler(self, payload);
                }
                None => return StopReason::Quiescent,
            }
        }
    }

    /// Drops all pending events (the clock is left unchanged).
    pub fn clear(&mut self) {
        self.queue.clear();
    }

    /// Captures the full engine state for checkpointing.
    pub fn snapshot(&self) -> EngineSnapshot<E>
    where
        E: Clone,
    {
        let (next_seq, events) = self.queue.snapshot_entries();
        EngineSnapshot {
            now: self.now,
            stats: self.stats,
            next_seq,
            events,
        }
    }

    /// Rebuilds an engine from a captured [`EngineSnapshot`]. The
    /// restored engine delivers the exact same event sequence the
    /// original would have.
    pub fn from_snapshot(snap: EngineSnapshot<E>) -> Self {
        Engine {
            queue: EventQueue::restore_entries(snap.next_seq, snap.events),
            now: snap.now,
            stats: snap.stats,
            stop_requested: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_advances_with_events() {
        let mut e: Engine<u32> = Engine::new();
        e.schedule_at(SimTime::from_secs(5), 1);
        e.schedule_at(SimTime::from_secs(2), 2);
        let (t, ev) = e.pop().unwrap();
        assert_eq!((t, ev), (SimTime::from_secs(2), 2));
        assert_eq!(e.now(), SimTime::from_secs(2));
        let (t, ev) = e.pop().unwrap();
        assert_eq!((t, ev), (SimTime::from_secs(5), 1));
        assert!(e.pop().is_none());
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_past_panics() {
        let mut e: Engine<()> = Engine::new();
        e.schedule_at(SimTime::from_secs(5), ());
        e.pop();
        e.schedule_at(SimTime::from_secs(1), ());
    }

    #[test]
    fn try_schedule_at_rejects_past_without_mutating() {
        let mut e: Engine<u32> = Engine::new();
        e.schedule_at(SimTime::from_secs(5), 1);
        e.pop();
        let before = e.stats();
        let err = e.try_schedule_at(SimTime::from_secs(1), 2).unwrap_err();
        assert_eq!(err.at, SimTime::from_secs(1));
        assert_eq!(err.now, SimTime::from_secs(5));
        assert!(err.to_string().contains("cannot schedule into the past"));
        // A rejected request leaves the engine untouched.
        assert_eq!(e.stats(), before);
        assert!(e.is_quiescent());
        // Scheduling at exactly `now` is still fine.
        assert!(e.try_schedule_at(SimTime::from_secs(5), 3).is_ok());
    }

    #[test]
    fn handler_can_schedule_followups() {
        let mut e: Engine<u32> = Engine::new();
        e.schedule_at(SimTime::from_secs(1), 0);
        let mut seen = Vec::new();
        let reason = e.run(|eng, n| {
            seen.push((eng.now(), n));
            if n < 3 {
                eng.schedule_after(SimDuration::from_secs(1), n + 1);
            }
        });
        assert_eq!(reason, StopReason::Quiescent);
        assert_eq!(
            seen,
            vec![
                (SimTime::from_secs(1), 0),
                (SimTime::from_secs(2), 1),
                (SimTime::from_secs(3), 2),
                (SimTime::from_secs(4), 3),
            ]
        );
    }

    #[test]
    fn run_until_respects_horizon() {
        let mut e: Engine<u32> = Engine::new();
        for s in 1..=10 {
            e.schedule_at(SimTime::from_secs(s), s as u32);
        }
        let mut seen = Vec::new();
        let reason = e.run_until(SimTime::from_secs(4), |_, n| seen.push(n));
        assert_eq!(reason, StopReason::Horizon);
        assert_eq!(seen, vec![1, 2, 3, 4]);
        assert_eq!(e.now(), SimTime::from_secs(4));
        assert_eq!(e.pending(), 6);
    }

    #[test]
    fn run_until_quiescent_before_horizon() {
        let mut e: Engine<u32> = Engine::new();
        e.schedule_at(SimTime::from_secs(1), 1);
        let reason = e.run_until(SimTime::from_secs(100), |_, _| {});
        assert_eq!(reason, StopReason::Quiescent);
        assert_eq!(e.now(), SimTime::from_secs(1));
    }

    #[test]
    fn run_capped_stops_at_budget() {
        let mut e: Engine<u64> = Engine::new();
        e.schedule_at(SimTime::from_secs(1), 0);
        // Self-perpetuating event chain.
        let reason = e.run_capped(100, |eng, n| {
            eng.schedule_after(SimDuration::from_secs(1), n + 1);
        });
        assert_eq!(reason, StopReason::Budget);
        assert_eq!(e.stats().delivered, 100);
    }

    #[test]
    fn request_stop_halts_loop() {
        let mut e: Engine<u32> = Engine::new();
        for s in 1..=5 {
            e.schedule_at(SimTime::from_secs(s), s as u32);
        }
        let mut count = 0;
        let reason = e.run(|eng, _| {
            count += 1;
            if count == 2 {
                eng.request_stop();
            }
        });
        assert_eq!(reason, StopReason::Requested);
        assert_eq!(count, 2);
        assert_eq!(e.pending(), 3);
    }

    #[test]
    fn cancelled_events_are_not_delivered() {
        let mut e: Engine<&str> = Engine::new();
        let id = e.schedule_at(SimTime::from_secs(1), "dead");
        e.schedule_at(SimTime::from_secs(2), "alive");
        assert!(e.cancel(id));
        let mut seen = Vec::new();
        e.run(|_, ev| seen.push(ev));
        assert_eq!(seen, vec!["alive"]);
        assert_eq!(e.stats().cancelled, 1);
    }

    #[test]
    fn same_time_events_deliver_in_schedule_order() {
        let mut e: Engine<u32> = Engine::new();
        let t = SimTime::from_secs(1);
        for i in 0..5 {
            e.schedule_at(t, i);
        }
        let mut seen = Vec::new();
        e.run(|_, ev| seen.push(ev));
        assert_eq!(seen, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn schedule_now_runs_after_current_instant_events() {
        let mut e: Engine<&str> = Engine::new();
        e.schedule_at(SimTime::from_secs(1), "first");
        let mut seen = Vec::new();
        e.run(|eng, ev| {
            seen.push(ev);
            if ev == "first" {
                eng.schedule_now("second");
            }
        });
        assert_eq!(seen, vec!["first", "second"]);
        assert_eq!(e.now(), SimTime::from_secs(1));
    }

    #[test]
    fn pop_until_respects_horizon() {
        let mut e: Engine<u32> = Engine::new();
        e.schedule_at(SimTime::from_secs(1), 1);
        e.schedule_at(SimTime::from_secs(5), 5);
        assert_eq!(
            e.pop_until(SimTime::from_secs(3)),
            Some((SimTime::from_secs(1), 1))
        );
        assert_eq!(e.pop_until(SimTime::from_secs(3)), None);
        assert_eq!(e.now(), SimTime::from_secs(1), "clock stays put");
        e.advance_to(SimTime::from_secs(3));
        assert_eq!(e.now(), SimTime::from_secs(3));
        assert_eq!(
            e.pop_until(SimTime::from_secs(10)),
            Some((SimTime::from_secs(5), 5))
        );
    }

    #[test]
    #[should_panic(expected = "skip the pending event")]
    fn advance_to_cannot_skip_events() {
        let mut e: Engine<u32> = Engine::new();
        e.schedule_at(SimTime::from_secs(2), 1);
        e.advance_to(SimTime::from_secs(3));
    }

    #[test]
    fn snapshot_round_trip_is_isomorphic() {
        let mut e: Engine<u32> = Engine::new();
        for s in 1..=8 {
            e.schedule_at(SimTime::from_secs(s), s as u32);
        }
        // Same-instant events to exercise seq-order preservation.
        e.schedule_at(SimTime::from_secs(3), 100);
        e.schedule_at(SimTime::from_secs(3), 101);
        let dead = e.schedule_at(SimTime::from_secs(4), 999);
        e.cancel(dead);
        e.run_until(SimTime::from_secs(2), |_, _| {});

        let mut restored = Engine::from_snapshot(e.snapshot());
        assert_eq!(restored.now(), e.now());
        assert_eq!(restored.stats(), e.stats());
        assert_eq!(restored.pending(), e.pending());
        let mut a = Vec::new();
        let mut b = Vec::new();
        e.run(|eng, ev| a.push((eng.now(), ev)));
        restored.run(|eng, ev| b.push((eng.now(), ev)));
        assert_eq!(a, b);
        assert_eq!(e.stats(), restored.stats());
    }

    #[test]
    fn snapshot_preserves_event_ids_and_seq_continuation() {
        let mut e: Engine<&str> = Engine::new();
        e.schedule_at(SimTime::from_secs(1), "early");
        let timer = e.schedule_at(SimTime::from_secs(5), "timer");
        let mut restored = Engine::from_snapshot(e.snapshot());
        // An id captured before the snapshot still cancels the event.
        assert!(restored.cancel(timer));
        // New events continue the original sequence: deliver after the
        // pre-snapshot same-instant event.
        let t = SimTime::from_secs(1);
        restored.schedule_at(t, "late");
        let mut seen = Vec::new();
        restored.run(|_, ev| seen.push(ev));
        assert_eq!(seen, vec!["early", "late"]);
        // Cancel of an already-cancelled id is a no-op.
        assert!(!restored.cancel(timer));
    }

    #[test]
    fn stats_track_counts() {
        let mut e: Engine<u8> = Engine::new();
        e.schedule_at(SimTime::from_secs(1), 1);
        let id = e.schedule_at(SimTime::from_secs(2), 2);
        e.cancel(id);
        e.run(|_, _| {});
        let s = e.stats();
        assert_eq!(s.scheduled, 2);
        assert_eq!(s.delivered, 1);
        assert_eq!(s.cancelled, 1);
        assert_eq!(s.max_pending, 2, "both events were pending at once");
    }
}
