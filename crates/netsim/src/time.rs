//! Simulation clock types.
//!
//! The engine measures time in integer **nanoseconds** to keep event
//! ordering exact and runs reproducible: floating-point accumulation
//! error would make event order depend on the history of arithmetic,
//! which is fatal for a deterministic simulator.
//!
//! Two newtypes are provided: [`SimTime`], an absolute instant since the
//! start of the simulation, and [`SimDuration`], a span between instants.
//! They deliberately mirror the `std::time` API surface.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// Number of nanoseconds per second.
pub const NANOS_PER_SEC: u64 = 1_000_000_000;
/// Number of nanoseconds per millisecond.
pub const NANOS_PER_MILLI: u64 = 1_000_000;
/// Number of nanoseconds per microsecond.
pub const NANOS_PER_MICRO: u64 = 1_000;

/// An absolute instant on the simulation clock, in nanoseconds since the
/// start of the run.
///
/// # Examples
///
/// ```
/// use bgpsim_netsim::time::{SimTime, SimDuration};
///
/// let t = SimTime::from_secs(2) + SimDuration::from_millis(500);
/// assert_eq!(t.as_secs_f64(), 2.5);
/// ```
#[derive(
    Debug,
    Clone,
    Copy,
    PartialEq,
    Eq,
    PartialOrd,
    Ord,
    Hash,
    Default,
    serde::Serialize,
    serde::Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulation time, in nanoseconds.
///
/// # Examples
///
/// ```
/// use bgpsim_netsim::time::SimDuration;
///
/// let d = SimDuration::from_millis(30_000);
/// assert_eq!(d, SimDuration::from_secs(30));
/// ```
#[derive(
    Debug,
    Clone,
    Copy,
    PartialEq,
    Eq,
    PartialOrd,
    Ord,
    Hash,
    Default,
    serde::Serialize,
    serde::Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant `nanos` nanoseconds after the start of the run.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Creates an instant `micros` microseconds after the start of the run.
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros * NANOS_PER_MICRO)
    }

    /// Creates an instant `millis` milliseconds after the start of the run.
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis * NANOS_PER_MILLI)
    }

    /// Creates an instant `secs` seconds after the start of the run.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * NANOS_PER_SEC)
    }

    /// Creates an instant from a fractional second count.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "SimTime::from_secs_f64 requires a finite non-negative value, got {secs}"
        );
        SimTime((secs * NANOS_PER_SEC as f64).round() as u64)
    }

    /// Returns the raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the instant as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// Returns the duration elapsed since `earlier`, or `None` if
    /// `earlier` is later than `self`.
    pub fn checked_duration_since(self, earlier: SimTime) -> Option<SimDuration> {
        self.0.checked_sub(earlier.0).map(SimDuration)
    }

    /// Returns the duration elapsed since `earlier`, clamping to zero if
    /// `earlier` is later than `self`.
    pub fn saturating_duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Returns `self + d`, or `None` on overflow.
    pub fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }

    /// Returns the later of `self` and `other`.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// Returns the earlier of `self` and `other`.
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a duration of `nanos` nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }

    /// Creates a duration of `micros` microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros * NANOS_PER_MICRO)
    }

    /// Creates a duration of `millis` milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * NANOS_PER_MILLI)
    }

    /// Creates a duration of `secs` seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * NANOS_PER_SEC)
    }

    /// Creates a duration from a fractional second count.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "SimDuration::from_secs_f64 requires a finite non-negative value, got {secs}"
        );
        SimDuration((secs * NANOS_PER_SEC as f64).round() as u64)
    }

    /// Returns the raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the duration as whole milliseconds, truncating.
    pub const fn as_millis(self) -> u64 {
        self.0 / NANOS_PER_MILLI
    }

    /// Returns the duration as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// Returns `true` if this is the zero duration.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Multiplies the duration by a fraction, rounding to the nearest
    /// nanosecond.
    ///
    /// # Panics
    ///
    /// Panics if `f` is negative or not finite.
    pub fn mul_f64(self, f: f64) -> SimDuration {
        assert!(
            f.is_finite() && f >= 0.0,
            "SimDuration::mul_f64 requires a finite non-negative factor, got {f}"
        );
        SimDuration((self.0 as f64 * f).round() as u64)
    }

    /// Returns `self - other`, clamping to zero.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Returns the larger of `self` and `other`.
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }

    /// Returns the smaller of `self` and `other`.
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(
            self.0
                .checked_add(rhs.0)
                .expect("simulation clock overflow"),
        )
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;

    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(
            self.0
                .checked_sub(rhs.0)
                .expect("simulation clock underflow"),
        )
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;

    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("negative duration between instants"),
        )
    }
}

impl Add for SimDuration {
    type Output = SimDuration;

    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_add(rhs.0).expect("duration overflow"))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;

    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_sub(rhs.0).expect("duration underflow"))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;

    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.checked_mul(rhs).expect("duration overflow"))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;

    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree_on_units() {
        assert_eq!(SimTime::from_secs(1), SimTime::from_millis(1000));
        assert_eq!(SimTime::from_millis(1), SimTime::from_micros(1000));
        assert_eq!(SimTime::from_micros(1), SimTime::from_nanos(1000));
        assert_eq!(SimDuration::from_secs(2), SimDuration::from_millis(2000));
    }

    #[test]
    fn time_plus_duration() {
        let t = SimTime::from_secs(10) + SimDuration::from_millis(250);
        assert_eq!(t.as_nanos(), 10_250 * NANOS_PER_MILLI);
    }

    #[test]
    fn time_difference_is_duration() {
        let a = SimTime::from_secs(5);
        let b = SimTime::from_secs(3);
        assert_eq!(a - b, SimDuration::from_secs(2));
    }

    #[test]
    #[should_panic(expected = "negative duration")]
    fn negative_difference_panics() {
        let _ = SimTime::from_secs(3) - SimTime::from_secs(5);
    }

    #[test]
    fn saturating_duration_since_clamps() {
        let a = SimTime::from_secs(3);
        let b = SimTime::from_secs(5);
        assert_eq!(a.saturating_duration_since(b), SimDuration::ZERO);
        assert_eq!(b.saturating_duration_since(a), SimDuration::from_secs(2));
    }

    #[test]
    fn checked_duration_since() {
        let a = SimTime::from_secs(3);
        let b = SimTime::from_secs(5);
        assert_eq!(a.checked_duration_since(b), None);
        assert_eq!(b.checked_duration_since(a), Some(SimDuration::from_secs(2)));
    }

    #[test]
    fn float_round_trips() {
        let d = SimDuration::from_secs_f64(0.1);
        assert_eq!(d, SimDuration::from_millis(100));
        assert!((d.as_secs_f64() - 0.1).abs() < 1e-12);
        let t = SimTime::from_secs_f64(1.5);
        assert_eq!(t, SimTime::from_millis(1500));
    }

    #[test]
    fn mul_f64_rounds_to_nanos() {
        let d = SimDuration::from_secs(30).mul_f64(0.75);
        assert_eq!(d, SimDuration::from_millis(22_500));
    }

    #[test]
    fn duration_arithmetic() {
        let d = SimDuration::from_secs(1) + SimDuration::from_millis(500);
        assert_eq!(d.as_millis(), 1500);
        assert_eq!(d * 2, SimDuration::from_secs(3));
        assert_eq!(d / 3, SimDuration::from_millis(500));
        assert_eq!(d - SimDuration::from_millis(500), SimDuration::from_secs(1));
    }

    #[test]
    fn duration_sum() {
        let total: SimDuration = (1..=4).map(SimDuration::from_secs).sum();
        assert_eq!(total, SimDuration::from_secs(10));
    }

    #[test]
    fn ordering_and_min_max() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(2);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert_eq!(
            SimDuration::from_secs(1).max(SimDuration::from_secs(2)),
            SimDuration::from_secs(2)
        );
    }

    #[test]
    fn display_is_seconds() {
        assert_eq!(SimTime::from_millis(1500).to_string(), "1.500000s");
        assert_eq!(SimDuration::from_micros(250).to_string(), "0.000250s");
    }

    #[test]
    #[should_panic(expected = "finite non-negative")]
    fn from_secs_f64_rejects_negative() {
        let _ = SimDuration::from_secs_f64(-1.0);
    }
}
