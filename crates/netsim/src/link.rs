//! Point-to-point link model.
//!
//! A [`Link`] is a unidirectional channel with a fixed propagation delay
//! and an up/down state. Delivery is reliable and in order while the link
//! is up (the TCP abstraction used between BGP peers); anything "sent"
//! while the link is down is dropped and counted.
//!
//! The ICDCS'04 study sets the link delay to 2 ms — two orders of
//! magnitude below the message processing delay — so transport details
//! are deliberately negligible.

use crate::rng::{SimRng, SimRngState};
use crate::time::{SimDuration, SimTime};

/// Statistics for a link direction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct LinkStats {
    /// Messages accepted for delivery.
    pub delivered: u64,
    /// Messages dropped because the link was down.
    pub dropped: u64,
    /// Messages dropped by the random-loss model while the link was up.
    pub lost: u64,
}

/// Independent per-message random loss on an up link.
///
/// The generator is a child stream owned by this link direction, so
/// loss draws here never perturb any other random sequence in the run.
#[derive(Debug, Clone)]
struct LossModel {
    probability: f64,
    rng: SimRng,
}

/// A full capture of a [`Link`]'s state for deterministic
/// checkpointing, including the mid-stream loss generator so post-fork
/// loss decisions match the uninterrupted run bit for bit.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct LinkSnapshot {
    /// The propagation delay.
    pub delay: SimDuration,
    /// Whether the link is up.
    pub up: bool,
    /// Latest arrival handed out so far (preserves FIFO across restore).
    pub last_arrival: SimTime,
    /// The loss model, as `(probability, generator state)`, if installed.
    pub loss: Option<(f64, SimRngState)>,
    /// Delivery statistics.
    pub stats: LinkStats,
}

/// A unidirectional reliable FIFO channel with propagation delay.
///
/// # Examples
///
/// ```
/// use bgpsim_netsim::link::Link;
/// use bgpsim_netsim::time::{SimDuration, SimTime};
///
/// let mut link = Link::new(SimDuration::from_millis(2));
/// let arrival = link.transmit(SimTime::from_secs(1)).unwrap();
/// assert_eq!(arrival, SimTime::from_millis(1002));
/// ```
#[derive(Debug, Clone)]
pub struct Link {
    delay: SimDuration,
    up: bool,
    /// Latest arrival handed out so far; used to preserve FIFO order even
    /// if the delay is later reconfigured.
    last_arrival: SimTime,
    loss: Option<LossModel>,
    stats: LinkStats,
}

impl Link {
    /// Creates an up link with the given propagation delay.
    pub fn new(delay: SimDuration) -> Self {
        Link {
            delay,
            up: true,
            last_arrival: SimTime::ZERO,
            loss: None,
            stats: LinkStats::default(),
        }
    }

    /// Installs a random-loss model: each message transmitted while the
    /// link is up is dropped with `probability`, drawn from `rng`.
    ///
    /// The generator should be a dedicated child stream for this link
    /// direction (see `SimRng::fork`) so delivery decisions stay
    /// bit-identical no matter what else draws randomness in the run.
    /// A link without a loss model never draws, which keeps lossless
    /// runs byte-identical to pre-fault behavior.
    pub fn set_loss(&mut self, probability: f64, rng: SimRng) {
        debug_assert!((0.0..=1.0).contains(&probability));
        self.loss = Some(LossModel { probability, rng });
    }

    /// The propagation delay.
    pub fn delay(&self) -> SimDuration {
        self.delay
    }

    /// Changes the propagation delay for subsequent transmissions.
    /// In-flight FIFO ordering is still preserved.
    pub fn set_delay(&mut self, delay: SimDuration) {
        self.delay = delay;
    }

    /// Returns `true` if the link is up.
    pub fn is_up(&self) -> bool {
        self.up
    }

    /// Takes the link down. Subsequent transmissions are dropped.
    pub fn fail(&mut self) {
        self.up = false;
    }

    /// Brings the link back up.
    pub fn restore(&mut self) {
        self.up = true;
    }

    /// Delivery statistics.
    pub fn stats(&self) -> LinkStats {
        self.stats
    }

    /// Computes the arrival time for a message sent at `send_time`, or
    /// `None` if the link is down (the message is dropped and counted).
    ///
    /// Arrival times are monotone across calls, preserving FIFO order.
    pub fn transmit(&mut self, send_time: SimTime) -> Option<SimTime> {
        if !self.up {
            self.stats.dropped += 1;
            return None;
        }
        if let Some(loss) = &mut self.loss {
            if loss.rng.unit_f64() < loss.probability {
                self.stats.lost += 1;
                return None;
            }
        }
        let arrival = (send_time + self.delay).max(self.last_arrival);
        self.last_arrival = arrival;
        self.stats.delivered += 1;
        Some(arrival)
    }

    /// Captures the full link state for checkpointing.
    pub fn snapshot(&self) -> LinkSnapshot {
        LinkSnapshot {
            delay: self.delay,
            up: self.up,
            last_arrival: self.last_arrival,
            loss: self.loss.as_ref().map(|l| (l.probability, l.rng.capture())),
            stats: self.stats,
        }
    }

    /// Rebuilds a link from a captured [`LinkSnapshot`]; the restored
    /// link transmits (and loses) exactly as the original would have.
    pub fn from_snapshot(snap: LinkSnapshot) -> Link {
        Link {
            delay: snap.delay,
            up: snap.up,
            last_arrival: snap.last_arrival,
            loss: snap.loss.map(|(probability, state)| LossModel {
                probability,
                rng: SimRng::restore(state),
            }),
            stats: snap.stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transmit_adds_delay() {
        let mut l = Link::new(SimDuration::from_millis(2));
        assert_eq!(
            l.transmit(SimTime::from_secs(1)),
            Some(SimTime::from_millis(1002))
        );
    }

    #[test]
    fn down_link_drops() {
        let mut l = Link::new(SimDuration::from_millis(2));
        l.fail();
        assert!(!l.is_up());
        assert_eq!(l.transmit(SimTime::ZERO), None);
        assert_eq!(l.stats().dropped, 1);
        assert_eq!(l.stats().delivered, 0);
    }

    #[test]
    fn restore_resumes_delivery() {
        let mut l = Link::new(SimDuration::from_millis(2));
        l.fail();
        assert_eq!(l.transmit(SimTime::ZERO), None);
        l.restore();
        assert!(l.transmit(SimTime::from_secs(1)).is_some());
        assert_eq!(l.stats().delivered, 1);
    }

    #[test]
    fn fifo_preserved_when_delay_shrinks() {
        let mut l = Link::new(SimDuration::from_secs(1));
        let a1 = l.transmit(SimTime::ZERO).unwrap();
        l.set_delay(SimDuration::from_millis(1));
        // Sent later but with a much smaller delay: must not overtake.
        let a2 = l.transmit(SimTime::from_millis(10)).unwrap();
        assert!(a2 >= a1, "{a2} overtook {a1}");
    }

    #[test]
    fn loss_model_drops_and_counts() {
        let mut l = Link::new(SimDuration::from_millis(2));
        l.set_loss(1.0, SimRng::new(1));
        assert_eq!(l.transmit(SimTime::ZERO), None);
        assert_eq!(l.stats().lost, 1);
        assert_eq!(l.stats().delivered, 0);
        // Down-drops are counted separately from loss-drops.
        l.fail();
        assert_eq!(l.transmit(SimTime::ZERO), None);
        assert_eq!(l.stats().dropped, 1);
        assert_eq!(l.stats().lost, 1);
    }

    #[test]
    fn zero_loss_delivers_everything() {
        let mut l = Link::new(SimDuration::from_millis(2));
        l.set_loss(0.0, SimRng::new(1));
        for ms in 0..50u64 {
            assert!(l.transmit(SimTime::from_millis(ms)).is_some());
        }
        assert_eq!(l.stats().lost, 0);
        assert_eq!(l.stats().delivered, 50);
    }

    #[test]
    fn loss_pattern_is_deterministic_per_seed() {
        let run = |seed: u64| {
            let mut l = Link::new(SimDuration::from_millis(2));
            l.set_loss(0.3, SimRng::new(seed));
            (0..100u64)
                .map(|ms| l.transmit(SimTime::from_millis(ms)).is_some())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn snapshot_round_trip_preserves_loss_stream() {
        let mut original = Link::new(SimDuration::from_millis(2));
        original.set_loss(0.3, SimRng::new(9));
        for ms in 0..40u64 {
            original.transmit(SimTime::from_millis(ms));
        }
        let mut restored = Link::from_snapshot(original.snapshot());
        assert_eq!(restored.stats(), original.stats());
        let a: Vec<bool> = (40..120u64)
            .map(|ms| original.transmit(SimTime::from_millis(ms)).is_some())
            .collect();
        let b: Vec<bool> = (40..120u64)
            .map(|ms| restored.transmit(SimTime::from_millis(ms)).is_some())
            .collect();
        assert_eq!(a, b, "loss decisions diverged after restore");
        assert_eq!(restored.stats(), original.stats());
    }

    #[test]
    fn snapshot_round_trip_without_loss_model() {
        let mut l = Link::new(SimDuration::from_secs(1));
        l.transmit(SimTime::ZERO);
        l.fail();
        let restored = Link::from_snapshot(l.snapshot());
        assert!(!restored.is_up());
        assert_eq!(restored.delay(), l.delay());
        assert_eq!(restored.stats(), l.stats());
        assert_eq!(restored.snapshot(), l.snapshot());
    }

    #[test]
    fn arrival_monotone_for_ordered_sends() {
        let mut l = Link::new(SimDuration::from_millis(2));
        let mut last = SimTime::ZERO;
        for ms in [0u64, 1, 1, 5, 100] {
            let a = l.transmit(SimTime::from_millis(ms)).unwrap();
            assert!(a >= last);
            last = a;
        }
        assert_eq!(l.stats().delivered, 5);
    }
}
