//! Packet-delivery time series during convergence.
//!
//! The paper's companion study (Pei et al., DSN 2003 — cited as \[12\])
//! measures *packet delivery performance* during routing convergence;
//! this module provides that view: the fraction of packets delivered,
//! looped away, or dropped route-less, bucketed over time. It makes
//! the transient visible as a curve rather than a single aggregate.

use bgpsim_dataplane::{Packet, PacketFate};
use bgpsim_netsim::time::{SimDuration, SimTime};

/// Packet-fate counts within one time bucket.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeliveryBucket {
    /// Bucket start time.
    pub start: SimTime,
    /// Packets sent in this bucket.
    pub sent: u64,
    /// … of which delivered.
    pub delivered: u64,
    /// … of which dropped by TTL exhaustion (looped).
    pub ttl_exhausted: u64,
    /// … of which dropped route-less.
    pub no_route: u64,
}

impl DeliveryBucket {
    /// Delivered fraction (0 if the bucket is empty).
    pub fn delivery_ratio(&self) -> f64 {
        if self.sent == 0 {
            0.0
        } else {
            self.delivered as f64 / self.sent as f64
        }
    }

    /// Looped fraction (0 if the bucket is empty).
    pub fn loop_ratio(&self) -> f64 {
        if self.sent == 0 {
            0.0
        } else {
            self.ttl_exhausted as f64 / self.sent as f64
        }
    }
}

/// Buckets packet fates by **send time** into intervals of `width`,
/// starting at `start`. Packets sent before `start` are ignored.
///
/// # Panics
///
/// Panics if `width` is zero or the slices differ in length.
pub fn delivery_timeseries(
    packets: &[Packet],
    fates: &[PacketFate],
    start: SimTime,
    width: SimDuration,
) -> Vec<DeliveryBucket> {
    assert!(!width.is_zero(), "bucket width must be positive");
    assert_eq!(packets.len(), fates.len(), "parallel slices required");
    let mut buckets: Vec<DeliveryBucket> = Vec::new();
    for (pkt, fate) in packets.iter().zip(fates) {
        let Some(offset) = pkt.sent_at.checked_duration_since(start) else {
            continue;
        };
        let idx = (offset.as_nanos() / width.as_nanos()) as usize;
        if buckets.len() <= idx {
            buckets.resize_with(idx + 1, DeliveryBucket::default);
        }
        let b = &mut buckets[idx];
        b.sent += 1;
        match fate {
            PacketFate::Delivered { .. } => b.delivered += 1,
            PacketFate::TtlExhausted { .. } => b.ttl_exhausted += 1,
            PacketFate::NoRoute { .. } => b.no_route += 1,
        }
    }
    for (i, b) in buckets.iter_mut().enumerate() {
        b.start = start + width * i as u64;
    }
    buckets
}

/// Renders a delivery time series as an aligned table with a crude
/// loop-ratio bar.
pub fn render_timeseries(buckets: &[DeliveryBucket]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:>12} {:>7} {:>10} {:>8} {:>9}  loop%",
        "t_start", "sent", "delivered", "looped", "no_route"
    );
    for b in buckets {
        let bar_len = (b.loop_ratio() * 20.0).round() as usize;
        let _ = writeln!(
            out,
            "{:>12} {:>7} {:>10} {:>8} {:>9}  {}",
            b.start.to_string(),
            b.sent,
            b.delivered,
            b.ttl_exhausted,
            b.no_route,
            "#".repeat(bar_len),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgpsim_core::Prefix;
    use bgpsim_topology::NodeId;

    fn pkt(sent_ms: u64) -> Packet {
        Packet {
            id: 0,
            src: NodeId::new(1),
            prefix: Prefix::new(0),
            ttl: 128,
            sent_at: SimTime::from_millis(sent_ms),
        }
    }

    fn delivered() -> PacketFate {
        PacketFate::Delivered {
            at: SimTime::ZERO,
            hops: 1,
        }
    }

    fn looped() -> PacketFate {
        PacketFate::TtlExhausted {
            at: SimTime::ZERO,
            node: NodeId::new(1),
        }
    }

    fn no_route() -> PacketFate {
        PacketFate::NoRoute {
            at: SimTime::ZERO,
            node: NodeId::new(1),
        }
    }

    #[test]
    fn buckets_by_send_time() {
        let packets = vec![pkt(0), pkt(500), pkt(1000), pkt(1500), pkt(2500)];
        let fates = vec![delivered(), looped(), looped(), no_route(), delivered()];
        let ts = delivery_timeseries(&packets, &fates, SimTime::ZERO, SimDuration::from_secs(1));
        assert_eq!(ts.len(), 3);
        assert_eq!(ts[0].sent, 2);
        assert_eq!(ts[0].delivered, 1);
        assert_eq!(ts[0].ttl_exhausted, 1);
        assert_eq!(ts[1].sent, 2);
        assert_eq!(ts[1].no_route, 1);
        assert_eq!(ts[2].sent, 1);
        assert_eq!(ts[2].start, SimTime::from_secs(2));
        assert!((ts[0].delivery_ratio() - 0.5).abs() < 1e-12);
        assert!((ts[0].loop_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn packets_before_start_are_ignored() {
        let packets = vec![pkt(100), pkt(5000)];
        let fates = vec![delivered(), delivered()];
        let ts = delivery_timeseries(
            &packets,
            &fates,
            SimTime::from_secs(1),
            SimDuration::from_secs(10),
        );
        assert_eq!(ts.len(), 1);
        assert_eq!(ts[0].sent, 1);
    }

    #[test]
    fn empty_input() {
        let ts = delivery_timeseries(&[], &[], SimTime::ZERO, SimDuration::from_secs(1));
        assert!(ts.is_empty());
        let b = DeliveryBucket::default();
        assert_eq!(b.delivery_ratio(), 0.0);
        assert_eq!(b.loop_ratio(), 0.0);
    }

    #[test]
    fn render_has_header_and_rows() {
        let packets = vec![pkt(0), pkt(100)];
        let fates = vec![looped(), looped()];
        let ts = delivery_timeseries(&packets, &fates, SimTime::ZERO, SimDuration::from_secs(1));
        let text = render_timeseries(&ts);
        assert!(text.contains("delivered"));
        assert!(text.contains("####################"), "full loop bar");
    }

    #[test]
    #[should_panic(expected = "bucket width")]
    fn zero_width_rejected() {
        let _ = delivery_timeseries(&[], &[], SimTime::ZERO, SimDuration::ZERO);
    }

    /// End-to-end: during a clique T_down, early buckets loop heavily
    /// and late buckets (post-convergence) are pure no-route drops.
    #[test]
    fn clique_tdown_delivery_curve() {
        use bgpsim_dataplane::{generate_packets, paper_sources, walk_all, DEFAULT_TTL};
        use bgpsim_netsim::rng::SimRng;
        use bgpsim_sim::{ConvergenceExperiment, FailureEvent};
        use bgpsim_topology::generators;

        let g = generators::clique(8);
        let dest = NodeId::new(0);
        let prefix = Prefix::new(0);
        let record = ConvergenceExperiment::new(
            g,
            dest,
            FailureEvent::WithdrawPrefix {
                origin: dest,
                prefix,
            },
        )
        .with_seed(2)
        .run();
        let fail = record.failure_at.unwrap();
        let end = record.convergence_end().unwrap() + SimDuration::from_secs(10);
        let mut rng = SimRng::new(2).fork(1);
        let sources = paper_sources(record.node_count, dest, &mut rng);
        let packets = generate_packets(&sources, prefix, DEFAULT_TTL, fail, end);
        let fates = walk_all(&record.fib, &packets, SimDuration::from_millis(2));
        let ts = delivery_timeseries(&packets, &fates, fail, SimDuration::from_secs(10));
        assert!(ts.len() >= 3);
        let early_loop = ts[0].loop_ratio();
        let last = ts.last().unwrap();
        assert!(early_loop > 0.3, "early convergence loops heavily");
        assert_eq!(last.ttl_exhausted, 0, "after convergence, no loops");
        assert_eq!(last.delivered, 0, "destination is gone");
        assert_eq!(last.no_route, last.sent, "pure no-route drops");
    }
}
