//! Merged event timelines.
//!
//! Combines a run's BGP message sends, route-selection changes and
//! forwarding-loop births/deaths into one chronological, typed event
//! stream — the raw material for the CLI's `--trace` output and for
//! eyeballing convergence episodes.

use bgpsim_core::{AsPath, Prefix};
use bgpsim_dataplane::LoopRecord;
use bgpsim_netsim::time::SimTime;
use bgpsim_sim::RunRecord;
use bgpsim_topology::NodeId;

/// One event in a merged timeline.
#[derive(Debug, Clone, PartialEq)]
pub enum TimelineEvent {
    /// The failure was injected.
    Failure,
    /// A BGP message left a router.
    Send {
        /// Sender.
        from: NodeId,
        /// Receiver.
        to: NodeId,
        /// The message content.
        message: bgpsim_core::BgpMessage,
    },
    /// A router's selected route changed.
    RouteChange {
        /// The router.
        node: NodeId,
        /// The prefix.
        prefix: Prefix,
        /// The new path (`None` = route lost).
        path: Option<AsPath>,
    },
    /// A forwarding loop appeared.
    LoopFormed {
        /// The loop's nodes (canonical order).
        nodes: Vec<NodeId>,
    },
    /// A forwarding loop disappeared.
    LoopResolved {
        /// The loop's nodes (canonical order).
        nodes: Vec<NodeId>,
    },
}

impl TimelineEvent {
    /// One-line human-readable rendering.
    pub fn describe(&self) -> String {
        match self {
            TimelineEvent::Failure => "*** failure injected ***".to_string(),
            TimelineEvent::Send { from, to, message } => {
                format!("{from} -> {to}  {message}")
            }
            TimelineEvent::RouteChange { node, prefix, path } => match path {
                Some(p) => format!("{node} selects {p} for {prefix}"),
                None => format!("{node} loses its route for {prefix}"),
            },
            TimelineEvent::LoopFormed { nodes } => {
                format!("LOOP FORMED [{}]", join_nodes(nodes))
            }
            TimelineEvent::LoopResolved { nodes } => {
                format!("loop resolved [{}]", join_nodes(nodes))
            }
        }
    }
}

fn join_nodes(nodes: &[NodeId]) -> String {
    nodes
        .iter()
        .map(|n| n.to_string())
        .collect::<Vec<_>>()
        .join(" ")
}

/// Builds the merged timeline of everything at or after `since`.
/// Events are ordered by time; ties keep the category order
/// failure → sends → route changes → loop events.
pub fn build_timeline(
    record: &RunRecord,
    census: &[LoopRecord],
    since: SimTime,
) -> Vec<(SimTime, TimelineEvent)> {
    let mut events: Vec<(SimTime, u8, TimelineEvent)> = Vec::new();
    if let Some(t) = record.failure_at {
        if t >= since {
            events.push((t, 0, TimelineEvent::Failure));
        }
    }
    for s in record.sends.iter().filter(|s| s.at >= since) {
        events.push((
            s.at,
            1,
            TimelineEvent::Send {
                from: s.from,
                to: s.to,
                message: s.message.clone(),
            },
        ));
    }
    for c in record.path_changes.iter().filter(|c| c.at >= since) {
        events.push((
            c.at,
            2,
            TimelineEvent::RouteChange {
                node: c.node,
                prefix: c.prefix,
                path: c.path.clone(),
            },
        ));
    }
    for l in census {
        if l.formed_at >= since {
            events.push((
                l.formed_at,
                3,
                TimelineEvent::LoopFormed {
                    nodes: l.nodes.clone(),
                },
            ));
        }
        if let Some(r) = l.resolved_at {
            if r >= since {
                events.push((
                    r,
                    3,
                    TimelineEvent::LoopResolved {
                        nodes: l.nodes.clone(),
                    },
                ));
            }
        }
    }
    events.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)));
    events.into_iter().map(|(t, _, e)| (t, e)).collect()
}

/// Renders a timeline as indented text, one event per line.
pub fn render_timeline(timeline: &[(SimTime, TimelineEvent)]) -> String {
    let mut out = String::new();
    for (t, ev) in timeline {
        out.push_str(&format!("  {:>14}  {}\n", t.to_string(), ev.describe()));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgpsim_sim::record::PathChange;
    use bgpsim_sim::UpdateSend;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn sample_record() -> RunRecord {
        RunRecord {
            failure_at: Some(SimTime::from_secs(10)),
            sends: vec![
                UpdateSend {
                    at: SimTime::from_secs(5),
                    from: n(0),
                    to: n(1),
                    withdraw: false,
                    message: bgpsim_core::BgpMessage::announce(
                        Prefix::new(0),
                        AsPath::from_ids([0, 9]),
                    ),
                },
                UpdateSend {
                    at: SimTime::from_secs(10),
                    from: n(0),
                    to: n(1),
                    withdraw: true,
                    message: bgpsim_core::BgpMessage::withdraw(Prefix::new(0)),
                },
            ],
            path_changes: vec![PathChange {
                at: SimTime::from_secs(11),
                node: n(1),
                prefix: Prefix::new(0),
                path: None,
            }],
            ..Default::default()
        }
    }

    fn sample_census() -> Vec<LoopRecord> {
        vec![LoopRecord {
            nodes: vec![n(1), n(2)],
            formed_at: SimTime::from_secs(12),
            resolved_at: Some(SimTime::from_secs(15)),
        }]
    }

    #[test]
    fn timeline_is_chronological_and_filtered() {
        let tl = build_timeline(&sample_record(), &sample_census(), SimTime::from_secs(10));
        // The t=5 send is filtered out; failure first, then the t=10
        // withdrawal, route change, loop formed, loop resolved.
        let kinds: Vec<String> = tl.iter().map(|(_, e)| e.describe()).collect();
        assert_eq!(tl.len(), 5);
        assert!(kinds[0].contains("failure"));
        assert!(kinds[1].contains("WITHDRAW"));
        assert!(kinds[2].contains("loses its route"));
        assert!(kinds[3].contains("LOOP FORMED [AS1 AS2]"));
        assert!(kinds[4].contains("loop resolved"));
        assert!(tl.windows(2).all(|w| w[0].0 <= w[1].0));
    }

    #[test]
    fn unfiltered_timeline_keeps_everything() {
        let tl = build_timeline(&sample_record(), &sample_census(), SimTime::ZERO);
        assert_eq!(tl.len(), 6);
    }

    #[test]
    fn render_produces_one_line_per_event() {
        let tl = build_timeline(&sample_record(), &sample_census(), SimTime::ZERO);
        let text = render_timeline(&tl);
        assert_eq!(text.lines().count(), tl.len());
        assert!(text.contains("AS0 -> AS1  ANNOUNCE p0 (0 9)"));
    }

    #[test]
    fn describe_route_selection() {
        let ev = TimelineEvent::RouteChange {
            node: n(5),
            prefix: Prefix::new(0),
            path: Some(AsPath::from_ids([5, 6, 4, 0])),
        };
        assert_eq!(ev.describe(), "AS5 selects (5 6 4 0) for p0");
    }
}
