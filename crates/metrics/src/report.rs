//! The paper's measurement suite (§4.2).
//!
//! Four metrics characterize transient looping in a run:
//!
//! * **Convergence time** — failure to last BGP update sent;
//! * **Overall looping duration** — first to last TTL exhaustion;
//! * **Number of TTL exhaustions** — aggregate frequency × duration of
//!   individual loops;
//! * **Looping ratio** — TTL exhaustions ÷ packets sent during
//!   convergence ≈ the probability that a packet sent during
//!   convergence encounters a loop.

use bgpsim_dataplane::{Packet, PacketFate};
use bgpsim_netsim::time::{SimDuration, SimTime};
use bgpsim_sim::RunRecord;

/// The four paper metrics plus supporting counts for one run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaperMetrics {
    /// Failure → last BGP update sent. `None` if the failure triggered
    /// no updates.
    pub convergence_time: Option<SimDuration>,
    /// First → last TTL exhaustion. `None` if no packet died of TTL.
    pub overall_looping_duration: Option<SimDuration>,
    /// Packets dropped by TTL exhaustion.
    pub ttl_exhaustions: u64,
    /// Packets sent within `[failure, convergence end]`.
    pub packets_during_convergence: u64,
    /// `ttl_exhaustions / packets_during_convergence` (0 if no packets).
    pub looping_ratio: f64,
    /// Packets delivered.
    pub delivered: u64,
    /// Packets dropped for lack of a route.
    pub no_route: u64,
    /// Total packets evaluated.
    pub packets_total: u64,
    /// BGP messages sent at or after the failure.
    pub messages_after_failure: u64,
}

impl PaperMetrics {
    /// Convergence time in seconds (0 if none).
    pub fn convergence_secs(&self) -> f64 {
        self.convergence_time.map_or(0.0, |d| d.as_secs_f64())
    }

    /// Overall looping duration in seconds (0 if none).
    pub fn looping_secs(&self) -> f64 {
        self.overall_looping_duration
            .map_or(0.0, |d| d.as_secs_f64())
    }
}

/// Computes the paper metrics from a run record and the fates of the
/// packets replayed against it.
///
/// `packets` and `fates` must be parallel arrays (as produced by
/// [`bgpsim_dataplane::walk_all`]).
///
/// # Panics
///
/// Panics if the two slices differ in length.
pub fn compute_metrics(
    record: &RunRecord,
    packets: &[Packet],
    fates: &[PacketFate],
) -> PaperMetrics {
    assert_eq!(
        packets.len(),
        fates.len(),
        "packets and fates must be parallel"
    );
    let mut ttl_exhaustions = 0u64;
    let mut delivered = 0u64;
    let mut no_route = 0u64;
    let mut first_exhaustion: Option<SimTime> = None;
    let mut last_exhaustion: Option<SimTime> = None;
    for fate in fates {
        match fate {
            PacketFate::TtlExhausted { at, .. } => {
                ttl_exhaustions += 1;
                first_exhaustion = Some(first_exhaustion.map_or(*at, |f| f.min(*at)));
                last_exhaustion = Some(last_exhaustion.map_or(*at, |l| l.max(*at)));
            }
            PacketFate::Delivered { .. } => delivered += 1,
            PacketFate::NoRoute { .. } => no_route += 1,
        }
    }
    let overall_looping_duration = match (first_exhaustion, last_exhaustion) {
        (Some(f), Some(l)) => Some(l - f),
        _ => None,
    };
    let packets_during_convergence = match (record.failure_at, record.convergence_end()) {
        (Some(fail), Some(end)) => packets
            .iter()
            .filter(|p| p.sent_at >= fail && p.sent_at <= end)
            .count() as u64,
        _ => 0,
    };
    let looping_ratio = if packets_during_convergence > 0 {
        ttl_exhaustions as f64 / packets_during_convergence as f64
    } else {
        0.0
    };
    let messages_after_failure = record
        .failure_at
        .map_or(0, |f| record.sends_since(f) as u64);
    PaperMetrics {
        convergence_time: record.convergence_time(),
        overall_looping_duration,
        ttl_exhaustions,
        packets_during_convergence,
        looping_ratio,
        delivered,
        no_route,
        packets_total: packets.len() as u64,
        messages_after_failure,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgpsim_core::Prefix;
    use bgpsim_sim::UpdateSend;
    use bgpsim_topology::NodeId;

    fn pkt(id: u64, sent_ms: u64) -> Packet {
        Packet {
            id,
            src: NodeId::new(1),
            prefix: Prefix::new(0),
            ttl: 128,
            sent_at: SimTime::from_millis(sent_ms),
        }
    }

    fn record_with_window(fail_s: u64, last_send_s: u64) -> RunRecord {
        RunRecord {
            failure_at: Some(SimTime::from_secs(fail_s)),
            sends: vec![UpdateSend {
                at: SimTime::from_secs(last_send_s),
                from: NodeId::new(0),
                to: NodeId::new(1),
                withdraw: true,
                message: bgpsim_core::BgpMessage::withdraw(Prefix::new(0)),
            }],
            ..Default::default()
        }
    }

    #[test]
    fn counts_and_windows() {
        let record = record_with_window(10, 40);
        let packets = vec![
            pkt(0, 5_000),
            pkt(1, 15_000),
            pkt(2, 20_000),
            pkt(3, 50_000),
        ];
        let fates = vec![
            PacketFate::Delivered {
                at: SimTime::from_millis(5_100),
                hops: 2,
            },
            PacketFate::TtlExhausted {
                at: SimTime::from_millis(15_256),
                node: NodeId::new(2),
            },
            PacketFate::TtlExhausted {
                at: SimTime::from_millis(20_256),
                node: NodeId::new(2),
            },
            PacketFate::NoRoute {
                at: SimTime::from_millis(50_000),
                node: NodeId::new(1),
            },
        ];
        let m = compute_metrics(&record, &packets, &fates);
        assert_eq!(m.ttl_exhaustions, 2);
        assert_eq!(m.delivered, 1);
        assert_eq!(m.no_route, 1);
        assert_eq!(m.packets_total, 4);
        // Window [10s, 40s] contains packets 1 and 2.
        assert_eq!(m.packets_during_convergence, 2);
        assert!((m.looping_ratio - 1.0).abs() < 1e-12);
        assert_eq!(m.overall_looping_duration, Some(SimDuration::from_secs(5)));
        assert_eq!(m.convergence_time, Some(SimDuration::from_secs(30)));
        assert_eq!(m.messages_after_failure, 1);
    }

    #[test]
    fn no_exhaustions_means_no_looping_duration() {
        let record = record_with_window(10, 40);
        let packets = vec![pkt(0, 15_000)];
        let fates = vec![PacketFate::Delivered {
            at: SimTime::from_millis(15_100),
            hops: 1,
        }];
        let m = compute_metrics(&record, &packets, &fates);
        assert_eq!(m.overall_looping_duration, None);
        assert_eq!(m.looping_secs(), 0.0);
        assert_eq!(m.ttl_exhaustions, 0);
        assert_eq!(m.looping_ratio, 0.0);
    }

    #[test]
    fn empty_packets_are_fine() {
        let record = record_with_window(10, 40);
        let m = compute_metrics(&record, &[], &[]);
        assert_eq!(m.packets_total, 0);
        assert_eq!(m.looping_ratio, 0.0);
    }

    #[test]
    #[should_panic(expected = "parallel")]
    fn mismatched_slices_rejected() {
        let record = record_with_window(10, 40);
        let _ = compute_metrics(&record, &[pkt(0, 0)], &[]);
    }

    #[test]
    fn single_exhaustion_has_zero_duration() {
        let record = record_with_window(10, 40);
        let packets = vec![pkt(0, 15_000)];
        let fates = vec![PacketFate::TtlExhausted {
            at: SimTime::from_millis(15_256),
            node: NodeId::new(3),
        }];
        let m = compute_metrics(&record, &packets, &fates);
        assert_eq!(m.overall_looping_duration, Some(SimDuration::ZERO));
    }
}
