//! Per-loop statistics — the paper's stated next step (§6): "examine
//! route change traces to measure the statistics of individual loops
//! such as the loop size and duration."

use bgpsim_dataplane::LoopRecord;
use bgpsim_netsim::time::SimDuration;

/// Aggregate statistics over a set of observed forwarding loops.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoopCensusSummary {
    /// Number of distinct loop episodes observed.
    pub count: usize,
    /// Loops that never resolved within the observation window.
    pub unresolved: usize,
    /// Smallest loop size (nodes), 0 if none.
    pub min_size: usize,
    /// Largest loop size (nodes), 0 if none.
    pub max_size: usize,
    /// Mean loop size, 0 if none.
    pub mean_size: f64,
    /// Share of loops involving exactly two nodes (Hengartner et al.
    /// observed that more than half of real loops are 2-node).
    pub two_node_fraction: f64,
    /// Mean lifetime of the resolved loops.
    pub mean_duration: SimDuration,
    /// Longest lifetime among resolved loops.
    pub max_duration: SimDuration,
}

/// Summarizes a loop census.
pub fn summarize(census: &[LoopRecord]) -> LoopCensusSummary {
    if census.is_empty() {
        return LoopCensusSummary {
            count: 0,
            unresolved: 0,
            min_size: 0,
            max_size: 0,
            mean_size: 0.0,
            two_node_fraction: 0.0,
            mean_duration: SimDuration::ZERO,
            max_duration: SimDuration::ZERO,
        };
    }
    let sizes: Vec<usize> = census.iter().map(|r| r.size()).collect();
    let durations: Vec<SimDuration> = census.iter().filter_map(|r| r.duration()).collect();
    let two_node = census.iter().filter(|r| r.size() == 2).count();
    let mean_duration = if durations.is_empty() {
        SimDuration::ZERO
    } else {
        durations.iter().copied().sum::<SimDuration>() / durations.len() as u64
    };
    LoopCensusSummary {
        count: census.len(),
        unresolved: census.iter().filter(|r| r.resolved_at.is_none()).count(),
        min_size: *sizes.iter().min().expect("nonempty"),
        max_size: *sizes.iter().max().expect("nonempty"),
        mean_size: sizes.iter().sum::<usize>() as f64 / sizes.len() as f64,
        two_node_fraction: two_node as f64 / census.len() as f64,
        mean_duration,
        max_duration: durations.iter().copied().max().unwrap_or(SimDuration::ZERO),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgpsim_netsim::time::SimTime;
    use bgpsim_topology::NodeId;

    fn rec(nodes: &[u32], formed_s: u64, resolved_s: Option<u64>) -> LoopRecord {
        LoopRecord {
            nodes: nodes.iter().map(|&i| NodeId::new(i)).collect(),
            formed_at: SimTime::from_secs(formed_s),
            resolved_at: resolved_s.map(SimTime::from_secs),
        }
    }

    #[test]
    fn empty_census() {
        let s = summarize(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.mean_size, 0.0);
        assert_eq!(s.mean_duration, SimDuration::ZERO);
    }

    #[test]
    fn mixed_census() {
        let census = vec![
            rec(&[1, 2], 0, Some(10)),
            rec(&[3, 4, 5, 6], 5, Some(25)),
            rec(&[7, 8], 7, None),
        ];
        let s = summarize(&census);
        assert_eq!(s.count, 3);
        assert_eq!(s.unresolved, 1);
        assert_eq!(s.min_size, 2);
        assert_eq!(s.max_size, 4);
        assert!((s.mean_size - 8.0 / 3.0).abs() < 1e-12);
        assert!((s.two_node_fraction - 2.0 / 3.0).abs() < 1e-12);
        // Resolved durations: 10 s and 20 s.
        assert_eq!(s.mean_duration, SimDuration::from_secs(15));
        assert_eq!(s.max_duration, SimDuration::from_secs(20));
    }

    #[test]
    fn all_unresolved() {
        let census = vec![rec(&[1, 2], 0, None)];
        let s = summarize(&census);
        assert_eq!(s.unresolved, 1);
        assert_eq!(s.mean_duration, SimDuration::ZERO);
    }
}
