//! Path-exploration analysis over route change traces.
//!
//! The paper closes by proposing to "examine route change traces" —
//! this module does exactly that: it digests the per-node sequence of
//! selected routes after a failure into exploration statistics
//! (Labovitz et al. showed this path exploration is what makes BGP
//! convergence slow; here it is also what creates stale paths for
//! loops to form from).

use std::collections::BTreeMap;

use bgpsim_netsim::time::SimTime;
use bgpsim_sim::RunRecord;
use bgpsim_topology::NodeId;

/// Exploration statistics for one convergence episode.
#[derive(Debug, Clone, PartialEq)]
pub struct ExplorationStats {
    /// Route-selection changes per node (including the final loss),
    /// keyed by node.
    pub changes_per_node: BTreeMap<NodeId, usize>,
    /// Total route changes across all nodes.
    pub total_changes: usize,
    /// Largest number of changes at any single node.
    pub max_changes: usize,
    /// Mean changes over the nodes that changed at all.
    pub mean_changes: f64,
    /// Longest AS path ever selected during the episode.
    pub longest_path: usize,
}

/// Analyzes the route changes at or after `since` (typically the
/// failure instant).
pub fn exploration_stats(record: &RunRecord, since: SimTime) -> ExplorationStats {
    let mut changes_per_node: BTreeMap<NodeId, usize> = BTreeMap::new();
    let mut longest_path = 0;
    for change in record.path_changes.iter().filter(|c| c.at >= since) {
        *changes_per_node.entry(change.node).or_insert(0) += 1;
        if let Some(path) = &change.path {
            longest_path = longest_path.max(path.len());
        }
    }
    let total_changes: usize = changes_per_node.values().sum();
    let max_changes = changes_per_node.values().copied().max().unwrap_or(0);
    let mean_changes = if changes_per_node.is_empty() {
        0.0
    } else {
        total_changes as f64 / changes_per_node.len() as f64
    };
    ExplorationStats {
        changes_per_node,
        total_changes,
        max_changes,
        mean_changes,
        longest_path,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgpsim_core::{AsPath, Prefix};
    use bgpsim_sim::record::PathChange;

    fn change(at_s: u64, node: u32, path: Option<&[u32]>) -> PathChange {
        PathChange {
            at: SimTime::from_secs(at_s),
            node: NodeId::new(node),
            prefix: Prefix::new(0),
            path: path.map(|ids| AsPath::from_ids(ids.iter().copied())),
        }
    }

    #[test]
    fn counts_changes_after_cutoff() {
        let record = RunRecord {
            path_changes: vec![
                change(1, 1, Some(&[1, 0])), // before cutoff: ignored
                change(10, 1, Some(&[1, 2, 0])),
                change(11, 1, Some(&[1, 2, 3, 0])),
                change(12, 2, None),
            ],
            ..Default::default()
        };
        let stats = exploration_stats(&record, SimTime::from_secs(5));
        assert_eq!(stats.total_changes, 3);
        assert_eq!(stats.changes_per_node[&NodeId::new(1)], 2);
        assert_eq!(stats.changes_per_node[&NodeId::new(2)], 1);
        assert_eq!(stats.max_changes, 2);
        assert!((stats.mean_changes - 1.5).abs() < 1e-12);
        assert_eq!(stats.longest_path, 4);
    }

    #[test]
    fn empty_trace() {
        let stats = exploration_stats(&RunRecord::default(), SimTime::ZERO);
        assert_eq!(stats.total_changes, 0);
        assert_eq!(stats.max_changes, 0);
        assert_eq!(stats.mean_changes, 0.0);
        assert_eq!(stats.longest_path, 0);
    }

    /// End-to-end: clique T_down explores many paths per node — the
    /// mechanism behind the paper's long convergence — and the longest
    /// explored path approaches the clique size.
    #[test]
    fn clique_tdown_explores_many_paths() {
        use bgpsim_sim::{ConvergenceExperiment, FailureEvent};
        use bgpsim_topology::generators;
        let n = 8;
        let g = generators::clique(n);
        let record = ConvergenceExperiment::new(
            g,
            NodeId::new(0),
            FailureEvent::WithdrawPrefix {
                origin: NodeId::new(0),
                prefix: Prefix::new(0),
            },
        )
        .with_seed(3)
        .run();
        let fail = record.failure_at.expect("failure");
        let stats = exploration_stats(&record, fail);
        assert!(
            stats.mean_changes > 3.0,
            "clique T_down must explore multiple paths per node, got {}",
            stats.mean_changes
        );
        assert!(
            stats.longest_path >= n / 2,
            "exploration should reach long paths, got {}",
            stats.longest_path
        );
    }
}
