//! Machine-readable export of experiment results.
//!
//! [`MetricsRow`] is a flat, serializable snapshot of one run's metrics
//! (durations in seconds as `f64`), suitable for JSON lines or CSV.

use serde::{Deserialize, Serialize};

use crate::report::PaperMetrics;

/// A flat, serializable record of one experiment run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsRow {
    /// Experiment label (e.g. "fig4a").
    pub experiment: String,
    /// Topology label (e.g. "clique-15").
    pub topology: String,
    /// Protocol variant label (e.g. "BGP", "SSLD").
    pub variant: String,
    /// The x-axis value of the series point (network size, MRAI, …).
    pub x: f64,
    /// Seed used for this run.
    pub seed: u64,
    /// Convergence time in seconds.
    pub convergence_secs: f64,
    /// Overall looping duration in seconds.
    pub looping_secs: f64,
    /// TTL exhaustion count.
    pub ttl_exhaustions: u64,
    /// Packets sent during convergence.
    pub packets_during_convergence: u64,
    /// Looping ratio.
    pub looping_ratio: f64,
    /// BGP messages sent after the failure.
    pub messages_after_failure: u64,
}

impl MetricsRow {
    /// Builds a row from computed metrics and its experimental
    /// coordinates.
    pub fn from_metrics(
        experiment: impl Into<String>,
        topology: impl Into<String>,
        variant: impl Into<String>,
        x: f64,
        seed: u64,
        m: &PaperMetrics,
    ) -> Self {
        MetricsRow {
            experiment: experiment.into(),
            topology: topology.into(),
            variant: variant.into(),
            x,
            seed,
            convergence_secs: m.convergence_secs(),
            looping_secs: m.looping_secs(),
            ttl_exhaustions: m.ttl_exhaustions,
            packets_during_convergence: m.packets_during_convergence,
            looping_ratio: m.looping_ratio,
            messages_after_failure: m.messages_after_failure,
        }
    }

    /// The CSV header matching [`to_csv_line`](Self::to_csv_line).
    pub fn csv_header() -> &'static str {
        "experiment,topology,variant,x,seed,convergence_secs,looping_secs,\
         ttl_exhaustions,packets_during_convergence,looping_ratio,messages_after_failure"
    }

    /// Renders the row as one CSV line (no trailing newline).
    pub fn to_csv_line(&self) -> String {
        format!(
            "{},{},{},{},{},{:.6},{:.6},{},{},{:.6},{}",
            self.experiment,
            self.topology,
            self.variant,
            self.x,
            self.seed,
            self.convergence_secs,
            self.looping_secs,
            self.ttl_exhaustions,
            self.packets_during_convergence,
            self.looping_ratio,
            self.messages_after_failure,
        )
    }
}

/// Renders rows as a JSON array string.
///
/// # Errors
///
/// Returns a `serde_json::Error` if serialization fails (practically
/// impossible for this type).
pub fn to_json(rows: &[MetricsRow]) -> Result<String, serde_json::Error> {
    serde_json::to_string_pretty(rows)
}

/// Renders rows as a CSV document with header.
pub fn to_csv(rows: &[MetricsRow]) -> String {
    let mut out = String::from(MetricsRow::csv_header());
    out.push('\n');
    for r in rows {
        out.push_str(&r.to_csv_line());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MetricsRow {
        MetricsRow {
            experiment: "fig4a".into(),
            topology: "clique-15".into(),
            variant: "BGP".into(),
            x: 15.0,
            seed: 3,
            convergence_secs: 123.4,
            looping_secs: 120.0,
            ttl_exhaustions: 4242,
            packets_during_convergence: 6000,
            looping_ratio: 0.707,
            messages_after_failure: 999,
        }
    }

    #[test]
    fn json_round_trip() {
        let rows = vec![sample()];
        let json = to_json(&rows).unwrap();
        let back: Vec<MetricsRow> = serde_json::from_str(&json).unwrap();
        assert_eq!(rows, back);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let doc = to_csv(&[sample(), sample()]);
        let lines: Vec<&str> = doc.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("experiment,"));
        assert!(lines[1].contains("clique-15"));
        assert_eq!(
            lines[0].split(',').count(),
            lines[1].split(',').count(),
            "header and rows must have the same arity"
        );
    }
}
