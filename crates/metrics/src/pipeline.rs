//! One-call measurement pipeline.
//!
//! Runs the study's full measurement procedure on a completed
//! control-plane run: build the traffic fleet, generate the packets
//! sent during convergence, replay them against the recorded FIB
//! history, and compute the paper metrics (plus the loop census
//! extension).
//!
//! The replay and the loop census share one
//! [`EpochIndex`](bgpsim_dataplane::EpochIndex) built from
//! the run's FIB history: packets walk the index's `(node, epoch)`
//! table (batched, memoized — see `bgpsim-dataplane::replay`) and the
//! census consumes the index's delta stream, so the whole measurement
//! makes a single pass over the recorded history. The naive per-packet
//! [`walk_all`](bgpsim_dataplane::walk_all) is kept as the oracle and
//! cross-checked in tests and CI.

use bgpsim_core::Prefix;
use bgpsim_dataplane::{
    generate_packets, paper_sources, walk_indexed_batch, LoopRecord, ReplayStats, DEFAULT_TTL,
};
use bgpsim_netsim::rng::SimRng;
use bgpsim_netsim::time::SimDuration;
use bgpsim_sim::RunRecord;
use bgpsim_topology::NodeId;

use crate::churn::ChurnSummary;
use crate::loop_stats::{summarize, LoopCensusSummary};
use crate::report::{compute_metrics, PaperMetrics};

/// Everything measured about one run.
#[derive(Debug, Clone)]
pub struct RunMeasurement {
    /// The paper's four metrics (plus supporting counts).
    pub metrics: PaperMetrics,
    /// Every loop episode observed in the forwarding history.
    pub census: Vec<LoopRecord>,
    /// Aggregate loop statistics.
    pub census_summary: LoopCensusSummary,
    /// What the fault layer did to the run (all zeros when fault-free).
    pub churn: ChurnSummary,
    /// Replay-engine counters (packets, memo hits, epoch count).
    pub replay: ReplayStats,
}

/// Measures a completed run.
///
/// Traffic follows the paper's setup: every node except `destination`
/// sends 10 packets/s with a random phase (seeded by `traffic_seed`),
/// over the record's [`replay_window`](RunRecord::replay_window) — from
/// the failure instant until convergence ends, extended by one packet
/// lifetime so late loops are still sampled.
pub fn measure_run(
    record: &RunRecord,
    destination: NodeId,
    prefix: Prefix,
    traffic_seed: u64,
) -> RunMeasurement {
    let mut traffic_rng = SimRng::new(traffic_seed).fork(0xDA7A);
    let sources = paper_sources(record.node_count, destination, &mut traffic_rng);
    let (start, end) = record.replay_window();
    let packets = generate_packets(&sources, prefix, DEFAULT_TTL, start, end);
    let link_delay = SimDuration::from_millis(2);
    // One index serves both the packet replay and the loop census.
    let index = record.fib.epoch_index(prefix);
    let (fates, replay) = walk_indexed_batch(&index, &packets, link_delay);
    let metrics = compute_metrics(record, &packets, &fates);
    let census = index.loop_census();
    let census_summary = summarize(&census);
    RunMeasurement {
        metrics,
        census,
        census_summary,
        churn: ChurnSummary::from_record(record),
        replay,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgpsim_core::{BgpConfig, Jitter};
    use bgpsim_sim::{ConvergenceExperiment, FailureEvent};
    use bgpsim_topology::generators;

    fn run_tdown_clique(n: usize, seed: u64) -> (RunRecord, RunMeasurement) {
        let g = generators::clique(n);
        let dest = NodeId::new(0);
        let prefix = Prefix::new(0);
        let record = ConvergenceExperiment::new(
            g,
            dest,
            FailureEvent::WithdrawPrefix {
                origin: dest,
                prefix,
            },
        )
        .with_config(BgpConfig::default().with_jitter(Jitter::SSFNET))
        .with_seed(seed)
        .run();
        let m = measure_run(&record, dest, prefix, seed);
        (record, m)
    }

    #[test]
    fn tdown_clique_shows_transient_loops() {
        // The paper's headline phenomenon: path-vector routing loops
        // during T_down convergence in a clique.
        let (record, m) = run_tdown_clique(8, 1);
        assert!(
            m.metrics.ttl_exhaustions > 0,
            "no loops observed in clique T_down"
        );
        assert!(m.metrics.packets_during_convergence > 0);
        assert!(m.metrics.looping_ratio > 0.0 && m.metrics.looping_ratio <= 1.0);
        let conv = record.convergence_time().unwrap();
        let looping = m.metrics.overall_looping_duration.unwrap();
        assert!(
            looping <= conv + SimDuration::from_secs(1),
            "looping duration {looping} cannot much exceed convergence {conv}"
        );
        // Loop census must agree that loops existed.
        assert!(m.census_summary.count > 0);
        assert!(m.census_summary.min_size >= 2);
        // After convergence, no loops remain (T_down: all routes gone).
        assert_eq!(m.census_summary.unresolved, 0);
    }

    #[test]
    fn no_loops_before_any_failure() {
        // A run with no failure: nothing to measure, nothing looping.
        let g = generators::clique(5);
        let mut net = bgpsim_sim::SimNetwork::new(
            &g,
            BgpConfig::default(),
            bgpsim_sim::SimParams::default(),
            2,
        );
        net.originate(NodeId::new(0), Prefix::new(0));
        net.run_to_quiescence(10_000_000);
        let record = net.into_record();
        let m = measure_run(&record, NodeId::new(0), Prefix::new(0), 2);
        assert_eq!(m.metrics.ttl_exhaustions, 0);
        assert_eq!(m.metrics.packets_during_convergence, 0);
        // Initial convergence of a clique creates no forwarding loops:
        // routes only ever improve from nothing.
        assert_eq!(m.census_summary.count, 0);
    }

    #[test]
    fn measurement_is_deterministic() {
        let (_, a) = run_tdown_clique(6, 5);
        let (_, b) = run_tdown_clique(6, 5);
        assert_eq!(a.metrics, b.metrics);
        assert_eq!(a.census, b.census);
    }
}
