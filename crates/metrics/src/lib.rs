//! # bgpsim-metrics
//!
//! The measurement layer of the `bgpsim` BGP route-looping study
//! (ICDCS 2004 reproduction). It turns a raw
//! [`bgpsim_sim::RunRecord`] into the paper's four metrics (§4.2) —
//! convergence time, overall looping duration, TTL exhaustion count and
//! looping ratio — plus the per-loop census the paper lists as future
//! work, and serializable result rows for the experiment harness.
//!
//! ## Example
//!
//! ```
//! use bgpsim_metrics::prelude::*;
//! use bgpsim_core::Prefix;
//! use bgpsim_sim::{ConvergenceExperiment, FailureEvent};
//! use bgpsim_topology::{generators, NodeId};
//!
//! let g = generators::clique(5);
//! let dest = NodeId::new(0);
//! let record = ConvergenceExperiment::new(
//!     g,
//!     dest,
//!     FailureEvent::WithdrawPrefix { origin: dest, prefix: Prefix::new(0) },
//! ).with_seed(1).run();
//! let measurement = measure_run(&record, dest, Prefix::new(0), 1);
//! assert!(measurement.metrics.ttl_exhaustions > 0); // transient loops!
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod churn;
pub mod delivery;
pub mod exploration;
pub mod export;
pub mod loop_stats;
pub mod pipeline;
pub mod report;
pub mod timeline;

pub use churn::ChurnSummary;
pub use delivery::{delivery_timeseries, render_timeseries, DeliveryBucket};
pub use exploration::{exploration_stats, ExplorationStats};
pub use export::{to_csv, to_json, MetricsRow};
pub use loop_stats::{summarize, LoopCensusSummary};
pub use pipeline::{measure_run, RunMeasurement};
pub use report::{compute_metrics, PaperMetrics};
pub use timeline::{build_timeline, render_timeline, TimelineEvent};

/// Commonly used types, for glob import.
pub mod prelude {
    pub use crate::churn::ChurnSummary;
    pub use crate::delivery::{delivery_timeseries, render_timeseries, DeliveryBucket};
    pub use crate::exploration::{exploration_stats, ExplorationStats};
    pub use crate::export::{to_csv, to_json, MetricsRow};
    pub use crate::loop_stats::{summarize, LoopCensusSummary};
    pub use crate::pipeline::{measure_run, RunMeasurement};
    pub use crate::report::{compute_metrics, PaperMetrics};
    pub use crate::timeline::{build_timeline, render_timeline, TimelineEvent};
}
