//! Churn accounting for fault-injected runs.
//!
//! The fault layer (`bgpsim-faults`) counts what it did to a run —
//! scheduled faults fired, BGP sessions reset, messages dropped by
//! lossy links. [`ChurnSummary`] lifts those counters out of the raw
//! [`RunRecord`] so sweep tables and reports can show *how much* churn
//! a run experienced next to *what it cost* (the paper metrics).

use bgpsim_sim::RunRecord;

/// What the fault layer did to one run. All zeros for a fault-free run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ChurnSummary {
    /// Scheduled fault events that fired (link downs/ups, session
    /// resets, withdrawals from a fault plan).
    pub faults_injected: u64,
    /// BGP sessions torn down and re-established.
    pub session_resets: u64,
    /// Messages dropped by lossy links.
    pub messages_lost: u64,
}

impl ChurnSummary {
    /// Extracts the churn counters from a run record.
    pub fn from_record(record: &RunRecord) -> Self {
        ChurnSummary {
            faults_injected: record.faults_injected,
            session_resets: record.session_resets,
            messages_lost: record.messages_lost,
        }
    }

    /// `true` when the run experienced no injected churn at all.
    pub fn is_quiet(&self) -> bool {
        *self == ChurnSummary::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_quiet() {
        assert!(ChurnSummary::default().is_quiet());
        let churned = ChurnSummary {
            faults_injected: 1,
            ..Default::default()
        };
        assert!(!churned.is_quiet());
    }

    #[test]
    fn from_record_copies_the_counters() {
        let record = RunRecord {
            faults_injected: 4,
            session_resets: 2,
            messages_lost: 17,
            ..Default::default()
        };
        let churn = ChurnSummary::from_record(&record);
        assert_eq!(churn.faults_injected, 4);
        assert_eq!(churn.session_resets, 2);
        assert_eq!(churn.messages_lost, 17);
    }
}
