//! # bgpsim
//!
//! A from-scratch Rust reproduction of **"A Study of BGP Path Vector
//! Route Looping Behavior"** (Pei, Zhao, Massey, Zhang — ICDCS 2004):
//! a deterministic discrete-event simulator, a BGP path-vector
//! protocol engine with the paper's four convergence enhancements, a
//! TTL-accounting data plane, and an experiment harness that
//! regenerates every evaluation figure.
//!
//! This crate is a facade re-exporting the workspace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`netsim`] | `bgpsim-netsim` | event engine, clock, RNG, links, processors |
//! | [`topology`] | `bgpsim-topology` | graphs, generators (Clique, B-Clique, Internet-like), algorithms |
//! | [`bgp`] | `bgpsim-core` | AS paths, RIBs, decision process, MRAI, SSLD/WRATE/Assertion/Ghost-Flushing |
//! | [`dataplane`] | `bgpsim-dataplane` | packets, FIB histories, replay, loop scanner |
//! | [`sim`] | `bgpsim-sim` | assembled network simulation + failure injection |
//! | [`metrics`] | `bgpsim-metrics` | the paper's metrics + loop census + export |
//! | [`experiments`] | `bgpsim-experiments` | scenarios, sweeps, Figures 4–9 |
//! | [`runner`] | `bgpsim-runner` | parallel executor, run cache, progress/journal, [`RunnerConfig`](bgpsim_runner::RunnerConfig) |
//! | [`serve`] | `bgpsim-serve` | HTTP experiment daemon: admission control, quotas, streaming results |
//! | [`trace`] | `bgpsim-trace` | structured run observability: trace events, sinks, counters |
//!
//! ## Quickstart
//!
//! Reproduce the paper's headline phenomenon — transient forwarding
//! loops during BGP `T_down` convergence — on a 10-node clique:
//!
//! ```
//! use bgpsim::prelude::*;
//!
//! let result = Scenario::new(TopologySpec::Clique(10), EventKind::TDown)
//!     .with_seed(42)
//!     .run();
//! let m = &result.measurement.metrics;
//! assert!(m.ttl_exhaustions > 0, "path-vector routing loops!");
//! assert!(m.looping_ratio > 0.5);
//! println!(
//!     "convergence {:.1}s, looping {:.1}s, ratio {:.2}",
//!     m.convergence_secs(),
//!     m.looping_secs(),
//!     m.looping_ratio
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;

pub use bgpsim_checkpoint as checkpoint;
pub use bgpsim_core as bgp;
pub use bgpsim_dataplane as dataplane;
pub use bgpsim_experiments as experiments;
pub use bgpsim_faults as faults;
pub use bgpsim_metrics as metrics;
pub use bgpsim_netsim as netsim;
pub use bgpsim_runner as runner;
pub use bgpsim_serve as serve;
pub use bgpsim_sim as sim;
pub use bgpsim_topology as topology;
pub use bgpsim_trace as trace;

/// The most common types across the workspace, for glob import.
pub mod prelude {
    pub use bgpsim_core::prelude::*;
    pub use bgpsim_dataplane::prelude::*;
    pub use bgpsim_experiments::figures::Scale;
    pub use bgpsim_experiments::scenario::{EventKind, Scenario, ScenarioResult, TopologySpec};
    pub use bgpsim_metrics::prelude::*;
    pub use bgpsim_netsim::prelude::*;
    pub use bgpsim_sim::prelude::*;
    pub use bgpsim_topology::{algo, generators, Graph, NodeId};
}
