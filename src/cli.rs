//! Command-line argument handling for the `bgpsim` binary.
//!
//! Kept dependency-free: the grammar is small and a hand-rolled parser
//! keeps the CLI testable without pulling an argument-parsing crate
//! into the library's dependency tree.

use std::error::Error;
use std::fmt;

use bgpsim_core::{Enhancements, Jitter};
use bgpsim_experiments::scenario::{EventKind, TopologySpec};

/// A parsed CLI invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct CliOptions {
    /// Topology specification.
    pub topology: TopologySpec,
    /// Failure event class.
    pub event: EventKind,
    /// MRAI in seconds.
    pub mrai_secs: u64,
    /// MRAI jitter.
    pub jitter: Jitter,
    /// Enhancement set.
    pub enhancements: Enhancements,
    /// Seed.
    pub seed: u64,
    /// Emit machine-readable JSON instead of the human report.
    pub json: bool,
    /// Print the post-failure route-change timeline.
    pub trace: bool,
    /// Stream structured JSONL trace events to this file
    /// (`None` = `BGPSIM_TRACE`, else tracing disabled).
    pub trace_out: Option<String>,
    /// Runner worker count override (`None` = `BGPSIM_JOBS` / auto).
    pub jobs: Option<usize>,
    /// Run-cache directory override (`None` = `BGPSIM_CACHE_DIR`).
    pub cache_dir: Option<String>,
    /// Conservative-parallel worker shards for the single run
    /// (`None` = `BGPSIM_SHARDS`, else serial). Results are
    /// byte-identical at any count.
    pub shards: Option<u32>,
    /// Run jobs in supervised child processes (`None` =
    /// `BGPSIM_ISOLATE`, else in-process). Pure execution policy,
    /// like shards: results are byte-identical either way.
    pub isolate: Option<bool>,
}

impl Default for CliOptions {
    fn default() -> Self {
        CliOptions {
            topology: TopologySpec::Clique(10),
            event: EventKind::TDown,
            mrai_secs: 30,
            jitter: Jitter::SSFNET,
            enhancements: Enhancements::standard(),
            seed: 0,
            json: false,
            trace: false,
            trace_out: None,
            jobs: None,
            cache_dir: None,
            shards: None,
            isolate: None,
        }
    }
}

/// Error produced by [`parse_args`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError(String);

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl Error for CliError {}

/// The usage text.
pub const USAGE: &str = "\
bgpsim — simulate BGP transient route looping (ICDCS 2004 reproduction)

USAGE:
  bgpsim [OPTIONS]

OPTIONS:
  --topology <SPEC>     clique:<n> | bclique:<n> | internet:<n>[:<topo-seed>]
                        (default clique:10)
  --event <KIND>        tdown | tlong            (default tdown)
  --mrai <SECS>         MRAI timer value          (default 30)
  --no-jitter           disable MRAI jitter
  --enhancement <E>     none | ssld | wrate | assertion | ghost-flushing
                        (default none)
  --seed <N>            RNG seed                  (default 0)
  --json                emit metrics as JSON
  --trace               print the post-failure route-change timeline
  --trace-out <FILE>    stream structured JSONL trace events to FILE
                        (default: $BGPSIM_TRACE, else off)
  --jobs <N>            runner worker count       (default: $BGPSIM_JOBS,
                        else available parallelism; 1 = serial)
  --cache-dir <DIR>     reuse run results cached in DIR
                        (default: $BGPSIM_CACHE_DIR, else uncached)
  --shards <K>          run the simulation on K conservative-parallel
                        worker shards — byte-identical to serial
                        (default: $BGPSIM_SHARDS, else 1)
  --isolate             run each job in a supervised child process
                        (crash tolerance; results byte-identical;
                        default: $BGPSIM_ISOLATE, else off)
  --help                show this text

SUBCOMMANDS:
  bgpsim serve …        long-running experiment service (see serve --help)
  bgpsim checkpoint …   save / inspect / fork warm-up checkpoints
                        (see checkpoint --help)
  bgpsim recover …      replay the write-ahead journal after a crash
                        (see recover --help)
";

/// A parsed `bgpsim serve` invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeOptions {
    /// Listen address (`host:port`; port `0` = ephemeral).
    pub addr: String,
    /// Executor worker threads draining the run queue.
    pub exec_workers: usize,
    /// Runner worker count override (`None` = `BGPSIM_JOBS` / auto).
    pub jobs: Option<usize>,
    /// Run-cache directory override (`None` = `BGPSIM_CACHE_DIR`).
    pub cache_dir: Option<String>,
    /// Journal file override (`None` = `BGPSIM_JOURNAL`).
    pub journal: Option<String>,
    /// Trace output override (`None` = `BGPSIM_TRACE`).
    pub trace_out: Option<String>,
    /// Cap on queued (admitted, not yet started) runs.
    pub max_queued_runs: usize,
    /// Per-client concurrent-job quota (`None` = unlimited).
    pub max_jobs_per_client: Option<usize>,
    /// Per-client cumulative event budget (`None` = unlimited).
    pub event_budget: Option<u64>,
    /// Process isolation for jobs. Defaults to **on** for the daemon
    /// (a client's crashing job must never kill the service);
    /// `--no-isolate` opts out.
    pub isolate: bool,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            addr: "127.0.0.1:8355".to_string(),
            exec_workers: 2,
            jobs: None,
            cache_dir: None,
            journal: None,
            trace_out: None,
            max_queued_runs: 1024,
            max_jobs_per_client: Some(64),
            event_budget: None,
            isolate: true,
        }
    }
}

/// The usage text for `bgpsim serve`.
pub const SERVE_USAGE: &str = "\
bgpsim serve — long-running experiment service over the batch runner

USAGE:
  bgpsim serve [OPTIONS]

OPTIONS:
  --addr <HOST:PORT>      listen address            (default 127.0.0.1:8355)
  --exec-workers <N>      executor threads          (default 2)
  --jobs <N>              runner worker count       (default: $BGPSIM_JOBS,
                          else available parallelism)
  --cache-dir <DIR>       shared run cache in DIR   (default: $BGPSIM_CACHE_DIR)
  --journal <FILE>        per-job JSONL journal     (default: $BGPSIM_JOURNAL)
  --trace-out <FILE>      JSONL trace events        (default: $BGPSIM_TRACE)
  --max-queued-runs <N>   pending-run queue cap     (default 1024)
  --max-jobs-per-client <N>
                          concurrent jobs per API key (default 64; 0 = off)
  --event-budget <N>      cumulative simulation-event budget per API key
                          (default unlimited)
  --no-isolate            run jobs in-process instead of supervised child
                          workers (isolation is ON by default for the
                          daemon; --isolate restores the default)
  --help                  show this text

On startup the daemon replays its write-ahead journal (`--journal`)
against the run cache and reports what a previous crash interrupted,
then drains (finishes in-flight jobs, flushes the journal, exits) on
POST /v1/drain; there is no signal-based shutdown.
";

/// Parses the arguments of the `serve` subcommand (without the program
/// name or the `serve` token itself).
///
/// # Errors
///
/// Returns a [`CliError`] describing the offending argument.
pub fn parse_serve_args<I, S>(args: I) -> Result<ServeOptions, CliError>
where
    I: IntoIterator<Item = S>,
    S: AsRef<str>,
{
    let mut opts = ServeOptions::default();
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        let arg = arg.as_ref();
        match arg {
            "--addr" => {
                let v = expect_value(&mut iter, arg)?;
                opts.addr = v.as_ref().to_string();
            }
            "--exec-workers" => {
                let v = expect_value(&mut iter, arg)?;
                let n = parse_num(v.as_ref(), arg)? as usize;
                if n == 0 {
                    return Err(CliError("--exec-workers must be at least 1".to_string()));
                }
                opts.exec_workers = n;
            }
            "--jobs" => {
                let v = expect_value(&mut iter, arg)?;
                let n = parse_num(v.as_ref(), arg)? as usize;
                if n == 0 {
                    return Err(CliError("--jobs must be at least 1".to_string()));
                }
                opts.jobs = Some(n);
            }
            "--cache-dir" => {
                let v = expect_value(&mut iter, arg)?;
                opts.cache_dir = Some(v.as_ref().to_string());
            }
            "--journal" => {
                let v = expect_value(&mut iter, arg)?;
                opts.journal = Some(v.as_ref().to_string());
            }
            "--trace-out" => {
                let v = expect_value(&mut iter, arg)?;
                opts.trace_out = Some(v.as_ref().to_string());
            }
            "--max-queued-runs" => {
                let v = expect_value(&mut iter, arg)?;
                let n = parse_num(v.as_ref(), arg)? as usize;
                if n == 0 {
                    return Err(CliError("--max-queued-runs must be at least 1".to_string()));
                }
                opts.max_queued_runs = n;
            }
            "--max-jobs-per-client" => {
                let v = expect_value(&mut iter, arg)?;
                let n = parse_num(v.as_ref(), arg)? as usize;
                opts.max_jobs_per_client = if n == 0 { None } else { Some(n) };
            }
            "--event-budget" => {
                let v = expect_value(&mut iter, arg)?;
                opts.event_budget = Some(parse_num(v.as_ref(), arg)?);
            }
            "--isolate" => opts.isolate = true,
            "--no-isolate" => opts.isolate = false,
            "--help" | "-h" => return Err(CliError(SERVE_USAGE.to_string())),
            other => return Err(CliError(format!("unknown option {other:?}"))),
        }
    }
    Ok(opts)
}

/// A parsed `bgpsim checkpoint` invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum CheckpointCmd {
    /// Capture a scenario's warm-up (converged pre-failure state) to a
    /// file.
    Save {
        /// Destination checkpoint file.
        out: String,
        /// The scenario whose warm-up is captured (ordinary `bgpsim`
        /// flags).
        scenario: CliOptions,
    },
    /// Print a checkpoint file's header without reading the state
    /// blob.
    Inspect {
        /// The checkpoint file.
        file: String,
    },
    /// Fork a tail off a saved checkpoint and report the run.
    Run {
        /// The checkpoint file.
        file: String,
        /// Tail event to fork (`None` = the event the checkpoint's
        /// embedded scenario was saved with).
        event: Option<EventKind>,
        /// Emit metrics as JSON instead of the human report.
        json: bool,
    },
}

/// The usage text for `bgpsim checkpoint`.
pub const CHECKPOINT_USAGE: &str = "\
bgpsim checkpoint — save, inspect, and fork deterministic warm-up checkpoints

USAGE:
  bgpsim checkpoint save <FILE> [SCENARIO OPTIONS]
  bgpsim checkpoint inspect <FILE>
  bgpsim checkpoint run <FILE> [--event tdown|tlong] [--json]

save runs the scenario's warm-up to quiescence and captures the full
simulator state to FILE; SCENARIO OPTIONS are the ordinary bgpsim
flags (--topology, --event, --mrai, --no-jitter, --enhancement,
--seed). inspect prints the header (schema, fingerprint, capture
beat, …) without parsing the state blob. run replays the embedded
scenario from the checkpoint with the given tail event (default: the
one it was saved with) — bit-identical to the from-scratch run.
";

/// Parses the arguments of the `checkpoint` subcommand (without the
/// program name or the `checkpoint` token itself).
///
/// # Errors
///
/// Returns a [`CliError`] describing the offending argument.
pub fn parse_checkpoint_args<I, S>(args: I) -> Result<CheckpointCmd, CliError>
where
    I: IntoIterator<Item = S>,
    S: AsRef<str>,
{
    let mut iter = args.into_iter();
    let sub = iter
        .next()
        .ok_or_else(|| CliError(CHECKPOINT_USAGE.to_string()))?;
    let file_of = |iter: &mut dyn Iterator<Item = S>, sub: &str| match iter.next() {
        Some(s) if matches!(s.as_ref(), "--help" | "-h") => {
            Err(CliError(CHECKPOINT_USAGE.to_string()))
        }
        Some(s) if !s.as_ref().starts_with("--") => Ok(s.as_ref().to_string()),
        _ => Err(CliError(format!("checkpoint {sub} needs a <FILE> operand"))),
    };
    match sub.as_ref() {
        "save" => {
            let out = file_of(&mut iter, "save")?;
            let scenario = parse_args(iter)?;
            Ok(CheckpointCmd::Save { out, scenario })
        }
        "inspect" => {
            let file = file_of(&mut iter, "inspect")?;
            if let Some(extra) = iter.next() {
                return Err(CliError(format!(
                    "checkpoint inspect takes no options, got {:?}",
                    extra.as_ref()
                )));
            }
            Ok(CheckpointCmd::Inspect { file })
        }
        "run" => {
            let file = file_of(&mut iter, "run")?;
            let mut event = None;
            let mut json = false;
            while let Some(arg) = iter.next() {
                match arg.as_ref() {
                    "--event" => {
                        let v = expect_value(&mut iter, "--event")?;
                        event = Some(parse_event(v.as_ref())?);
                    }
                    "--json" => json = true,
                    "--help" | "-h" => return Err(CliError(CHECKPOINT_USAGE.to_string())),
                    other => return Err(CliError(format!("unknown option {other:?}"))),
                }
            }
            Ok(CheckpointCmd::Run { file, event, json })
        }
        "--help" | "-h" => Err(CliError(CHECKPOINT_USAGE.to_string())),
        other => Err(CliError(format!(
            "unknown checkpoint subcommand {other:?} (save | inspect | run)"
        ))),
    }
}

/// A parsed `bgpsim recover` invocation.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RecoverOptions {
    /// Journal to replay (`None` = `BGPSIM_JOURNAL`).
    pub journal: Option<String>,
    /// Run cache to reconcile against (`None` = `BGPSIM_CACHE_DIR`).
    pub cache_dir: Option<String>,
}

/// The usage text for `bgpsim recover`.
pub const RECOVER_USAGE: &str = "\
bgpsim recover — replay the write-ahead journal after a crash

USAGE:
  bgpsim recover [--journal <FILE>] [--cache-dir <DIR>]

Replays the JSONL journal (default: $BGPSIM_JOURNAL), reconciles every
job_started intent against job_done / job_crashed records and the run
cache (default: $BGPSIM_CACHE_DIR), sweeps stale cache temp files, and
prints what the previous process lifetime left behind. Idempotent and
read-only except for the temp-file sweep; `bgpsim serve` runs the same
pass automatically at startup.

Exit status: 0 on a clean journal, 1 when interrupted work was found
(re-running the sweep will finish it — completed jobs are served from
the cache).
";

/// Parses the arguments of the `recover` subcommand (without the
/// program name or the `recover` token itself).
///
/// # Errors
///
/// Returns a [`CliError`] describing the offending argument.
pub fn parse_recover_args<I, S>(args: I) -> Result<RecoverOptions, CliError>
where
    I: IntoIterator<Item = S>,
    S: AsRef<str>,
{
    let mut opts = RecoverOptions::default();
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        let arg = arg.as_ref();
        match arg {
            "--journal" => {
                let v = expect_value(&mut iter, arg)?;
                opts.journal = Some(v.as_ref().to_string());
            }
            "--cache-dir" => {
                let v = expect_value(&mut iter, arg)?;
                opts.cache_dir = Some(v.as_ref().to_string());
            }
            "--help" | "-h" => return Err(CliError(RECOVER_USAGE.to_string())),
            other => return Err(CliError(format!("unknown option {other:?}"))),
        }
    }
    Ok(opts)
}

/// Parses an argument list (without the program name).
///
/// # Errors
///
/// Returns a [`CliError`] describing the offending argument.
pub fn parse_args<I, S>(args: I) -> Result<CliOptions, CliError>
where
    I: IntoIterator<Item = S>,
    S: AsRef<str>,
{
    let mut opts = CliOptions::default();
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        let arg = arg.as_ref();
        match arg {
            "--topology" => {
                let v = expect_value(&mut iter, arg)?;
                opts.topology = parse_topology(v.as_ref())?;
            }
            "--event" => {
                let v = expect_value(&mut iter, arg)?;
                opts.event = parse_event(v.as_ref())?;
            }
            "--mrai" => {
                let v = expect_value(&mut iter, arg)?;
                opts.mrai_secs = parse_num(v.as_ref(), "--mrai")?;
            }
            "--no-jitter" => opts.jitter = Jitter::NONE,
            "--enhancement" => {
                let v = expect_value(&mut iter, arg)?;
                opts.enhancements = match v.as_ref() {
                    "none" => Enhancements::standard(),
                    "ssld" => Enhancements::ssld(),
                    "wrate" => Enhancements::wrate(),
                    "assertion" => Enhancements::assertion(),
                    "ghost-flushing" | "ghost" => Enhancements::ghost_flushing(),
                    other => return Err(CliError(format!("unknown enhancement {other:?}"))),
                };
            }
            "--seed" => {
                let v = expect_value(&mut iter, arg)?;
                opts.seed = parse_num(v.as_ref(), "--seed")?;
            }
            "--json" => opts.json = true,
            "--trace" => opts.trace = true,
            "--trace-out" => {
                let v = expect_value(&mut iter, arg)?;
                opts.trace_out = Some(v.as_ref().to_string());
            }
            "--jobs" => {
                let v = expect_value(&mut iter, arg)?;
                let n = parse_num(v.as_ref(), "--jobs")? as usize;
                if n == 0 {
                    return Err(CliError("--jobs must be at least 1".to_string()));
                }
                opts.jobs = Some(n);
            }
            "--cache-dir" => {
                let v = expect_value(&mut iter, arg)?;
                opts.cache_dir = Some(v.as_ref().to_string());
            }
            "--shards" => {
                let v = expect_value(&mut iter, arg)?;
                let n = parse_num(v.as_ref(), "--shards")? as u32;
                if n == 0 {
                    return Err(CliError("--shards must be at least 1".to_string()));
                }
                opts.shards = Some(n);
            }
            "--isolate" => opts.isolate = Some(true),
            "--no-isolate" => opts.isolate = Some(false),
            "--help" | "-h" => return Err(CliError(USAGE.to_string())),
            other => return Err(CliError(format!("unknown option {other:?}"))),
        }
    }
    Ok(opts)
}

fn expect_value<I, S>(iter: &mut I, flag: &str) -> Result<S, CliError>
where
    I: Iterator<Item = S>,
    S: AsRef<str>,
{
    iter.next()
        .ok_or_else(|| CliError(format!("{flag} requires a value")))
}

fn parse_event(v: &str) -> Result<EventKind, CliError> {
    match v {
        "tdown" => Ok(EventKind::TDown),
        "tlong" => Ok(EventKind::TLong),
        other => Err(CliError(format!("unknown event {other:?}"))),
    }
}

fn parse_num(v: &str, flag: &str) -> Result<u64, CliError> {
    v.parse()
        .map_err(|e| CliError(format!("{flag}: bad number {v:?}: {e}")))
}

fn parse_topology(spec: &str) -> Result<TopologySpec, CliError> {
    let parts: Vec<&str> = spec.split(':').collect();
    let bad = || CliError(format!("bad topology spec {spec:?}"));
    match parts.as_slice() {
        ["clique", n] => Ok(TopologySpec::Clique(n.parse().map_err(|_| bad())?)),
        ["bclique", n] => Ok(TopologySpec::BClique(n.parse().map_err(|_| bad())?)),
        ["internet", n] => Ok(TopologySpec::InternetLike {
            n: n.parse().map_err(|_| bad())?,
            topo_seed: 0,
        }),
        ["internet", n, ts] => Ok(TopologySpec::InternetLike {
            n: n.parse().map_err(|_| bad())?,
            topo_seed: ts.parse().map_err(|_| bad())?,
        }),
        _ => Err(bad()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_when_empty() {
        let opts = parse_args(Vec::<&str>::new()).unwrap();
        assert_eq!(opts, CliOptions::default());
    }

    #[test]
    fn full_invocation() {
        let opts = parse_args([
            "--topology",
            "bclique:10",
            "--event",
            "tlong",
            "--mrai",
            "15",
            "--no-jitter",
            "--enhancement",
            "ghost-flushing",
            "--seed",
            "9",
            "--json",
            "--trace",
            "--trace-out",
            "/tmp/run.jsonl",
            "--jobs",
            "4",
            "--cache-dir",
            "/tmp/bgpsim-cache",
            "--shards",
            "4",
            "--isolate",
        ])
        .unwrap();
        assert_eq!(opts.topology, TopologySpec::BClique(10));
        assert_eq!(opts.event, EventKind::TLong);
        assert_eq!(opts.mrai_secs, 15);
        assert_eq!(opts.jitter, Jitter::NONE);
        assert!(opts.enhancements.ghost_flushing);
        assert_eq!(opts.seed, 9);
        assert!(opts.json);
        assert!(opts.trace);
        assert_eq!(opts.trace_out.as_deref(), Some("/tmp/run.jsonl"));
        assert_eq!(opts.jobs, Some(4));
        assert_eq!(opts.cache_dir.as_deref(), Some("/tmp/bgpsim-cache"));
        assert_eq!(opts.shards, Some(4));
        assert_eq!(opts.isolate, Some(true));
        let opts = parse_args(["--no-isolate"]).unwrap();
        assert_eq!(opts.isolate, Some(false));
    }

    #[test]
    fn jobs_rejects_zero() {
        let err = parse_args(["--jobs", "0"]).unwrap_err();
        assert!(err.to_string().contains("at least 1"));
        let err = parse_args(["--shards", "0"]).unwrap_err();
        assert!(err.to_string().contains("at least 1"));
    }

    #[test]
    fn topology_specs() {
        assert_eq!(
            parse_topology("clique:30").unwrap(),
            TopologySpec::Clique(30)
        );
        assert_eq!(
            parse_topology("internet:110").unwrap(),
            TopologySpec::InternetLike {
                n: 110,
                topo_seed: 0
            }
        );
        assert_eq!(
            parse_topology("internet:48:7").unwrap(),
            TopologySpec::InternetLike {
                n: 48,
                topo_seed: 7
            }
        );
        assert!(parse_topology("mesh:3").is_err());
        assert!(parse_topology("clique").is_err());
        assert!(parse_topology("clique:x").is_err());
    }

    #[test]
    fn errors_are_descriptive() {
        let err = parse_args(["--bogus"]).unwrap_err();
        assert!(err.to_string().contains("--bogus"));
        let err = parse_args(["--mrai"]).unwrap_err();
        assert!(err.to_string().contains("requires a value"));
        let err = parse_args(["--mrai", "abc"]).unwrap_err();
        assert!(err.to_string().contains("bad number"));
        let err = parse_args(["--event", "boom"]).unwrap_err();
        assert!(err.to_string().contains("unknown event"));
    }

    #[test]
    fn help_surfaces_usage() {
        let err = parse_args(["--help"]).unwrap_err();
        assert!(err.to_string().contains("USAGE"));
    }

    #[test]
    fn checkpoint_save_takes_file_then_scenario_flags() {
        let cmd =
            parse_checkpoint_args(["save", "/tmp/warm.ckpt", "--topology", "clique:7"]).unwrap();
        assert_eq!(
            cmd,
            CheckpointCmd::Save {
                out: "/tmp/warm.ckpt".to_string(),
                scenario: CliOptions {
                    topology: TopologySpec::Clique(7),
                    ..CliOptions::default()
                },
            }
        );
    }

    #[test]
    fn checkpoint_inspect_takes_only_a_file() {
        assert_eq!(
            parse_checkpoint_args(["inspect", "warm.ckpt"]).unwrap(),
            CheckpointCmd::Inspect {
                file: "warm.ckpt".to_string()
            }
        );
        let err = parse_checkpoint_args(["inspect", "warm.ckpt", "--json"]).unwrap_err();
        assert!(err.to_string().contains("takes no options"));
    }

    #[test]
    fn checkpoint_run_defaults_to_the_saved_event() {
        assert_eq!(
            parse_checkpoint_args(["run", "warm.ckpt"]).unwrap(),
            CheckpointCmd::Run {
                file: "warm.ckpt".to_string(),
                event: None,
                json: false,
            }
        );
        assert_eq!(
            parse_checkpoint_args(["run", "warm.ckpt", "--event", "tlong", "--json"]).unwrap(),
            CheckpointCmd::Run {
                file: "warm.ckpt".to_string(),
                event: Some(EventKind::TLong),
                json: true,
            }
        );
    }

    #[test]
    fn checkpoint_errors_are_descriptive() {
        let err = parse_checkpoint_args(Vec::<&str>::new()).unwrap_err();
        assert!(err.to_string().contains("USAGE"));
        let err = parse_checkpoint_args(["frobnicate"]).unwrap_err();
        assert!(err.to_string().contains("save | inspect | run"));
        let err = parse_checkpoint_args(["save"]).unwrap_err();
        assert!(err.to_string().contains("<FILE> operand"));
        let err = parse_checkpoint_args(["run", "x.ckpt", "--event", "boom"]).unwrap_err();
        assert!(err.to_string().contains("unknown event"));
        let err = parse_checkpoint_args(["--help"]).unwrap_err();
        assert!(err.to_string().contains("bgpsim checkpoint"));
        let err = parse_checkpoint_args(["save", "--help"]).unwrap_err();
        assert!(err.to_string().contains("bgpsim checkpoint"));
    }

    #[test]
    fn serve_defaults_when_empty() {
        let opts = parse_serve_args(Vec::<&str>::new()).unwrap();
        assert_eq!(opts, ServeOptions::default());
        assert_eq!(opts.addr, "127.0.0.1:8355");
        assert_eq!(opts.exec_workers, 2);
    }

    #[test]
    fn serve_full_invocation() {
        let opts = parse_serve_args([
            "--addr",
            "0.0.0.0:9000",
            "--exec-workers",
            "4",
            "--jobs",
            "2",
            "--cache-dir",
            "/tmp/cache",
            "--journal",
            "/tmp/journal.jsonl",
            "--trace-out",
            "/tmp/trace.jsonl",
            "--max-queued-runs",
            "16",
            "--max-jobs-per-client",
            "3",
            "--event-budget",
            "100000",
            "--no-isolate",
        ])
        .unwrap();
        assert_eq!(opts.addr, "0.0.0.0:9000");
        assert_eq!(opts.exec_workers, 4);
        assert_eq!(opts.jobs, Some(2));
        assert_eq!(opts.cache_dir.as_deref(), Some("/tmp/cache"));
        assert_eq!(opts.journal.as_deref(), Some("/tmp/journal.jsonl"));
        assert_eq!(opts.trace_out.as_deref(), Some("/tmp/trace.jsonl"));
        assert_eq!(opts.max_queued_runs, 16);
        assert_eq!(opts.max_jobs_per_client, Some(3));
        assert_eq!(opts.event_budget, Some(100_000));
        assert!(!opts.isolate, "--no-isolate opts out");
    }

    #[test]
    fn serve_isolates_by_default() {
        let opts = parse_serve_args(Vec::<&str>::new()).unwrap();
        assert!(opts.isolate, "the daemon must survive crashing jobs");
        let opts = parse_serve_args(["--no-isolate", "--isolate"]).unwrap();
        assert!(opts.isolate, "last flag wins");
    }

    #[test]
    fn recover_parses_overrides_and_help() {
        assert_eq!(
            parse_recover_args(Vec::<&str>::new()).unwrap(),
            RecoverOptions::default()
        );
        let opts = parse_recover_args([
            "--journal",
            "/tmp/j.jsonl",
            "--cache-dir",
            "/tmp/cache",
        ])
        .unwrap();
        assert_eq!(opts.journal.as_deref(), Some("/tmp/j.jsonl"));
        assert_eq!(opts.cache_dir.as_deref(), Some("/tmp/cache"));
        let err = parse_recover_args(["--help"]).unwrap_err();
        assert!(err.to_string().contains("bgpsim recover"));
        assert!(parse_recover_args(["--bogus"]).is_err());
    }

    #[test]
    fn serve_zero_quota_means_unlimited_but_zero_workers_is_an_error() {
        let opts = parse_serve_args(["--max-jobs-per-client", "0"]).unwrap();
        assert_eq!(opts.max_jobs_per_client, None);
        assert!(parse_serve_args(["--exec-workers", "0"]).is_err());
        assert!(parse_serve_args(["--max-queued-runs", "0"]).is_err());
        assert!(parse_serve_args(["--bogus"]).is_err());
    }

    #[test]
    fn serve_help_surfaces_usage() {
        let err = parse_serve_args(["--help"]).unwrap_err();
        assert!(err.to_string().contains("bgpsim serve"));
    }
}
