//! The `bgpsim` command-line runner: one convergence experiment per
//! invocation, with human or JSON output.
//!
//! ```text
//! bgpsim --topology clique:15 --event tdown --enhancement ghost-flushing
//! ```

use bgpsim::bgp::BgpConfig;
use bgpsim::checkpoint::{Checkpoint, CheckpointHeader};
use bgpsim::cli::{
    parse_args, parse_checkpoint_args, parse_recover_args, parse_serve_args, CheckpointCmd,
    CliOptions, RecoverOptions, ServeOptions,
};
use bgpsim::metrics::MetricsRow;
use bgpsim::netsim::time::SimDuration;
use bgpsim::prelude::*;
use bgpsim::runner::supervisor::{decode_request, encode_failure, encode_success};
use bgpsim::runner::{recover_journal, RunCache, RunnerConfig};
use bgpsim::trace::failpoint::{self, FailpointAction};

use bgpsim::serve::{AdmissionLimits, ServeConfig, Server};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("worker") {
        worker();
        return;
    }
    if args.first().map(String::as_str) == Some("recover") {
        let opts = match parse_recover_args(&args[1..]) {
            Ok(opts) => opts,
            Err(err) => {
                eprintln!("{err}");
                std::process::exit(2);
            }
        };
        recover(&opts);
        return;
    }
    if args.first().map(String::as_str) == Some("serve") {
        let opts = match parse_serve_args(&args[1..]) {
            Ok(opts) => opts,
            Err(err) => {
                eprintln!("{err}");
                std::process::exit(2);
            }
        };
        serve(&opts);
        return;
    }
    if args.first().map(String::as_str) == Some("checkpoint") {
        let cmd = match parse_checkpoint_args(&args[1..]) {
            Ok(cmd) => cmd,
            Err(err) => {
                eprintln!("{err}");
                std::process::exit(2);
            }
        };
        checkpoint_cmd(&cmd);
        return;
    }
    let opts = match parse_args(args) {
        Ok(opts) => opts,
        Err(err) => {
            eprintln!("{err}");
            std::process::exit(2);
        }
    };
    run(&opts);
    bgpsim::trace::flush_global();
}

/// The hidden `bgpsim worker` mode: executes exactly one scenario run
/// on behalf of a supervising runner and reports the verdict on
/// stdout (wire protocol v1, see `bgpsim::runner::supervisor`).
///
/// This is plumbing, not a user command: the child prints exactly one
/// JSON line and exits 0 whether the run succeeded or tripped its
/// watchdog — a nonzero exit means the worker itself died, which the
/// supervisor counts as a crash. Inherits `BGPSIM_FAILPOINT` so fault
/// injection reaches the child (`worker_run` site, ctx `seed=N`).
fn worker() {
    use std::io::Read;
    let mut input = String::new();
    if std::io::stdin().read_to_string(&mut input).is_err() {
        eprintln!("bgpsim worker: cannot read request from stdin");
        std::process::exit(3);
    }
    let request = match decode_request(&input) {
        Ok(request) => request,
        Err(err) => {
            println!("{}", encode_failure("worker", &err));
            return;
        }
    };
    // Deterministic fault injection for crash-tolerance tests: Abort
    // dies inside check(), Err exits nonzero (spawn-then-die), Torn
    // truncates the verdict line (lost-result).
    let injected = failpoint::check("worker_run", &format!("seed={}", request.seed));
    if matches!(injected, Some(FailpointAction::Err)) {
        eprintln!("bgpsim worker: injected failure (worker_run)");
        std::process::exit(3);
    }
    let scenario = match Scenario::from_canonical_json(&request.scenario) {
        Ok(scenario) => scenario,
        Err(err) => {
            println!("{}", encode_failure("worker", &err.to_string()));
            return;
        }
    };
    let mut limit = RunBudget::unlimited();
    if let Some(n) = request.max_events {
        limit = limit.with_max_events(n);
    }
    match scenario.run_budgeted(&limit) {
        Ok(result) => {
            let counters = result.counters();
            let line = encode_success(&result.measurement.metrics, Some(&counters));
            if matches!(injected, Some(FailpointAction::Torn)) {
                use std::io::Write;
                let half = &line.as_bytes()[..line.len() / 2];
                let mut out = std::io::stdout();
                let _ = out.write_all(half);
                let _ = out.flush();
            } else {
                println!("{line}");
            }
        }
        Err(stopped) => {
            println!("{}", encode_failure(stopped.phase, &stopped.to_string()));
        }
    }
}

/// The `bgpsim recover` subcommand: replays the write-ahead journal,
/// reconciles intents against completions and the run cache, and
/// sweeps stale cache temp files. Exit 1 signals interrupted work.
fn recover(opts: &RecoverOptions) {
    let journal = opts
        .journal
        .clone()
        .or_else(|| std::env::var("BGPSIM_JOURNAL").ok());
    let Some(journal) = journal else {
        eprintln!("no journal to replay: pass --journal or set BGPSIM_JOURNAL");
        std::process::exit(2);
    };
    let cache_dir = opts
        .cache_dir
        .clone()
        .or_else(|| std::env::var("BGPSIM_CACHE_DIR").ok());
    let cache = match cache_dir {
        Some(dir) => match RunCache::new(&dir) {
            Ok(cache) => Some(cache),
            Err(err) => {
                eprintln!("cannot open run cache {dir}: {err}");
                std::process::exit(2);
            }
        },
        None => None,
    };
    let report = recover_journal(std::path::Path::new(&journal), cache.as_ref());
    println!("{}", report.render());
    if !report.is_clean() {
        std::process::exit(1);
    }
}

/// Boots the daemon and blocks until a drain is requested over the
/// API, then finishes in-flight work and exits cleanly.
fn serve(opts: &ServeOptions) {
    let mut config = RunnerConfig::from_env();
    if let Some(jobs) = opts.jobs {
        config = config.jobs(jobs);
    }
    if let Some(dir) = &opts.cache_dir {
        config = config.cache_dir(dir);
    }
    if let Some(path) = &opts.journal {
        config = config.journal(path);
    }
    if let Some(path) = &opts.trace_out {
        config = config.trace(path);
    }
    // Under the daemon, process isolation defaults ON (a crashing job
    // must not take the service down); `--no-isolate` opts out.
    config = config.isolate(opts.isolate);
    let journal = opts
        .journal
        .clone()
        .or_else(|| std::env::var("BGPSIM_JOURNAL").ok());
    let runner = match config.build() {
        Ok(r) => r,
        Err(err) => {
            eprintln!("runner setup failed: {err}");
            std::process::exit(1);
        }
    };
    // Crash recovery before admission opens: replay the journal the
    // previous lifetime left behind, sweep stale cache temp files, and
    // report what was interrupted (those jobs re-run on resubmission;
    // completed ones are served from the cache).
    if let Some(path) = &journal {
        let report = recover_journal(std::path::Path::new(path), runner.cache());
        if !report.is_clean() || report.lines > 0 {
            println!("{}", report.render());
        }
    }
    let server = match Server::start(
        ServeConfig {
            addr: opts.addr.clone(),
            exec_workers: opts.exec_workers,
            limits: AdmissionLimits {
                max_queued_runs: opts.max_queued_runs,
                max_jobs_per_client: opts.max_jobs_per_client,
                event_budget_per_client: opts.event_budget,
            },
            max_connections: 64,
            ..ServeConfig::default()
        },
        std::sync::Arc::new(runner),
    ) {
        Ok(server) => server,
        Err(err) => {
            eprintln!("cannot bind {}: {err}", opts.addr);
            std::process::exit(1);
        }
    };
    println!("bgpsim serve listening on {}", server.local_addr());
    // No signal handling in this workspace: the daemon runs until a
    // client POSTs /v1/drain, then finishes in-flight work and exits.
    while !server.is_draining() {
        std::thread::sleep(std::time::Duration::from_millis(200));
    }
    println!("drain requested; finishing in-flight jobs");
    server.shutdown();
    bgpsim::trace::flush_global();
}

/// The scenario a plain CLI invocation describes.
fn scenario_of(opts: &CliOptions) -> Scenario {
    let config = BgpConfig::default()
        .with_mrai(SimDuration::from_secs(opts.mrai_secs))
        .with_jitter(opts.jitter)
        .with_enhancements(opts.enhancements);
    Scenario::new(opts.topology.clone(), opts.event)
        .with_config(config)
        .with_seed(opts.seed)
        .with_shards(
            opts.shards
                .unwrap_or_else(bgpsim::experiments::configured_shards),
        )
}

fn fail_checkpoint(err: &dyn std::fmt::Display) -> ! {
    eprintln!("{err}");
    std::process::exit(1);
}

/// Prints a checkpoint header as aligned human-readable lines.
fn print_header(header: &CheckpointHeader) {
    println!("  schema                   : v{}", header.schema);
    println!("  warm-up fingerprint      : {}", header.fingerprint);
    println!(
        "  capture beat             : {:>10.2} s",
        header.beat_nanos as f64 / 1e9
    );
    println!(
        "  tail applied             : {:>10}",
        if header.tail_applied {
            "yes (mid-convergence)"
        } else {
            "no (quiescence)"
        }
    );
    println!("  routers                  : {:>10}", header.nodes);
    match &header.spec {
        Some(spec) => println!("  embedded scenario        : {spec}"),
        None => println!("  embedded scenario        : (none)"),
    }
}

/// Prints the shared measurement block of a scenario result.
fn print_measurement(result: &ScenarioResult) {
    let m = &result.measurement.metrics;
    println!("  destination              : {}", result.destination);
    println!("  failure                  : {}", result.failure.describe());
    println!(
        "  convergence time         : {:>10.2} s",
        m.convergence_secs()
    );
    println!("  overall looping duration : {:>10.2} s", m.looping_secs());
    println!("  TTL exhaustions          : {:>10}", m.ttl_exhaustions);
    println!(
        "  packets during converg.  : {:>10}",
        m.packets_during_convergence
    );
    println!("  looping ratio            : {:>10.3}", m.looping_ratio);
    println!(
        "  messages after failure   : {:>10}",
        m.messages_after_failure
    );
    let c = &result.measurement.census_summary;
    println!(
        "  loops observed           : {:>10}  (sizes {}–{}, 2-node share {:.0}%)",
        c.count,
        c.min_size,
        c.max_size,
        c.two_node_fraction * 100.0
    );
}

/// Executes a parsed `bgpsim checkpoint` subcommand.
fn checkpoint_cmd(cmd: &CheckpointCmd) {
    match cmd {
        CheckpointCmd::Save { out, scenario } => {
            let spec = scenario_of(scenario);
            let canonical = match spec.to_canonical_json() {
                Ok(json) => json,
                Err(err) => fail_checkpoint(&err),
            };
            let snap = spec.snapshot_warmup();
            let ckpt = Checkpoint::capture(snap, spec.warmup_fingerprint(), Some(canonical));
            if let Err(err) = ckpt.save(out) {
                fail_checkpoint(&err);
            }
            println!("saved warm-up checkpoint to {out}");
            print_header(&ckpt.header);
        }
        CheckpointCmd::Inspect { file } => {
            let header = match Checkpoint::inspect(file) {
                Ok(header) => header,
                Err(err) => fail_checkpoint(&err),
            };
            println!("{file}:");
            print_header(&header);
        }
        CheckpointCmd::Run { file, event, json } => {
            let ckpt = match Checkpoint::load(file) {
                Ok(ckpt) => ckpt,
                Err(err) => fail_checkpoint(&err),
            };
            let embedded = match &ckpt.header.spec {
                Some(spec) => spec,
                None => fail_checkpoint(
                    &"this checkpoint embeds no scenario (raw harness capture); \
                      the CLI cannot derive a tail from it",
                ),
            };
            let mut spec = match Scenario::from_canonical_json(embedded) {
                Ok(spec) => spec,
                Err(err) => fail_checkpoint(&err),
            };
            if let Some(event) = event {
                if ckpt.header.tail_applied && *event != spec.event {
                    fail_checkpoint(&format!(
                        "mid-convergence checkpoint: its {} tail is already \
                         baked in and cannot be replaced by --event",
                        spec.event.label()
                    ));
                }
                spec.event = *event;
            }
            if spec.warmup_fingerprint() != ckpt.header.fingerprint {
                fail_checkpoint(&format!(
                    "scenario/checkpoint mismatch: the scenario warms up as \
                     {:?} but the checkpoint was captured under {:?}",
                    spec.warmup_fingerprint(),
                    ckpt.header.fingerprint
                ));
            }
            let result = spec.run_forked(&ckpt.snapshot);
            if *json {
                let row = MetricsRow::from_metrics(
                    "cli-fork",
                    spec.topology.label(),
                    spec.config.enhancements.label(),
                    ckpt.header.nodes as f64,
                    spec.seed,
                    &result.measurement.metrics,
                );
                match bgpsim::metrics::to_json(std::slice::from_ref(&row)) {
                    Ok(json) => println!("{json}"),
                    Err(err) => fail_checkpoint(&err),
                }
                return;
            }
            println!(
                "forked {} under {} from {file} — seed {}, capture beat {:.2}s",
                spec.topology.label(),
                spec.event.label(),
                spec.seed,
                ckpt.header.beat_nanos as f64 / 1e9
            );
            print_measurement(&result);
        }
    }
}

fn run(opts: &CliOptions) {
    let scenario = scenario_of(opts);

    if opts.json {
        // The JSON path only needs `PaperMetrics`, so it goes through
        // the runner: with `--cache-dir` (or `BGPSIM_CACHE_DIR`) a
        // repeated invocation is served from the run cache. Flags are
        // layered over the environment, so they win.
        let mut config = RunnerConfig::from_env();
        if let Some(jobs) = opts.jobs {
            config = config.jobs(jobs);
        }
        if let Some(dir) = &opts.cache_dir {
            config = config.cache_dir(dir);
        }
        if let Some(path) = &opts.trace_out {
            config = config.trace(path);
        }
        if let Some(isolate) = opts.isolate {
            config = config.isolate(isolate);
        }
        let runner = match config.build() {
            Ok(r) => r,
            Err(err) => {
                eprintln!("runner setup failed: {err}");
                std::process::exit(1);
            }
        };
        let node_count = scenario.topology.build().0.node_count();
        let metrics = match runner.run_jobs(vec![scenario.into_job()]) {
            Ok(mut ms) => ms.pop().expect("one job yields one result"),
            Err(err) => {
                eprintln!("run failed: {err}");
                // The failure is already traced (worker_crash etc.);
                // land it before the early exit.
                bgpsim::trace::flush_global();
                std::process::exit(1);
            }
        };
        let row = MetricsRow::from_metrics(
            "cli",
            opts.topology.label(),
            opts.enhancements.label(),
            node_count as f64,
            opts.seed,
            &metrics,
        );
        match bgpsim::metrics::to_json(std::slice::from_ref(&row)) {
            Ok(json) => println!("{json}"),
            Err(err) => {
                eprintln!("serialization failed: {err}");
                std::process::exit(1);
            }
        }
        return;
    }

    // The human report needs the full scenario result (loop census,
    // timeline), which the metrics cache does not carry — run directly.
    // Install the trace sink first so the run emits into it.
    let trace_out = opts
        .trace_out
        .clone()
        .or_else(|| std::env::var("BGPSIM_TRACE").ok());
    if let Some(path) = &trace_out {
        if let Err(err) = bgpsim::trace::install_jsonl(path) {
            eprintln!("cannot open trace file {path}: {err}");
            std::process::exit(1);
        }
    }
    let result = scenario.run();
    result.emit_trace(opts.seed);

    println!(
        "{} under {} — variant {}, MRAI {}s, seed {}",
        opts.topology.label(),
        opts.event.label(),
        opts.enhancements.label(),
        opts.mrai_secs,
        opts.seed
    );
    print_measurement(&result);

    if opts.trace {
        println!("\npost-failure timeline (sends, route changes, loops):");
        let fail = result
            .record
            .failure_at
            .expect("scenario injects a failure");
        let timeline =
            bgpsim::metrics::build_timeline(&result.record, &result.measurement.census, fail);
        print!("{}", bgpsim::metrics::render_timeline(&timeline));
    }
}
