//! The MRAI timer is the dominant factor in transient loop duration
//! (paper §3.2 and Observation 1): convergence time, looping duration
//! and TTL exhaustions all scale linearly with the MRAI value, while
//! the looping ratio stays flat. This example sweeps MRAI and fits
//! lines.
//!
//! Run with: `cargo run --release --example mrai_sensitivity`

use bgpsim::netsim::time::SimDuration;
use bgpsim::prelude::*;
use bgpsim_experiments::linear_fit;

fn main() {
    let mrai_values = [5u64, 10, 15, 20, 25, 30, 40, 50, 60];
    let seeds = [1u64, 2, 3];
    println!(
        "T_down on a 10-node clique, MRAI sweep (mean of {} seeds)\n",
        seeds.len()
    );
    println!(
        "{:>7} {:>12} {:>12} {:>14} {:>10}",
        "mrai_s", "conv_s", "looping_s", "exhaustions", "ratio"
    );

    let mut xs = Vec::new();
    let mut conv_ys = Vec::new();
    let mut loop_ys = Vec::new();
    let mut exh_ys = Vec::new();
    for &mrai in &mrai_values {
        let mut conv = 0.0;
        let mut lop = 0.0;
        let mut exh = 0.0;
        let mut ratio = 0.0;
        for &seed in &seeds {
            let cfg = BgpConfig::default().with_mrai(SimDuration::from_secs(mrai));
            let m = Scenario::new(TopologySpec::Clique(10), EventKind::TDown)
                .with_config(cfg)
                .with_seed(seed)
                .run()
                .measurement
                .metrics;
            conv += m.convergence_secs();
            lop += m.looping_secs();
            exh += m.ttl_exhaustions as f64;
            ratio += m.looping_ratio;
        }
        let n = seeds.len() as f64;
        println!(
            "{:>7} {:>12.1} {:>12.1} {:>14.0} {:>10.2}",
            mrai,
            conv / n,
            lop / n,
            exh / n,
            ratio / n
        );
        xs.push(mrai as f64);
        conv_ys.push(conv / n);
        loop_ys.push(lop / n);
        exh_ys.push(exh / n);
    }

    println!("\nlinear fits (y = a*x + b):");
    for (label, ys) in [
        ("convergence time", &conv_ys),
        ("looping duration", &loop_ys),
        ("TTL exhaustions ", &exh_ys),
    ] {
        let fit = linear_fit(&xs, ys).expect("enough points");
        println!(
            "  {label}: slope {:>8.2}, intercept {:>8.1}, r = {:.4}",
            fit.slope, fit.intercept, fit.r
        );
        assert!(
            fit.r > 0.95,
            "{label} should be linear in MRAI (Observation 1/2)"
        );
    }
    println!("\nall three scale linearly with MRAI — Observations 1 and 2 hold.");
}
