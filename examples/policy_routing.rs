//! Gao–Rexford policy routing (extension beyond the paper): run the
//! same `T_down` event under the paper's shortest-path policy and
//! under commercial relationship policies, and compare transient
//! looping.
//!
//! Run with: `cargo run --release --example policy_routing [n] [seed]`

use bgpsim::bgp::policy::{is_valley_free, GaoRexford};
use bgpsim::bgp::BgpConfig;
use bgpsim::netsim::time::SimDuration;
use bgpsim::prelude::*;
use bgpsim::topology::generators::internet_like_tiered;
use bgpsim::topology::relationships::derive_relationships;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(48);
    let seed: u64 = std::env::args()
        .nth(2)
        .and_then(|a| a.parse().ok())
        .unwrap_or(1);

    let (graph, tiers) = internet_like_tiered(n, seed);
    let rels = derive_relationships(&graph, &tiers);
    let dest = *algo::lowest_degree_nodes(&graph).first().expect("nonempty");
    let prefix = Prefix::new(0);
    println!(
        "internet-{n} (core {}, mid {}, stubs {}), destination {dest}\n",
        tiers.core,
        tiers.mid,
        n - tiers.core - tiers.mid
    );

    // --- shortest path (the paper's policy) ---
    let mut plain = SimNetwork::new(&graph, BgpConfig::default(), SimParams::default(), seed);
    plain.originate(dest, prefix);
    plain.run_to_quiescence(200_000_000);
    plain.schedule_failure(
        SimDuration::from_secs(1),
        FailureEvent::WithdrawPrefix {
            origin: dest,
            prefix,
        },
    );
    plain.run_to_quiescence(200_000_000);
    let plain_record = plain.into_record();
    let plain_m = measure_run(&plain_record, dest, prefix, seed);

    // --- Gao–Rexford ---
    let rels2 = rels.clone();
    let mut gao = SimNetwork::with_policies(
        &graph,
        BgpConfig::default(),
        SimParams::default(),
        seed,
        move |node| GaoRexford::for_node(node, &rels2),
    );
    gao.originate(dest, prefix);
    gao.run_to_quiescence(200_000_000);

    // Check the steady state is valley-free before failing it.
    let mut valley_free_routes = 0;
    for v in graph.nodes() {
        if v == dest {
            continue;
        }
        if let Some(route) = gao.router(v).best(prefix) {
            assert!(is_valley_free(&route.path, &rels), "{}", route.path);
            valley_free_routes += 1;
        }
    }
    gao.schedule_failure(
        SimDuration::from_secs(1),
        FailureEvent::WithdrawPrefix {
            origin: dest,
            prefix,
        },
    );
    gao.run_to_quiescence(200_000_000);
    let gao_record = gao.into_record();
    let gao_m = measure_run(&gao_record, dest, prefix, seed);

    println!("{:<24} {:>14} {:>14}", "", "shortest-path", "Gao-Rexford");
    for (label, a, b) in [
        (
            "convergence (s)",
            plain_m.metrics.convergence_secs(),
            gao_m.metrics.convergence_secs(),
        ),
        (
            "TTL exhaustions",
            plain_m.metrics.ttl_exhaustions as f64,
            gao_m.metrics.ttl_exhaustions as f64,
        ),
        (
            "messages",
            plain_m.metrics.messages_after_failure as f64,
            gao_m.metrics.messages_after_failure as f64,
        ),
        (
            "loop episodes",
            plain_m.census_summary.count as f64,
            gao_m.census_summary.count as f64,
        ),
    ] {
        println!("{label:<24} {a:>14.1} {b:>14.1}");
    }
    println!(
        "\n{valley_free_routes} valley-free steady-state routes; policy export \
         filtering removes the\nstale-backup knowledge that fuels the paper's \
         T_down path exploration,\ncollapsing both convergence time and \
         transient looping."
    );
}
