//! Quickstart: reproduce the paper's headline phenomenon.
//!
//! BGP carries full AS paths ("path-based poison reverse"), yet a
//! simple destination withdrawal in a 15-node clique sends the
//! majority of in-flight packets around transient forwarding loops
//! for minutes.
//!
//! Run with: `cargo run --release --example quickstart`

use bgpsim::prelude::*;

fn main() {
    // The paper's standard setup: full-mesh topology, destination at
    // node 0, MRAI 30 s with SSFNet jitter, 10 pkt/s per source.
    let result = Scenario::new(TopologySpec::Clique(15), EventKind::TDown)
        .with_seed(2004)
        .run();

    let m = &result.measurement.metrics;
    println!(
        "T_down on a 15-node clique (destination {}):",
        result.destination
    );
    println!(
        "  convergence time        : {:>8.1} s",
        m.convergence_secs()
    );
    println!("  overall looping duration: {:>8.1} s", m.looping_secs());
    println!("  TTL exhaustions         : {:>8}", m.ttl_exhaustions);
    println!(
        "  packets during converg. : {:>8}",
        m.packets_during_convergence
    );
    println!("  looping ratio           : {:>8.2}", m.looping_ratio);
    println!(
        "  BGP messages sent       : {:>8}",
        m.messages_after_failure
    );

    let census = &result.measurement.census_summary;
    println!("\nloop census (the paper's proposed future work):");
    println!("  distinct loop episodes  : {:>8}", census.count);
    println!(
        "  loop sizes              : {} – {} nodes",
        census.min_size, census.max_size
    );
    println!(
        "  2-node loop share       : {:>8.2}",
        census.two_node_fraction
    );
    println!(
        "  mean loop lifetime      : {:>8.1} s",
        census.mean_duration.as_secs_f64()
    );

    assert!(m.looping_ratio > 0.5, "the majority of packets should loop");
    println!("\npath-vector routing does NOT prevent transient loops — QED.");
}
