//! Route flap damping (RFC 2439) meets path exploration.
//!
//! Two demonstrations in one run:
//!
//! 1. a genuinely flapping origin gets suppressed network-wide and
//!    recovers only after its penalty decays;
//! 2. a **single** clean `T_down` failure in a clique also triggers
//!    suppressions — BGP's own path exploration looks like flapping to
//!    the damping algorithm (Mao et al., SIGCOMM 2002).
//!
//! Run with: `cargo run --release --example flap_damping`

use bgpsim::bgp::damping::DampingConfig;
use bgpsim::netsim::time::SimDuration;
use bgpsim::prelude::*;

fn main() {
    // Part 1: a flapping origin on a chain.
    let g = generators::chain(4);
    let prefix = Prefix::new(0);
    let origin = NodeId::new(0);
    let cfg = BgpConfig::default().with_damping(DampingConfig {
        half_life: SimDuration::from_secs(120),
        ..DampingConfig::default()
    });
    let mut net = SimNetwork::new(&g, cfg, SimParams::default(), 1);

    println!("part 1 — flapping origin on a 4-node chain");
    for cycle in 1..=4 {
        net.originate(origin, prefix);
        net.run_for(SimDuration::from_secs(30), 10_000_000);
        net.inject_failure(FailureEvent::WithdrawPrefix { origin, prefix });
        net.run_for(SimDuration::from_secs(30), 10_000_000);
        let suppressed = net.router(NodeId::new(1)).stats().damping_suppressions;
        println!("  flap cycle {cycle}: neighbor suppressions so far = {suppressed}");
    }
    net.originate(origin, prefix);
    net.run_for(SimDuration::from_secs(30), 10_000_000);
    println!(
        "  origin is announcing again, but node 1 sees: {:?}",
        net.router(NodeId::new(1))
            .best(prefix)
            .map(|r| r.path.to_string())
    );
    net.run_to_quiescence(10_000_000);
    println!(
        "  …after the penalty decays: {:?}",
        net.router(NodeId::new(1))
            .best(prefix)
            .map(|r| r.path.to_string())
    );

    // Part 2: one clean failure, damping still fires.
    println!("\npart 2 — a single T_down in a 8-clique (no real flapping!)");
    let g = generators::clique(8);
    let mut net = SimNetwork::new(
        &g,
        BgpConfig::default().with_damping(DampingConfig::default()),
        SimParams::default(),
        2,
    );
    net.originate(NodeId::new(0), prefix);
    net.run_to_quiescence(50_000_000);
    net.schedule_failure(
        SimDuration::from_secs(1),
        FailureEvent::WithdrawPrefix {
            origin: NodeId::new(0),
            prefix,
        },
    );
    net.run_to_quiescence(50_000_000);
    let record = net.into_record();
    println!(
        "  suppressions triggered by path exploration alone: {}",
        record.total_stats().damping_suppressions
    );
    println!(
        "  (Mao et al. 2002: route flap damping penalizes convergence's \
         own update bursts)"
    );
}
