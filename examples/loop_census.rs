//! Per-loop statistics — the paper's §6 "next step" ("measure the
//! statistics of individual loops such as the loop size and duration")
//! implemented over an Internet-like `T_down` run.
//!
//! Run with: `cargo run --release --example loop_census [n] [seed]`

use bgpsim::prelude::*;
use std::collections::BTreeMap;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(75);
    let seed: u64 = std::env::args()
        .nth(2)
        .and_then(|a| a.parse().ok())
        .unwrap_or(7);

    let result = Scenario::new(
        TopologySpec::InternetLike { n, topo_seed: seed },
        EventKind::TDown,
    )
    .with_seed(seed)
    .run();

    let census = &result.measurement.census;
    let summary = &result.measurement.census_summary;
    println!(
        "T_down on internet-{n} (seed {seed}): {} loop episodes over {:.1}s of convergence\n",
        census.len(),
        result.measurement.metrics.convergence_secs()
    );

    // Size histogram.
    let mut by_size: BTreeMap<usize, Vec<f64>> = BTreeMap::new();
    for rec in census {
        by_size
            .entry(rec.size())
            .or_default()
            .push(rec.duration().map_or(f64::NAN, |d| d.as_secs_f64()));
    }
    println!(
        "{:>6} {:>8} {:>14} {:>14}",
        "size", "count", "mean_life_s", "max_life_s"
    );
    for (size, durations) in &by_size {
        let resolved: Vec<f64> = durations
            .iter()
            .copied()
            .filter(|d| d.is_finite())
            .collect();
        let mean = if resolved.is_empty() {
            0.0
        } else {
            resolved.iter().sum::<f64>() / resolved.len() as f64
        };
        let max = resolved.iter().copied().fold(0.0, f64::max);
        println!(
            "{:>6} {:>8} {:>14.2} {:>14.2}",
            size,
            durations.len(),
            mean,
            max
        );
    }

    println!(
        "\n2-node loops: {:.0}% of all episodes (Hengartner et al. measured \
         \"more than half\" in a real backbone)",
        summary.two_node_fraction * 100.0
    );
    println!(
        "longest-lived loop: {:.1}s — the paper's worst-case bound for an \
         m-node loop is (m-1) x MRAI = (m-1) x 30s",
        summary.max_duration.as_secs_f64()
    );
}
