//! Failure *and* recovery: fail the B-Clique's direct link (`T_long`),
//! watch the network limp onto the backup chain with transient loops,
//! then restore the link and watch routes snap back — fast and
//! loop-free, because good news needs no path exploration.
//!
//! Run with: `cargo run --release --example failure_and_recovery`

use bgpsim::netsim::time::SimDuration;
use bgpsim::prelude::*;

fn main() {
    let (g, layout) = generators::bclique(8);
    let prefix = Prefix::new(0);
    let mut net = SimNetwork::new(&g, BgpConfig::default(), SimParams::default(), 11);

    net.originate(layout.destination, prefix);
    net.run_to_quiescence(100_000_000);
    println!("warm-up converged at {}", net.now());

    // --- failure ---
    let fail_at = net.now();
    net.inject_failure(FailureEvent::LinkDown {
        a: layout.destination,
        b: layout.core_gateway,
    });
    net.run_to_quiescence(100_000_000);
    let fail_sends = net.sends().iter().filter(|s| s.at >= fail_at).count();
    let fail_conv = net
        .sends()
        .iter()
        .filter(|s| s.at >= fail_at)
        .map(|s| s.at)
        .next_back()
        .map(|t| t - fail_at)
        .unwrap_or(SimDuration::ZERO);
    println!(
        "\nT_long: link {} failed — {} messages, convergence {}",
        layout.failure_link, fail_sends, fail_conv
    );

    // --- recovery ---
    let up_at = net.now();
    net.inject_failure(FailureEvent::LinkUp {
        a: layout.destination,
        b: layout.core_gateway,
    });
    net.run_to_quiescence(100_000_000);
    let up_sends = net.sends().iter().filter(|s| s.at >= up_at).count();
    let up_conv = net
        .sends()
        .iter()
        .filter(|s| s.at >= up_at)
        .map(|s| s.at)
        .next_back()
        .map(|t| t - up_at)
        .unwrap_or(SimDuration::ZERO);
    println!(
        "recovery: link restored — {} messages, convergence {}",
        up_sends, up_conv
    );

    let record = net.into_record();
    let census = loop_census(&record.fib, prefix);
    let (during_failure, during_recovery): (Vec<_>, Vec<_>) =
        census.iter().partition(|l| l.formed_at < up_at);
    println!(
        "\nloops during failure convergence : {}",
        during_failure.len()
    );
    println!(
        "loops during recovery convergence: {}",
        during_recovery.len()
    );
    assert!(during_recovery.is_empty(), "recovery should be loop-free");

    // Final state equals the pre-failure shortest-path tree.
    let oracle = algo::shortest_path_next_hops(&g, layout.destination);
    for v in g.nodes() {
        if v == layout.destination {
            continue;
        }
        assert_eq!(
            record.fib.current(v, prefix).and_then(|e| e.via()),
            oracle[v.index()]
        );
    }
    println!("\nfinal routes match the original shortest-path tree.");
}
