//! A faithful walkthrough of the paper's **Figure 1**: how a 2-node
//! transient loop forms between nodes 5 and 6 after link [4 0] fails,
//! and how node 5's announcement of `(5 6 4 0)` eventually breaks it.
//!
//! Run with: `cargo run --release --example figure1_walkthrough`

use bgpsim::prelude::*;

fn main() {
    // The Figure 1 topology: destination behind node 0; node 4 is the
    // gateway for nodes 5 and 6; node 6 has a long backup path through
    // 3 → 2 → 1 → 0.
    let graph = Graph::from_edges([
        (0, 1),
        (1, 2),
        (2, 3),
        (3, 6),
        (0, 4),
        (4, 5),
        (4, 6),
        (5, 6),
    ]);
    let dest = NodeId::new(0);
    let prefix = Prefix::new(0);

    let record = ConvergenceExperiment::new(
        graph,
        dest,
        FailureEvent::LinkDown {
            a: NodeId::new(4),
            b: NodeId::new(0),
        },
    )
    .with_seed(1)
    .run();

    let fail_at = record.failure_at.expect("failure injected");
    println!("link [4 0] fails at t = {fail_at}\n");

    // Print each node's forwarding changes after the failure.
    println!("forwarding-table changes after the failure:");
    let mut changes: Vec<_> = record
        .fib
        .iter_changes()
        .filter(|&(_, _, t, _)| t >= fail_at)
        .collect();
    changes.sort_by_key(|&(_, _, t, _)| t);
    for (node, _, t, entry) in &changes {
        let target = match entry {
            Some(FibEntry::Local) => "local".to_string(),
            Some(FibEntry::Via(v)) => format!("via {v}"),
            None => "NO ROUTE".to_string(),
        };
        println!("  t = {:>10}  {node}  -> {target}", t.to_string());
    }

    // The loop census must contain the paper's 5 ↔ 6 loop.
    let census = loop_census(&record.fib, prefix);
    println!("\nobserved forwarding loops:");
    for rec in &census {
        let nodes: Vec<String> = rec.nodes.iter().map(|n| n.to_string()).collect();
        match rec.resolved_at {
            Some(r) => println!(
                "  loop [{}] formed {} resolved {} (lifetime {})",
                nodes.join(" "),
                rec.formed_at,
                r,
                rec.duration().expect("resolved")
            ),
            None => println!(
                "  loop [{}] formed {} — never resolved",
                nodes.join(" "),
                rec.formed_at
            ),
        }
    }
    let five_six = census
        .iter()
        .find(|r| r.nodes == vec![NodeId::new(5), NodeId::new(6)])
        .expect("the Figure 1(b) loop between nodes 5 and 6 must form");
    assert!(
        five_six.resolved_at.is_some(),
        "the loop resolves when node 6 learns (5 6 4 0) and falls back to (6 3 2 1 0)"
    );

    // Final routing state matches Figure 1(c): node 6 exits via 3.
    assert_eq!(
        record.fib.current(NodeId::new(6), prefix),
        Some(FibEntry::Via(NodeId::new(3)))
    );
    println!("\nfinal state: node 6 forwards via node 3 — Figure 1(c) reached.");
}
