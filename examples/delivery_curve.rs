//! Packet delivery over time during a `T_long` event — the view of
//! the paper's DSN'03 companion study: watch the delivery ratio crash
//! when the link fails, packets loop during path exploration, and
//! delivery recover as the backup paths settle.
//!
//! Run with: `cargo run --release --example delivery_curve`

use bgpsim::netsim::rng::SimRng;
use bgpsim::netsim::time::SimDuration;
use bgpsim::prelude::*;

fn main() {
    let (g, layout) = generators::bclique(10);
    let prefix = Prefix::new(0);
    let record = ConvergenceExperiment::new(
        g.clone(),
        layout.destination,
        FailureEvent::LinkDown {
            a: layout.destination,
            b: layout.core_gateway,
        },
    )
    .with_seed(4)
    .run();

    let fail = record.failure_at.expect("failure injected");
    let end = record.convergence_end().expect("convergence") + SimDuration::from_secs(20);
    let mut rng = SimRng::new(4).fork(0xDA7A);
    let sources = paper_sources(record.node_count, layout.destination, &mut rng);
    let packets = generate_packets(&sources, prefix, DEFAULT_TTL, fail, end);
    let fates = walk_all(&record.fib, &packets, SimDuration::from_millis(2));

    println!(
        "T_long on B-Clique-10 (20 nodes): link {} fails at {}\n",
        layout.failure_link, fail
    );
    let buckets = delivery_timeseries(&packets, &fates, fail, SimDuration::from_secs(20));
    print!("{}", render_timeseries(&buckets));

    let total_sent: u64 = buckets.iter().map(|b| b.sent).sum();
    let total_delivered: u64 = buckets.iter().map(|b| b.delivered).sum();
    let total_looped: u64 = buckets.iter().map(|b| b.ttl_exhausted).sum();
    println!(
        "\noverall: {total_sent} sent, {total_delivered} delivered, \
         {total_looped} lost to loops ({:.0}%)",
        100.0 * total_looped as f64 / total_sent as f64
    );
    let last = buckets.last().expect("buckets exist");
    assert!(
        last.delivery_ratio() > 0.99,
        "delivery must fully recover after convergence"
    );
    println!("delivery fully recovered after convergence — no lasting damage.");
}
