//! Side-by-side comparison of the paper's four convergence
//! enhancements (§5) against standard BGP on one topology — the
//! paper's "first comparative simulation study" in a single command.
//!
//! Run with:
//! `cargo run --release --example enhancement_comparison [clique|bclique|internet]`

use bgpsim::prelude::*;

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "internet".into());
    let (spec, event) = match which.as_str() {
        "clique" => (TopologySpec::Clique(15), EventKind::TDown),
        "bclique" => (TopologySpec::BClique(10), EventKind::TLong),
        "internet" => (
            TopologySpec::InternetLike {
                n: 48,
                topo_seed: 1,
            },
            EventKind::TDown,
        ),
        other => {
            eprintln!("unknown topology {other:?}; use clique, bclique or internet");
            std::process::exit(2);
        }
    };
    println!(
        "comparing protocol variants on {} under {}  (seeds 1–3)\n",
        spec.label(),
        event.label()
    );
    println!(
        "{:<11} {:>12} {:>12} {:>14} {:>12} {:>10}",
        "variant", "conv_s", "looping_s", "ttl_exhausted", "ratio", "messages"
    );

    let mut baseline_exh = None;
    for enh in Enhancements::paper_variants() {
        let seeds = [1u64, 2, 3];
        let mut conv = 0.0;
        let mut lop = 0.0;
        let mut exh = 0.0;
        let mut ratio = 0.0;
        let mut msgs = 0.0;
        for &seed in &seeds {
            let result = Scenario::new(spec.clone(), event)
                .with_config(BgpConfig::default().with_enhancements(enh))
                .with_seed(seed)
                .run();
            let m = result.measurement.metrics;
            conv += m.convergence_secs();
            lop += m.looping_secs();
            exh += m.ttl_exhaustions as f64;
            ratio += m.looping_ratio;
            msgs += m.messages_after_failure as f64;
        }
        let n = seeds.len() as f64;
        let (conv, lop, exh, ratio, msgs) = (conv / n, lop / n, exh / n, ratio / n, msgs / n);
        let norm = match baseline_exh {
            None => {
                baseline_exh = Some(exh);
                "1.00×".to_string()
            }
            Some(base) if base > 0.0 => format!("{:.2}×", exh / base),
            Some(_) => "-".to_string(),
        };
        println!(
            "{:<11} {:>12.1} {:>12.1} {:>8.0} {:>5} {:>12.3} {:>10.0}",
            enh.label(),
            conv,
            lop,
            exh,
            norm,
            ratio,
            msgs
        );
    }
    println!(
        "\npaper's Observation 3: Assertion and Ghost Flushing are effective;\n\
         SSLD is modest; WRATE is the least effective (and harmful on the\n\
         paper's Internet-derived graphs)."
    );
}
